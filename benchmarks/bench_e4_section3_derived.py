"""E4 — Section 3: derived object constraints from rule conditions.

Paper artifact: from the intraobject condition ``O'.ref? = true`` of
``Sim(O':Proceedings, RefereedPubl)`` and object constraint ``oc2`` of
Proceedings, "we can deduce the derived object constraint rating >= 7 on
O'" — identifying the potential discrepancy with RefereedPubl's ``oc1``.
"""

from repro import entails, parse_expression
from repro.integration.conformation import conform
from repro.integration.relationships import Side
from repro.integration.rule_checks import check_rules


def _run(spec):
    conformation = conform(spec)
    return check_rules(spec, conformation)


def test_e4_section3_derived_constraints(benchmark, library_setup):
    spec, _, _ = library_setup
    result = benchmark(_run, spec)

    assert result.conflicts == [], "the paper's rule conditions are consistent"
    derived = result.derived_for(Side.REMOTE, "Proceedings")
    formulas = [c.formula for c in derived]
    rating_floor = parse_expression("rating >= 7")
    assert rating_floor in formulas, "paper: derived constraint rating >= 7"
    # The derived constraint settles the 'potential discrepancy' with the
    # conformed RefereedPubl oc1 (rating >= 4).
    assert entails(rating_floor, parse_expression("rating >= 4"))

    benchmark.extra_info["derived constraints"] = [
        f"{c.owner}: {c.formula}" for c in derived
    ]
    benchmark.extra_info["rating >= 7 entails rating >= 4"] = True
