"""E12 (extension) — ablation over the Section 5.1.2 decision-function
taxonomy.

Not a paper table, but the paper's central design lever made measurable: the
same component databases and constraints, swept across all four decision
function categories for ``trav_reimb``, produce the four qualitatively
different global outcomes the taxonomy predicts.
"""

import pytest

from repro import (
    AnyChoice,
    Average,
    Maximum,
    PropertyEquivalence,
    PropertyStatus,
    Trust,
    parse_expression,
)
from repro.fixtures import personnel_integration_spec, personnel_stores
from repro.integration import IntegrationWorkbench
from repro.integration.relationships import Side

CASES = {
    "any (ignoring)": (
        AnyChoice(),
        dict(
            local_status=PropertyStatus.OBJECTIVE,
            derived=None,
            union=True,  # both memberships objective → explicit conflict
            global_value=20,  # prefers local
        ),
    ),
    "trust (avoiding)": (
        Trust(Side.LOCAL, "PersonnelDB1"),
        dict(
            local_status=PropertyStatus.OBJECTIVE,
            derived=None,
            union=False,
            global_value=20,
        ),
    ),
    "max (settling)": (
        Maximum(),
        dict(
            local_status=PropertyStatus.SUBJECTIVE,
            derived="trav_reimb in {14, 20, 24}",
            union=False,
            global_value=20,
        ),
    ),
    "avg (eliminating)": (
        Average(),
        dict(
            local_status=PropertyStatus.SUBJECTIVE,
            derived="trav_reimb in {12, 17, 22}",
            union=False,
            global_value=17,
        ),
    ),
}


def _run_case(df):
    spec = personnel_integration_spec()
    spec.propeqs[1] = PropertyEquivalence(
        "Employee", "trav_reimb", "Employee", "trav_reimb", df=df
    )
    db1, db2, _ = personnel_stores()
    return IntegrationWorkbench(spec, db1, db2).run()


def _sweep():
    return {label: _run_case(df) for label, (df, _) in CASES.items()}


def test_e12_decision_function_ablation(benchmark):
    results = benchmark(_sweep)

    scope = "PersonnelDB1.Employee ⋈ PersonnelDB2.Employee"
    for label, (df, expected) in CASES.items():
        result = results[label]
        status = result.subjectivity.status_of_property(
            Side.LOCAL, "Employee", "trav_reimb"
        )
        assert status is expected["local_status"], label
        bob = result.view.merged_objects()[0]
        assert bob.state["trav_reimb"] == expected["global_value"], label
        formulas = result.derivation.formulas_for_scope(scope)
        if expected["derived"] is not None:
            assert parse_expression(expected["derived"]) in formulas, label
        if expected["union"]:
            # Both objective memberships union → contradictory global set,
            # flagged as explicit conflict (the `any` pathology).
            assert result.derivation.explicit_conflicts, label
        else:
            assert not result.derivation.explicit_conflicts, label

    benchmark.extra_info["cases"] = list(CASES)
