"""E2 — Figure 1: the example database specifications.

Paper artifact: the two TM specifications (CSLibrary / Bookseller) with all
attribute declarations and the full constraint inventory (2+2 constraints on
Publication, 3 on Proceedings, the db1 referential constraint, ...).
"""

from repro import parse_database, schema_to_source
from repro.fixtures import bookseller_source, cslibrary_source
from repro.tm import validate_schema


def _parse_both():
    return (
        parse_database(cslibrary_source()),
        parse_database(bookseller_source()),
    )


def test_e2_figure1_parses(benchmark):
    library, bookseller = benchmark(_parse_both)

    # Figure 1, left column.
    assert set(library.classes) == {
        "Publication",
        "ScientificPubl",
        "RefereedPubl",
        "NonRefereedPubl",
        "ProfessionalPubl",
    }
    publication = library.class_named("Publication")
    assert [c.name for c in publication.constraints] == ["oc1", "oc2", "cc1", "cc2"]
    # Figure 1, right column.
    assert set(bookseller.classes) == {
        "Item",
        "Proceedings",
        "Monograph",
        "Publisher",
    }
    assert [c.name for c in bookseller.class_named("Proceedings").constraints] == [
        "oc1",
        "oc2",
        "oc3",
    ]
    assert len(bookseller.database_constraints) == 1
    # Both schemas are well-formed and round-trip through the printer.
    assert validate_schema(library) == []
    assert validate_schema(bookseller) == []
    assert set(parse_database(schema_to_source(library)).classes) == set(
        library.classes
    )

    benchmark.extra_info["library classes"] = len(library.classes)
    benchmark.extra_info["bookseller classes"] = len(bookseller.classes)
    benchmark.extra_info["total constraints"] = len(
        list(library.all_constraints())
    ) + len(list(bookseller.all_constraints()))
