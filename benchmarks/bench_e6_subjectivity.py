"""E6 — Section 5.1.3: trust functions make even shared constraints subjective.

Paper artifact: with (ourprice, shopprice) = (26, 29) in CSLibrary and
(libprice, shopprice) = (22, 25) in Bookseller, ``trust(CSLibrary)`` /
``trust(Bookseller)`` produce the global state (26, 25) — violating
``libprice <= shopprice`` even though *both* databases satisfy it.  Hence
"(DB satisfies φ ∧ DB' satisfies φ) ⇏ DBint satisfies φ": value subjectivity
forces the constraint to be subjective, and the integration stays
conflict-free because the constraint is excluded from the view.
"""

from repro import ObjectStore, parse_expression
from repro.fixtures import (
    bookseller_schema,
    cslibrary_schema,
    library_integration_spec,
)
from repro.integration import IntegrationWorkbench, analyse_subjectivity


def _build_stores():
    local_store = ObjectStore(cslibrary_schema())
    remote_store = ObjectStore(bookseller_schema())
    local_store.insert(
        "Publication",
        title="Price Example",
        isbn="ISBN-900",
        publisher="ACM",
        shopprice=29.0,
        ourprice=26.0,
    )
    with remote_store.transaction():
        acm = remote_store.insert("Publisher", name="ACM", location="NY")
        remote_store.insert(
            "Monograph",
            title="Price Example",
            isbn="ISBN-900",
            publisher=acm,
            authors=frozenset(),
            shopprice=25.0,
            libprice=22.0,
            subjects=frozenset(),
        )
    return local_store, remote_store


def _run():
    local_store, remote_store = _build_stores()
    spec = library_integration_spec()
    return IntegrationWorkbench(spec, local_store, remote_store).run()


def test_e6_value_subjectivity(benchmark):
    result = benchmark(_run)

    book = next(
        obj
        for obj in result.view.merged_objects()
        if obj.state.get("isbn") == "ISBN-900"
    )
    # The paper's global state: trust picks 26 and 25.
    assert book.state["libprice"] == 26.0
    assert book.state["shopprice"] == 25.0
    invariant = parse_expression("libprice <= shopprice")
    assert result.view.satisfies(book, invariant) is False

    # Both local constraints are classified subjective...
    status = result.subjectivity.constraint_status
    assert status["CSLibrary.Publication.oc1"].subjective
    assert status["Bookseller.Item.oc1"].subjective
    # ...so the constraint is not integrated and no conflict is reported.
    assert invariant not in [c.formula for c in result.global_constraints]
    assert result.state_violations == []

    benchmark.extra_info["global (libprice, shopprice)"] = (26.0, 25.0)
    benchmark.extra_info["constraint subjective"] = True
    benchmark.extra_info["state violations"] = 0
