"""E7 — Section 5.2.1: derivation of global constraints under object equality.

Paper artifacts:

* from local ``rating >= 4`` (avg df) and remote
  ``publisher.name = 'ACM' implies rating >= 6``, the global constraint
  ``publisher.name = 'ACM' implies rating >= 5`` is derived;
* the ``oc1`` price constraints of Publication and Item derive **nothing**
  because their conflict-avoiding trust functions block condition (1).
"""

from repro import parse_expression, to_source
from repro.integration.conformation import conform
from repro.integration.derivation import ConstraintDeriver
from repro.integration.rule_checks import check_rules
from repro.integration.subjectivity import analyse_subjectivity

ACM_SCOPE = "CSLibrary.RefereedPubl ⋈ Bookseller.Proceedings"


def _run(spec):
    conformation = conform(spec)
    analysis = analyse_subjectivity(spec)
    rule_checks = check_rules(spec, conformation)
    return ConstraintDeriver(spec, conformation, analysis, rule_checks).run()


def test_e7_equality_derivation(benchmark, library_setup):
    spec, _, _ = library_setup
    result = benchmark(_run, spec)

    formulas = result.formulas_for_scope(ACM_SCOPE)
    assert parse_expression(
        "publisher.name = 'ACM' implies rating >= 5"
    ) in formulas, [to_source(f) for f in formulas]

    # No derivation touches the trust-governed prices.
    derived_sources = [
        to_source(c.formula)
        for c in result.constraints
        if c.origin == "derived"
    ]
    assert all("libprice" not in s and "shopprice" not in s for s in derived_sources)
    assert any("condition (1)" in note for note in result.notes)

    benchmark.extra_info["paper derivation"] = (
        "publisher.name = 'ACM' implies rating >= 5"
    )
    benchmark.extra_info["price derivations blocked"] = True
    benchmark.extra_info["derived constraints (all scopes)"] = len(derived_sources)
