"""E21 — horizontal scale: shard-partitioned stores behind the commit router.

PR 9 refactors the engine into shard cores behind a constraint-aware
commit router (:mod:`repro.engine.sharding`): extents partition across N
independent cores — each with its own WAL, group-commit batcher and index
manager — and the router plans every commit onto only the shards it
touches.  This benchmark records what the partitioning buys and costs:

* ``single shard parity`` — the degeneration gate (runs with ``--quick``):
  an N=1 ``ShardedStore`` must commit within **1.1x** of a plain
  ``ObjectStore`` on the same workload.  The router's fast path is one
  routing-table lookup per operation; anything above the gate means
  routing leaked onto the single-shard hot path.
* ``shard local scaling`` — the scaling gate: shard-local commits
  partition the workload, so the *critical path* (the busiest shard's
  wall time for its share of the workload) at 4 shards must be at least
  **3x** shorter than the 1-shard baseline for the whole workload.  On a
  multi-core deployment the shards run concurrently (independent locks
  and WALs), so the critical path is the commit wall time; measuring each
  shard's share sequentially keeps the record deterministic on the
  single-core CI runners (``extra_info`` records ``cpu_count`` and the
  methodology).
* ``cross shard commit`` — the coordination-cost record: a two-phase
  (2PC) transaction spanning two shards must stay within **3x** of a
  single-shard transaction of the same shape.  Measured on ``sync=False``
  stores — with per-commit fsync the N prepare + decide + N resolve
  barriers are the dominant cost by construction, which is why the router
  only brackets transactions that actually touch multiple shards.

Workload sizes are commits per measured batch (see ``conftest.py``);
results land in ``BENCH_e21_sharding.json`` via the shared harness.
"""

import os
import time

from repro.engine import ObjectStore, ShardedStore
from repro.engine.wal import WriteAheadLog
from repro.tm import parse_database

#: Four reference-free class groups so ``plan_placement`` pins one class
#: per shard at N=4.  Each class carries an object constraint and a key
#: constraint — all shard-local, so single inserts take the fast path and
#: the index layer has real work per commit.
BENCH_SOURCE = """
Database ShardBench
""" + "\n".join(
    f"""
Class C{i}
attributes
  name  : string
  score : int
object constraints
  oc{i}: score >= 0
class constraints
  cc{i}: key name
end C{i}
"""
    for i in range(4)
)

SHARDS = 4


def _schema():
    return parse_database(BENCH_SOURCE)


def _plain_store(directory):
    wal = WriteAheadLog(directory, sync=False, checkpoint_every=0)
    return ObjectStore(_schema(), wal=wal)


def _insert_batch(store, class_name, count, tag):
    for index in range(count):
        store.insert(class_name, name=f"{tag}-{index}", score=index)


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _best_of(make_fn, repetitions=3):
    """Best wall time over fresh runs of ``make_fn()()`` — each repetition
    builds its own closure so measured batches never collide on keys."""
    best = float("inf")
    for repetition in range(repetitions):
        best = min(best, _timed(make_fn(repetition)))
    return best


def test_e21_single_shard_parity(benchmark, e21_size, tmp_path):
    """An N=1 ShardedStore commits within 1.1x of a plain ObjectStore."""
    plain = _plain_store(tmp_path / "plain")
    sharded = ShardedStore.open(
        tmp_path / "sharded", _schema(), 1, sync=False, checkpoint_every=0
    )
    # Warm both: the first mutation pays index/baseline construction.
    _insert_batch(plain, "C0", 50, "warm")
    _insert_batch(sharded, "C0", 50, "warm")

    def plain_batch(rep):
        return lambda: _insert_batch(plain, "C0", e21_size, f"p{rep}")

    def sharded_batch(rep):
        return lambda: _insert_batch(sharded, "C0", e21_size, f"s{rep}")

    t_plain = _best_of(plain_batch)
    t_sharded = _best_of(sharded_batch)
    bench_rounds = [f"r{i}" for i in range(10_000)]
    benchmark(lambda: sharded_batch(bench_rounds.pop())())
    assert sharded.fast_path_ops > 0

    ratio = t_sharded / t_plain
    benchmark.extra_info["commits"] = e21_size
    benchmark.extra_info["plain_us_per_commit"] = round(
        t_plain / e21_size * 1e6, 2
    )
    benchmark.extra_info["sharded_us_per_commit"] = round(
        t_sharded / e21_size * 1e6, 2
    )
    benchmark.extra_info["overhead_factor"] = round(ratio, 3)
    plain.close()
    sharded.close()

    # Acceptance: the N=1 degeneration adds at most 10% per commit (plus
    # an absolute epsilon so micro-batches don't gate on timer noise).
    assert t_sharded <= 1.1 * t_plain + 2e-3, (
        f"N=1 ShardedStore costs {ratio:.2f}x a plain store "
        f"at {e21_size} commits"
    )


def test_e21_shard_local_scaling(benchmark, e21_size, tmp_path):
    """Shard-local commits partition: the busiest shard's share of the
    workload completes ≥3x faster than the whole workload on one shard."""
    workload = e21_size - e21_size % SHARDS  # divisible share per shard
    baseline = ShardedStore.open(
        tmp_path / "one", _schema(), 1, sync=False, checkpoint_every=0
    )
    scaled = ShardedStore.open(
        tmp_path / "four", _schema(), SHARDS, sync=False, checkpoint_every=0
    )
    assert len(set(scaled.placement.values())) == SHARDS
    for store in (baseline, scaled):
        for shard in range(SHARDS):
            _insert_batch(store, f"C{shard}", 10, "warm")

    def baseline_run(rep):
        def run():
            for shard in range(SHARDS):
                _insert_batch(
                    baseline, f"C{shard}", workload // SHARDS, f"b{rep}"
                )

        return run

    t_baseline = _best_of(baseline_run)

    #: Per-shard wall time for that shard's share, measured in isolation:
    #: shards share no locks, WALs or indexes, so on an M-core box the
    #: shares overlap and the commit wall time is their maximum.
    def shard_share(shard, rep):
        return _timed(
            lambda: _insert_batch(
                scaled, f"C{shard}", workload // SHARDS, f"s{rep}"
            )
        )

    #: Best-of per shard first, then the maximum: each sample of a share
    #: carries independent single-core noise (GC, frequency steps), so
    #: max-then-min would gate on the noisiest sample of the round while
    #: the baseline enjoys a plain best-of.
    shares = [
        min(shard_share(shard, repetition) for repetition in range(3))
        for shard in range(SHARDS)
    ]
    critical_path = max(shares)

    def bench_round():
        rep = bench_rounds.pop()
        for shard in range(SHARDS):
            _insert_batch(scaled, f"C{shard}", workload // SHARDS, rep)

    bench_rounds = [f"r{i}" for i in range(10_000)]
    benchmark(bench_round)
    assert scaled.fast_path_ops > 0
    assert scaled.two_phase_commits == 0

    scaling = t_baseline / critical_path
    benchmark.extra_info["commits"] = workload
    benchmark.extra_info["shards"] = SHARDS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["baseline_s"] = round(t_baseline, 5)
    benchmark.extra_info["critical_path_s"] = round(critical_path, 5)
    benchmark.extra_info["scaling_factor"] = round(scaling, 2)
    benchmark.extra_info["methodology"] = (
        "per-shard shares timed in isolation on one core; commit wall "
        "time on an N-core deployment is their maximum (no shared locks, "
        "WALs or indexes between shards)"
    )
    baseline.close()
    scaled.close()

    # Acceptance: near-linear partitioning — the critical path at 4 shards
    # beats the 1-shard baseline by at least 3x.
    assert scaling >= 3.0, (
        f"shard-local scaling is {scaling:.2f}x at {SHARDS} shards "
        f"({workload} commits) — expected >= 3x"
    )


def test_e21_cross_shard_commit(benchmark, e21_size, tmp_path):
    """A 2PC transaction spanning two shards stays within 3x of a
    single-shard transaction of the same shape."""
    store = ShardedStore.open(
        tmp_path / "xs", _schema(), SHARDS, sync=False, checkpoint_every=0
    )
    for shard in range(SHARDS):
        _insert_batch(store, f"C{shard}", 10, "warm")
    batch = max(1, e21_size // 10)

    def local_batch(rep):
        def run():
            for index in range(batch):
                with store.transaction():
                    store.insert("C0", name=f"l{rep}-{index}a", score=1)
                    store.insert("C0", name=f"l{rep}-{index}b", score=2)

        return run

    def cross_batch(rep):
        def run():
            for index in range(batch):
                with store.transaction():
                    store.insert("C0", name=f"x{rep}-{index}a", score=1)
                    store.insert("C1", name=f"x{rep}-{index}b", score=2)

        return run

    t_local = _best_of(local_batch)
    before = store.two_phase_commits
    t_cross = _best_of(cross_batch)
    assert store.two_phase_commits == before + 3 * batch

    bench_rounds = [f"b{i}" for i in range(10_000)]
    benchmark(lambda: cross_batch(bench_rounds.pop())())

    ratio = t_cross / t_local
    benchmark.extra_info["transactions"] = batch
    benchmark.extra_info["local_us_per_txn"] = round(t_local / batch * 1e6, 2)
    benchmark.extra_info["cross_us_per_txn"] = round(t_cross / batch * 1e6, 2)
    benchmark.extra_info["two_phase_factor"] = round(ratio, 2)
    store.close()

    # Acceptance: the prepare/decide/resolve bracket (sync=False: buffered
    # appends, no extra fsyncs) costs less than 3x a plain commit.
    assert t_cross <= 3.0 * t_local + 2e-3, (
        f"cross-shard 2PC costs {ratio:.2f}x a single-shard transaction"
    )
