"""E15 — reference-count indexes: O(1) referential-constraint commits.

PR 2 (see ``bench_e14_indexes.py``) made aggregate/key commits O(1), leaving
quantified referential database constraints — the paper's ``db1: forall p in
Publisher exists i in Item | i.publisher = p`` — as the last extent-scan
residual: a commit touching ``Item.publisher`` re-evaluated db1 by a nested
scan in O(|Publisher|·|Item|).  This benchmark records what the
reference-count index subsystem (:class:`repro.engine.indexes.ReferenceIndex`)
buys over that path:

* ``referential`` — a transaction retargeting one Item's publisher, which
  dirties ``(Item, publisher)`` and re-checks db1: the maintained
  live-referenced counter answers the whole formula in O(1) instead of the
  nested scan.  Acceptance: ≥20x over the scan path at 10⁴ objects.
* ``scaling`` — the regression guard CI runs with ``--quick``: an indexed
  referential commit at 10⁴ objects must stay within a fixed multiple of
  the 10³ case (O(1), not O(extent) or worse).

Population shape: one Publisher per :data:`ITEMS_PER_PUBLISHER` Items, items
grouped in per-publisher blocks so publisher *k*'s first referencing item
sits at extent position 100·k — the nested scan's total work grows as
size²/200 (quadratic in extent size), while the indexed commit stays flat.
Each case compares an ``indexed=True`` store against an ``indexed=False``
one — the latter is exactly the PR-2 code path for referential constraints
(delta-driven triggering, scan-based residual check).  Results land in
``BENCH_e15_references.json`` via the shared harness (see ``conftest.py``).
"""

import time

from repro import ObjectStore
from repro.fixtures import bookseller_schema

#: Block size: each Publisher is referenced by this many consecutive Items.
ITEMS_PER_PUBLISHER = 100


def _populated_store(size: int, indexed: bool) -> ObjectStore:
    store = ObjectStore(bookseller_schema(), enforce=False, indexed=indexed)
    publishers = [
        store.insert("Publisher", name=f"Pub {index}", location="NY")
        for index in range(max(size // ITEMS_PER_PUBLISHER, 2))
    ]
    for index in range(size):
        block = min(index // ITEMS_PER_PUBLISHER, len(publishers) - 1)
        store.insert(
            "Item",
            title=f"Book {index}",
            isbn=f"ISBN-{index}",
            publisher=publishers[block],
            authors=frozenset({"a"}),
            shopprice=50.0,
            libprice=45.0,
        )
    store.enforce = True
    store.dependency_index()  # build outside the timed region
    assert store.check_all() == []  # baseline: incremental checking resumes
    return store


def _best_of(fn, repetitions: int = 5) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _commit_timer(store):
    """One committed transaction flipping an Item between two publishers.

    The flip-and-restore keeps db1 satisfied and the store state invariant
    across repetitions; the accumulated delta dirties ``(Item, publisher)``,
    so commit-time validation re-checks db1 — by O(1) probe on the indexed
    store, by the nested extent scan on the baseline.
    """
    items = store.extent("Item")
    publishers = store.extent("Publisher")
    target = items[1]  # second item of publisher 0's block: both stay referenced
    original, other = publishers[0], publishers[1]

    def commit():
        with store.transaction():
            store.update(target, publisher=other)
            store.update(target, publisher=original)

    return commit


def test_e15_referential_commit_speedup(benchmark, e15_size):
    """Maintained referrer counts: referential-constraint commits are O(1)."""
    indexed = _populated_store(e15_size, indexed=True)
    baseline = _populated_store(e15_size, indexed=False)

    repetitions = 3 if e15_size <= 10_000 else 1
    t_indexed = _best_of(_commit_timer(indexed), 5)
    t_baseline = _best_of(_commit_timer(baseline), repetitions)
    benchmark(_commit_timer(indexed))

    benchmark.extra_info["objects"] = e15_size
    benchmark.extra_info["publishers"] = len(indexed.extent("Publisher"))
    benchmark.extra_info["referential_commit_ms"] = round(t_indexed * 1000, 4)
    benchmark.extra_info["referential_commit_scan_ms"] = round(t_baseline * 1000, 4)
    benchmark.extra_info["speedup_referential"] = round(t_baseline / t_indexed, 1)

    # Acceptance: ≥20x over the nested-scan path once the extent dominates.
    if e15_size >= 10_000:
        assert t_baseline / t_indexed >= 20.0, (
            f"referential-constraint commit only {t_baseline / t_indexed:.1f}x "
            f"faster than the unindexed path at {e15_size} objects"
        )


def test_e15_commit_stays_constant(benchmark):
    """The CI regression guard: an indexed referential-constraint commit must
    not regress to O(extent) — the 10⁴-object commit stays under a fixed
    multiple of the 10³ case (plus absolute slack for timer noise; a
    regression to the nested scan costs orders of magnitude more)."""
    small = _populated_store(1_000, indexed=True)
    large = _populated_store(10_000, indexed=True)

    t_small = _best_of(_commit_timer(small), 7)
    t_large = _best_of(_commit_timer(large), 7)
    benchmark(_commit_timer(large))

    benchmark.extra_info["commit_1k_ms"] = round(t_small * 1000, 4)
    benchmark.extra_info["commit_10k_ms"] = round(t_large * 1000, 4)
    benchmark.extra_info["ratio_10k_over_1k"] = round(t_large / t_small, 2)

    assert t_large <= 5 * t_small + 5e-4, (
        f"referential-constraint commit scales with the extent: "
        f"{t_small * 1e6:.0f}us at 10^3 vs {t_large * 1e6:.0f}us at 10^4"
    )


def test_e15_indexed_unindexed_equivalence(benchmark, e15_size):
    """The fast path must reject exactly what the scan path rejects (the
    exhaustive property test lives in tests/engine/test_reference_indexes.py)."""
    import pytest

    from repro.errors import ConstraintViolation

    size = min(e15_size, 1_000)  # correctness spot check needs no scale

    def build_and_reject():
        for indexed in (True, False):
            store = _populated_store(size, indexed=indexed)
            # An unreferenced publisher violates db1.
            with pytest.raises(ConstraintViolation, match="db1"):
                store.insert("Publisher", name="Ghost", location="X")
            # Deleting a referenced publisher leaves danglers: rejected too.
            with pytest.raises(ConstraintViolation):
                store.delete(store.extent("Publisher")[0])
            # A publisher arriving with its first item commits fine.
            with store.transaction():
                publisher = store.insert("Publisher", name="New", location="Y")
                store.insert(
                    "Item",
                    title="New Book",
                    isbn="ISBN-NEW",
                    publisher=publisher,
                    authors=frozenset({"a"}),
                    shopprice=50.0,
                    libprice=45.0,
                )
            assert store.check_all() == []
        return True

    assert benchmark(build_and_reject)
