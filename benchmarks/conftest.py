"""Shared fixtures for the benchmark harness.

Every benchmark both *verifies* the paper artifact it regenerates (plain
assertions — a benchmark that reproduces the wrong result must fail) and
*times* the machinery behind it, so `pytest benchmarks/ --benchmark-only`
doubles as the reproduction record.  EXPERIMENTS.md maps each file to the
paper artifact it covers.

Every run additionally writes one machine-readable ``BENCH_<name>.json``
summary per benchmark module (median/p95 per case, plus each case's
``extra_info``) into the repository root, so the performance trajectory is
comparable across PRs.  Committed baselines (e.g. ``BENCH_e14_indexes.json``)
are refreshed by simply re-running the module.
"""

import json
import platform
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke-run: cap benchmark store sizes so CI finishes in seconds",
    )


def pytest_generate_tests(metafunc):
    quick = metafunc.config.getoption("--quick")
    if "e13_size" in metafunc.fixturenames:
        sizes = [100, 1_000] if quick else [100, 1_000, 10_000, 100_000]
        metafunc.parametrize("e13_size", sizes)
    if "e14_size" in metafunc.fixturenames:
        # The O(1)-commit regression guard needs the 10³→10⁴ pair even in
        # --quick mode; the full run adds 10⁵.
        sizes = [1_000, 10_000] if quick else [1_000, 10_000, 100_000]
        metafunc.parametrize("e14_size", sizes)
    if "e15_size" in metafunc.fixturenames:
        # Same 10³→10⁴ pair for the referential guard.  The full run tops
        # out at 3·10⁴: the unindexed baseline re-evaluates db1 by a nested
        # scan in O(extent²), so larger sizes only burn time on the
        # comparison store, not on the indexed path under test.
        sizes = [1_000, 10_000] if quick else [1_000, 10_000, 30_000]
        metafunc.parametrize("e15_size", sizes)
    if "e16_size" in metafunc.fixturenames:
        # The WAL-overhead guard needs the 10³→10⁴ pair even in --quick
        # mode; the full run adds 10⁵ (recovery time is O(store), so the
        # large case mainly sizes the recovery-throughput record).
        sizes = [1_000, 10_000] if quick else [1_000, 10_000, 100_000]
        metafunc.parametrize("e16_size", sizes)
    if "e18_size" in metafunc.fixturenames:
        # Explanation-cost record: tracing is free until a check fails, so
        # both sizes of the 10³–10⁴ pair run even in --quick mode to hold
        # the overhead gates.
        sizes = [1_000, 10_000]
        metafunc.parametrize("e18_size", sizes)
    if "e19_size" in metafunc.fixturenames:
        # The no-op fault-shim gate (≤1.05x per commit) holds at every
        # size; --quick keeps the 10³ case, the full run adds 10⁴ so the
        # fsck-throughput record covers a non-trivial directory.
        sizes = [1_000] if quick else [1_000, 10_000]
        metafunc.parametrize("e19_size", sizes)
    if "e20_size" in metafunc.fixturenames:
        # Number of object constraints in the synthetic ladder schema; the
        # pruning-speedup gate (≥1.5x) holds from 32 up, so --quick keeps
        # that size and the full run adds 64 (where the O(n²) registration
        # pass is most visible).
        sizes = [32] if quick else [32, 64]
        metafunc.parametrize("e20_size", sizes)
    if "e21_size" in metafunc.fixturenames:
        # Commits per measured batch.  The parity (≤1.1x), scaling (≥3x
        # critical path at 4 shards) and 2PC (≤3x) gates all hold from 200
        # commits up, so --quick keeps that size; the full run adds 800
        # where per-commit noise is negligible.
        sizes = [200] if quick else [200, 800]
        metafunc.parametrize("e21_size", sizes)
    if "e22_conns" in metafunc.fixturenames:
        # Concurrent connections against one served tenant.  The
        # coalescing gate (≤0.2 fsyncs/commit) is defined at 16; the 1-
        # and 4-connection cases record the latency floor and the trend,
        # and the solo case gates the lone-committer fast path (~1
        # fsync/commit), so all three run even in --quick mode.
        metafunc.parametrize("e22_conns", [1, 4, 16])
    if "e22_size" in metafunc.fixturenames:
        # Commits per connection per measured round.  Both gates hold
        # from 50 commits up; the full run uses 200 where the fsync
        # ratio has fully converged.
        sizes = [50] if quick else [200]
        metafunc.parametrize("e22_size", sizes)
    if "e17_size" in metafunc.fixturenames:
        # Snapshot-reader throughput under a sustained writer; the
        # degradation gate holds at every size, so --quick keeps one.
        sizes = [1_000] if quick else [1_000, 10_000]
        metafunc.parametrize("e17_size", sizes)


def _percentile(sorted_data, fraction):
    if not sorted_data:
        return None
    rank = fraction * (len(sorted_data) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_data) - 1)
    weight = rank - low
    return sorted_data[low] * (1 - weight) + sorted_data[high] * weight


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_<module>.json`` per benchmark module that ran.

    Only clean full runs update the files — a failing run must not replace a
    committed baseline with its own numbers.  (Single-case runs still write
    a single-case summary; refresh baselines with a full module run.)"""
    if exitstatus != 0:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(bench_session, "benchmarks", None):
        return
    by_module: dict[str, list] = {}
    for bench in bench_session.benchmarks:
        module = Path(bench.fullname.split("::", 1)[0]).stem
        name = module[len("bench_"):] if module.startswith("bench_") else module
        data = sorted(bench.stats.data) if bench.stats.data else []
        by_module.setdefault(name, []).append(
            {
                "case": bench.name,
                "rounds": len(data),
                "median_s": _percentile(data, 0.5),
                "p95_s": _percentile(data, 0.95),
                "min_s": data[0] if data else None,
                "extra_info": dict(bench.extra_info),
            }
        )
    quick = session.config.getoption("--quick")
    for name, cases in by_module.items():
        summary = {
            "benchmark": f"bench_{name}",
            "quick": bool(quick),
            "python": platform.python_version(),
            "cases": cases,
        }
        path = _REPO_ROOT / f"BENCH_{name}.json"
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")


from repro.fixtures import (
    bookseller_store,
    cslibrary_store,
    library_integration_spec,
    personnel_integration_spec,
    personnel_stores,
)
from repro.integration import IntegrationWorkbench


@pytest.fixture()
def library_setup():
    """Fresh Figure 1 stores + spec (stores are mutable, so per-test)."""
    local_store, local_named = cslibrary_store()
    remote_store, remote_named = bookseller_store()
    return library_integration_spec(), local_store, remote_store


@pytest.fixture()
def personnel_setup():
    db1, db2, named = personnel_stores()
    return personnel_integration_spec(), db1, db2


@pytest.fixture()
def library_result(library_setup):
    spec, local_store, remote_store = library_setup
    return IntegrationWorkbench(spec, local_store, remote_store).run()
