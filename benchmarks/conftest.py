"""Shared fixtures for the benchmark harness.

Every benchmark both *verifies* the paper artifact it regenerates (plain
assertions — a benchmark that reproduces the wrong result must fail) and
*times* the machinery behind it, so `pytest benchmarks/ --benchmark-only`
doubles as the reproduction record.  EXPERIMENTS.md maps each file to the
paper artifact it covers.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke-run: cap benchmark store sizes so CI finishes in seconds",
    )


def pytest_generate_tests(metafunc):
    if "e13_size" in metafunc.fixturenames:
        quick = metafunc.config.getoption("--quick")
        sizes = [100, 1_000] if quick else [100, 1_000, 10_000, 100_000]
        metafunc.parametrize("e13_size", sizes)


from repro.fixtures import (
    bookseller_store,
    cslibrary_store,
    library_integration_spec,
    personnel_integration_spec,
    personnel_stores,
)
from repro.integration import IntegrationWorkbench


@pytest.fixture()
def library_setup():
    """Fresh Figure 1 stores + spec (stores are mutable, so per-test)."""
    local_store, local_named = cslibrary_store()
    remote_store, remote_named = bookseller_store()
    return library_integration_spec(), local_store, remote_store


@pytest.fixture()
def personnel_setup():
    db1, db2, named = personnel_stores()
    return personnel_integration_spec(), db1, db2


@pytest.fixture()
def library_result(library_setup):
    spec, local_store, remote_store = library_setup
    return IntegrationWorkbench(spec, local_store, remote_store).run()
