"""E11 — scalability of the algorithms the paper leaves implicit.

The paper reports no measurements; these benchmarks document that the
design-tool loop stays interactive as extents grow: instance matching uses a
hash join on key-to-key equality rules (linear in the extents), conformation
and merging are linear in the number of objects, and the solver's entailment
checks are independent of extent size.
"""

import pytest

from repro import ObjectStore, Solver, TypeEnvironment, parse_expression
from repro.fixtures import (
    bookseller_schema,
    cslibrary_schema,
    library_integration_spec,
)
from repro.integration.conformation import conform
from repro.integration.matching import match_instances
from repro.integration.merging import merge_instances
from repro.types import RangeType

PUBLISHERS = ("ACM", "IEEE", "Springer", "Elsevier", "Kluwer")


def _generate_stores(size: int, overlap: float = 0.5):
    """Synthetic Figure 1-shaped extents: ``size`` publications per side,
    with ``overlap`` of the ISBNs shared (the objects to be merged)."""
    local_store = ObjectStore(cslibrary_schema(), enforce=False)
    remote_store = ObjectStore(bookseller_schema(), enforce=False)
    publisher_objects = {
        name: remote_store.insert(
            "Publisher", name=name, location=f"{name} City"
        )
        for name in PUBLISHERS
    }
    shared = int(size * overlap)
    for index in range(size):
        publisher = PUBLISHERS[index % len(PUBLISHERS)]
        local_store.insert(
            "Publication",
            title=f"Book {index}",
            isbn=f"L-{index}",
            publisher=publisher,
            shopprice=50.0 + index % 40,
            ourprice=45.0 + index % 40,
        )
    for index in range(size):
        isbn = f"L-{index}" if index < shared else f"R-{index}"
        remote_store.insert(
            "Monograph",
            title=f"Book {index}",
            isbn=isbn,
            publisher=publisher_objects[PUBLISHERS[index % len(PUBLISHERS)]],
            authors=frozenset({f"Author {index}"}),
            shopprice=52.0 + index % 40,
            libprice=47.0 + index % 40,
            subjects=frozenset({"misc"}),
        )
    return local_store, remote_store


@pytest.mark.parametrize("size", [50, 200, 500])
def test_e11_match_and_merge_scaling(benchmark, size):
    spec = library_integration_spec()
    local_store, remote_store = _generate_stores(size)

    def run():
        match = match_instances(spec, local_store, remote_store)
        conformation = conform(spec, local_store, remote_store)
        view = merge_instances(spec, conformation, match)
        return match, view

    match, view = benchmark(run)
    expected_merges = int(size * 0.5) + len(PUBLISHERS)
    assert len(view.merged_objects()) == expected_merges
    benchmark.extra_info["objects per side"] = size
    benchmark.extra_info["merged"] = expected_merges


@pytest.mark.parametrize("size", [50, 500])
def test_e11_conformation_scaling(benchmark, size):
    spec = library_integration_spec()
    local_store, remote_store = _generate_stores(size)
    conformation = benchmark(conform, spec, local_store, remote_store)
    assert len(conformation.local.instances) >= size


def test_e11_entailment_throughput(benchmark):
    """A batch of entailment checks of the paper's shapes (solver cost is
    independent of extent sizes — it is pure constraint reasoning)."""
    env = TypeEnvironment({"rating": RangeType(1, 10)})
    solver = Solver(env)
    judgements = [
        ("rating >= 7", "rating >= 4", True),
        ("rating >= 3", "rating >= 4", False),
        ("ref? = true and (ref? = true implies rating >= 7)", "rating >= 7", True),
        ("rating in {8, 9}", "rating >= 7", True),
        (
            "publisher.name = 'ACM' implies rating >= 6",
            "publisher.name = 'ACM' implies rating >= 5",
            True,
        ),
    ]
    parsed = [
        (parse_expression(p), parse_expression(c), expected)
        for p, c, expected in judgements
    ]

    def run():
        return [solver.entails(p, c) for p, c, _ in parsed]

    results = benchmark(run)
    assert results == [expected for _, _, expected in parsed]
    benchmark.extra_info["judgements per round"] = len(parsed)


def test_e11_workbench_constraint_analysis(benchmark):
    """The schema-level (no instances) analysis loop — what a designer
    iterates on — is milliseconds."""
    from repro.integration import IntegrationWorkbench

    spec = library_integration_spec()
    result = benchmark(lambda: IntegrationWorkbench(spec).run())
    assert result.derivation is not None
    benchmark.extra_info["global constraints"] = len(result.global_constraints)
