"""E8 — Section 5.2.1: strict similarity and rule repair.

Paper artifacts:

* with the Figure 1 constraints, ``rating >= 7 ⊨ rating >= 4``: the rule
  ``Sim(O':Proceedings, RefereedPubl) <- O'.ref? = true`` guarantees valid
  RefereedPubl members (no conflict);
* with the counterfactual weakened ``oc2`` (``ref? = true implies
  rating >= 3``), the entailment fails and the rule "would have to be
  changed into ``... <- O'.ref? = true and O'.rating >= 4``".
"""

from repro import parse_expression
from repro.fixtures import library_integration_spec
from repro.integration import IntegrationWorkbench


def _weakened_spec():
    spec = library_integration_spec()
    proceedings = spec.remote_schema.class_named("Proceedings")
    oc2 = next(c for c in proceedings.constraints if c.name == "oc2")
    proceedings.constraints[proceedings.constraints.index(oc2)] = oc2.with_formula(
        parse_expression("ref? = true implies rating >= 3")
    )
    return spec


def _run_both():
    baseline = IntegrationWorkbench(library_integration_spec()).run()
    weakened = IntegrationWorkbench(_weakened_spec()).run()
    return baseline, weakened


def test_e8_similarity_and_repair(benchmark):
    baseline, weakened = benchmark(_run_both)

    # Baseline: the refereed rule is consistent.
    refereed_conflicts = [
        c
        for c in baseline.derivation.similarity_conflicts
        if c.rule.target_class == "RefereedPubl"
    ]
    assert refereed_conflicts == []

    # Counterfactual: conflict + the paper's exact repaired rule.
    refereed_conflicts = [
        c
        for c in weakened.derivation.similarity_conflicts
        if c.rule.target_class == "RefereedPubl"
    ]
    assert len(refereed_conflicts) == 1
    repair = next(
        s
        for s in weakened.suggestions
        if s.action == "repair-rule"
        and s.target == "Sim(Proceedings, RefereedPubl)"
    )
    assert repair.repaired_rule is not None
    assert repair.repaired_rule.condition == parse_expression(
        "O'.ref? = true and O'.rating >= 4"
    )
    assert repair.fallback_rule is not None  # approximate-similarity option

    benchmark.extra_info["baseline conflict"] = False
    benchmark.extra_info["weakened oc2 conflict"] = True
    benchmark.extra_info["repaired condition"] = "O'.ref? = true and O'.rating >= 4"
