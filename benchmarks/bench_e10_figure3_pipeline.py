"""E10 — Figure 3: the full methodology pipeline, plus Section 5.2.3.

Paper artifact: the complete inclusion of constraints into the
instance-based integration methodology — specification checks, conformation,
merging, constraint integration, conflict reporting with suggestions — and
the Section 5.2.3 verdict that database constraints (``db1``) stay local.
"""

from repro import render_report
from repro.integration import IntegrationWorkbench


def _run(spec, local_store, remote_store):
    result = IntegrationWorkbench(spec, local_store, remote_store).run()
    return result, render_report(result)


def test_e10_figure3_pipeline(benchmark, library_setup):
    spec, local_store, remote_store = library_setup
    result, report = benchmark(_run, spec, local_store, remote_store)

    # Every stage of Figure 3 produced output.
    assert result.subjectivity is not None
    assert result.conformation is not None
    assert result.rule_checks is not None
    assert result.view is not None
    assert result.hierarchy is not None
    assert result.derivation is not None
    assert result.class_constraints is not None
    assert result.database_constraints is not None

    # Section 5.2.3: db1 is subjective and stays with the bookseller.
    retained = dict(result.database_constraints.retained_locally)
    assert "Bookseller.db1" in retained

    # The report carries the paper's headline results.
    assert "publisher.name = 'ACM' implies rating >= 5" in report
    assert "RefereedProceedings" in report
    assert "Suggestions" in report

    benchmark.extra_info["global constraints"] = len(result.global_constraints)
    benchmark.extra_info["conflicts"] = result.conflict_count()
    benchmark.extra_info["suggestions"] = len(result.suggestions)
    benchmark.extra_info["report lines"] = report.count("\n")
