"""E22 — the served store: commit latency and group-commit coalescing.

PR 10 puts the engine behind ``repro serve`` (:mod:`repro.server`): an
asyncio front end funnels each connection's operations onto a dedicated
worker thread, so concurrent client commits land on the engine exactly
like concurrent embedded threads do — and ride the WAL's ~1ms group-commit
window (see :mod:`repro.engine.wal`).  This benchmark records what the
funnel delivers on a durable ``sync=True`` tenant:

* ``commit latency`` — p50/p99 wall time of an autocommit insert as seen
  by the client, at 1, 4 and 16 concurrent connections.  The p50 at one
  connection is the protocol + fsync floor; under load the p99 bounds how
  long a commit waits for its batch.
* ``throughput`` — committed inserts per second across all connections.
* ``fsyncs per commit`` — the coalescing gate.  A lone connection pays
  one fsync per commit by design (no window for a solo committer).  At
  **16 connections** the leader's window must batch concurrent commits
  aggressively enough that the server issues **≤ 0.2 fsyncs per commit**
  (≥ 5 commits retired per fsync) — the property that makes a shared
  server cheaper per commit than 16 embedded single-writer stores.

Counters come from the server itself (the ``stats`` op sums
``fsyncs``/``sync_commits`` over the tenant's WALs), so the record proves
the deployed path, not a lab re-measurement.  Workload sizes are commits
per connection per round (see ``conftest.py``); results land in
``BENCH_e22_server.json`` via the shared harness.
"""

import itertools
import threading
import time

from repro.client import connect
from repro.server import ServerConfig, ServerThread

BENCH_SOURCE = """
Database ServeBench

Class Item
attributes
  name  : string
  score : int
object constraints
  oc: score >= 0
class constraints
  cc: key name
end Item
"""


def _percentile(sorted_data, fraction):
    rank = fraction * (len(sorted_data) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_data) - 1)
    weight = rank - low
    return sorted_data[low] * (1 - weight) + sorted_data[high] * weight


def test_e22_commit_latency_and_coalescing(
    benchmark, e22_conns, e22_size, tmp_path
):
    """p50/p99 commit latency, throughput, and fsyncs/commit at
    ``e22_conns`` concurrent connections against one durable tenant."""
    thread = ServerThread(
        ServerConfig(
            root=tmp_path,
            sync=True,
            checkpoint_every=0,  # no auto-checkpoint mid-measurement
            max_connections=e22_conns + 4,
            max_inflight=e22_conns + 4,
            idle_timeout=0.0,
        )
    )
    address = thread.start()
    stores = []
    try:
        stores = [
            connect(address, tenant="bench", schema=BENCH_SOURCE)
            for _ in range(e22_conns)
        ]
        admin = stores[0]
        for index, store in enumerate(stores):
            store.insert("Item", name=f"warm-{index}", score=0)
        before = admin.stats()["tenant"]

        tags = itertools.count()
        latencies: list[float] = []
        walls: list[float] = []

        def run_round():
            tag = next(tags)
            collected = [[] for _ in stores]

            def hammer(index, store):
                lat = collected[index]
                for i in range(e22_size):
                    started = time.perf_counter()
                    store.insert(
                        "Item", name=f"r{tag}-c{index}-{i}", score=i
                    )
                    lat.append(time.perf_counter() - started)

            workers = [
                threading.Thread(target=hammer, args=(index, store))
                for index, store in enumerate(stores)
            ]
            started = time.perf_counter()
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            walls.append(time.perf_counter() - started)
            for lat in collected:
                latencies.extend(lat)

        benchmark.pedantic(run_round, rounds=3, warmup_rounds=1)
        after = admin.stats()["tenant"]
    finally:
        for store in stores:
            store.close()
        thread.stop()

    commits = after["sync_commits"] - before["sync_commits"]
    fsyncs = after["fsyncs"] - before["fsyncs"]
    # Every measured insert is one autocommit = one WAL commit point.
    assert commits == 4 * e22_conns * e22_size  # 3 rounds + 1 warmup
    fsyncs_per_commit = fsyncs / commits
    latencies.sort()
    throughput = len(latencies) / sum(walls) if walls else 0.0

    benchmark.extra_info["connections"] = e22_conns
    benchmark.extra_info["commits_per_connection"] = e22_size
    benchmark.extra_info["p50_ms"] = round(
        _percentile(latencies, 0.5) * 1e3, 3
    )
    benchmark.extra_info["p99_ms"] = round(
        _percentile(latencies, 0.99) * 1e3, 3
    )
    benchmark.extra_info["throughput_commits_per_s"] = round(throughput, 1)
    benchmark.extra_info["fsyncs_per_commit"] = round(fsyncs_per_commit, 4)
    benchmark.extra_info["fsyncs"] = fsyncs
    benchmark.extra_info["sync_commits"] = commits

    if e22_conns == 1:
        # A solo committer must keep the immediate-fsync latency contract:
        # no batching window means one fsync per commit.
        assert fsyncs_per_commit > 0.9, (
            f"solo connection coalesced ({fsyncs_per_commit:.2f} "
            f"fsyncs/commit) — the lone-committer fast path regressed"
        )
    if e22_conns == 16:
        # Acceptance: concurrent client commits ride the group-commit
        # window — at most one fsync per five commits at 16 connections.
        assert fsyncs_per_commit <= 0.2, (
            f"{fsyncs_per_commit:.2f} fsyncs/commit at {e22_conns} "
            f"connections — commits are not coalescing in the server"
        )
