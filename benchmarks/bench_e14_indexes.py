"""E14 — maintained indexes: O(1) aggregate/key commits and O(|result|) extents.

PR 1 (see ``bench_e13_incremental.py``) made enforcement delta-driven, but a
commit touching an attribute read by an aggregate or key constraint still
re-evaluated in O(extent), and ``ObjectStore.extent()`` scanned the whole
store.  This benchmark records what the index-maintenance subsystem
(:mod:`repro.engine.indexes`) buys over that PR-1 path:

* ``aggregate`` — update ``ourprice``, read by the ``cc2`` running-sum
  constraint: the maintained aggregate answers in O(1) instead of an
  O(extent) re-scan.  Acceptance: ≥10x over the PR-1 path at 10⁴ objects.
* ``key`` — update ``isbn``, guarded by the ``cc1`` key constraint: the key
  hash index answers uniqueness in O(1).
* ``extent`` — ``extent()`` of a 1%-selectivity class resolves from the
  deep-extent index in O(|result|).  Acceptance: ≥20x over the full-store
  scan at 10⁴ objects.
* ``scaling`` — the regression guard CI runs with ``--quick``: an indexed
  aggregate-constraint commit at 10⁴ objects must stay within a fixed
  multiple of the 10³ case (O(1), not O(extent)).

Store sizes 10³–10⁵ (10³–10⁴ with ``--quick``).  Each case compares an
``indexed=True`` store against an ``indexed=False`` one — the latter is
exactly the PR-1 code path (delta-driven enforcement, scan-based residual
checks).  Results land in ``BENCH_e14_indexes.json`` via the shared
benchmark harness (see ``conftest.py``).
"""

import time

from repro import ObjectStore
from repro.fixtures import cslibrary_schema

#: One RefereedPubl per RARE_EVERY Publications — the 1%-selectivity class.
RARE_EVERY = 100


def _populated_store(size: int, indexed: bool) -> ObjectStore:
    schema = cslibrary_schema()
    schema.set_constant("MAX", 10**12)  # keep the sum constraint satisfiable
    store = ObjectStore(schema, enforce=False, indexed=indexed)
    for index in range(size):
        store.insert(
            "Publication",
            title=f"Book {index}",
            isbn=f"ISBN-{index}",
            publisher="ACM",
            shopprice=50.0 + index % 40,
            ourprice=45.0 + index % 40,
        )
        if index % RARE_EVERY == 0:
            store.insert(
                "RefereedPubl",
                title=f"Proc {index}",
                isbn=f"ISBN-R-{index}",
                publisher="IEEE",
                shopprice=60.0,
                ourprice=55.0,
                editors=frozenset({"ed"}),
                rating=3,
                avgAccRate=0.4,
            )
    store.enforce = True
    store.dependency_index()  # build outside the timed region
    assert store.check_all() == []  # baseline: incremental checking resumes
    return store


def _best_of(fn, repetitions: int = 5) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _commit_timer(store, **changes):
    target = next(iter(store.objects()))

    def commit():
        with store.transaction():
            store.update(target, **changes)

    return commit


def test_e14_aggregate_commit_speedup(benchmark, e14_size):
    """Maintained running sums: aggregate-read-attribute commits are O(1)."""
    indexed = _populated_store(e14_size, indexed=True)
    baseline = _populated_store(e14_size, indexed=False)

    repetitions = 5 if e14_size <= 10_000 else 3
    t_indexed = _best_of(_commit_timer(indexed, ourprice=40.0), repetitions)
    t_baseline = _best_of(_commit_timer(baseline, ourprice=40.0), repetitions)
    t_key_indexed = _best_of(_commit_timer(indexed, isbn="ISBN-X"), repetitions)
    t_key_baseline = _best_of(_commit_timer(baseline, isbn="ISBN-X"), repetitions)
    benchmark(_commit_timer(indexed, ourprice=40.0))

    benchmark.extra_info["objects"] = e14_size
    benchmark.extra_info["aggregate_commit_ms"] = round(t_indexed * 1000, 4)
    benchmark.extra_info["aggregate_commit_pr1_ms"] = round(t_baseline * 1000, 4)
    benchmark.extra_info["speedup_aggregate"] = round(t_baseline / t_indexed, 1)
    benchmark.extra_info["key_commit_ms"] = round(t_key_indexed * 1000, 4)
    benchmark.extra_info["key_commit_pr1_ms"] = round(t_key_baseline * 1000, 4)
    benchmark.extra_info["speedup_key"] = round(t_key_baseline / t_key_indexed, 1)

    # Acceptance: ≥10x over the PR-1 scan path once the extent dominates.
    if e14_size >= 10_000:
        assert t_baseline / t_indexed >= 10.0, (
            f"aggregate-constraint commit only {t_baseline / t_indexed:.1f}x "
            f"faster than the unindexed path at {e14_size} objects"
        )


def test_e14_extent_throughput(benchmark, e14_size):
    """Deep-extent indexes: a 1%-selectivity extent() is O(|result|)."""
    indexed = _populated_store(e14_size, indexed=True)
    baseline = _populated_store(e14_size, indexed=False)
    rare = len(indexed.extent("RefereedPubl"))
    assert rare == len(baseline.extent("RefereedPubl")) == (e14_size // RARE_EVERY)

    t_indexed = _best_of(lambda: indexed.extent("RefereedPubl"), 7)
    t_baseline = _best_of(lambda: baseline.extent("RefereedPubl"), 7)
    benchmark(lambda: indexed.extent("RefereedPubl"))

    benchmark.extra_info["objects"] = e14_size
    benchmark.extra_info["rare_extent_size"] = rare
    benchmark.extra_info["extent_indexed_us"] = round(t_indexed * 1e6, 2)
    benchmark.extra_info["extent_scan_us"] = round(t_baseline * 1e6, 2)
    benchmark.extra_info["speedup_extent"] = round(t_baseline / t_indexed, 1)

    if e14_size >= 10_000:
        assert t_baseline / t_indexed >= 20.0, (
            f"indexed extent() only {t_baseline / t_indexed:.1f}x faster than "
            f"the full-store scan at {e14_size} objects"
        )


def test_e14_commit_stays_constant(benchmark):
    """The CI regression guard: an indexed aggregate-constraint commit must
    not regress to O(extent) — the 10⁴-object commit stays under a fixed
    multiple of the 10³ case (plus absolute slack for timer noise; a
    regression to scanning costs ~70x, far outside the envelope)."""
    small = _populated_store(1_000, indexed=True)
    large = _populated_store(10_000, indexed=True)

    t_small = _best_of(_commit_timer(small, ourprice=40.0), 7)
    t_large = _best_of(_commit_timer(large, ourprice=40.0), 7)
    benchmark(_commit_timer(large, ourprice=40.0))

    benchmark.extra_info["commit_1k_ms"] = round(t_small * 1000, 4)
    benchmark.extra_info["commit_10k_ms"] = round(t_large * 1000, 4)
    benchmark.extra_info["ratio_10k_over_1k"] = round(t_large / t_small, 2)

    assert t_large <= 5 * t_small + 5e-4, (
        f"aggregate-constraint commit scales with the extent: "
        f"{t_small * 1e6:.0f}us at 10^3 vs {t_large * 1e6:.0f}us at 10^4"
    )


def test_e14_indexed_unindexed_equivalence(benchmark, e14_size):
    """The fast path must reject exactly what the scan path rejects (the
    exhaustive property test lives in tests/engine/test_indexes.py)."""
    import pytest

    from repro.errors import ConstraintViolation

    size = min(e14_size, 1_000)  # correctness spot check needs no scale

    def build_and_reject():
        for indexed in (True, False):
            store = _populated_store(size, indexed=indexed)
            target = next(iter(store.objects()))
            # Break the key constraint (duplicate isbn) and the sum ceiling.
            with pytest.raises(ConstraintViolation, match="cc1"):
                with store.transaction():
                    store.update(target, isbn="ISBN-1")
            store.schema.set_constant("MAX", 1)
            with pytest.raises(ConstraintViolation, match="cc2"):
                store.update(target, ourprice=44.0)
            store.schema.set_constant("MAX", 10**12)
            assert store.check_all() == []
        return True

    assert benchmark(build_and_reject)
