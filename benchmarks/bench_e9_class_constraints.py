"""E9 — Section 5.2.2: integration of class constraints.

Paper artifacts:

* class constraints are subjective by default (``cc2`` of Publication stays
  local);
* classes untouched by Eq/Sim rules have *objective extension* and keep all
  class constraints;
* the key constraint survives when all equality rules are key-to-key and
  similarity sources are covered by equality rules — the Figure 1 ``isbn``
  keys propagate; a non-key equality rule breaks the propagation.
"""

from repro import ComparisonRule
from repro.fixtures import library_integration_spec
from repro.integration.class_constraints import integrate_class_constraints
from repro.integration.conformation import conform
from repro.integration.relationships import Side


def _run(spec):
    conformation = conform(spec)
    return integrate_class_constraints(spec, conformation)


def test_e9_class_constraints(benchmark, library_setup):
    spec, _, _ = library_setup
    report = benchmark(_run, spec)

    origins = {(c.origin, c.scope) for c in report.propagated}
    assert ("key-propagation", "CSLibrary.Publication") in origins
    assert ("key-propagation", "Bookseller.Item") in origins

    retained = dict(report.retained_locally)
    assert "CSLibrary.Publication.cc2" in retained
    assert "CSLibrary.ScientificPubl.cc1" in retained

    assert "ProfessionalPubl" in report.objective_extension[Side.LOCAL]
    assert "Publisher" in report.objective_extension[Side.REMOTE]

    # Counter-case: a second, non-key equality rule (matching on titles)
    # breaks the propagation condition.
    broken_spec = library_integration_spec()
    broken_spec.add_rule(
        ComparisonRule.equality("Publication", "Item", "O.title = O'.title")
    )
    broken_report = _run(broken_spec)
    broken_origins = {(c.origin, c.scope) for c in broken_report.propagated}
    assert ("key-propagation", "CSLibrary.Publication") not in broken_origins

    benchmark.extra_info["keys propagated"] = 2
    benchmark.extra_info["retained locally"] = len(report.retained_locally)
    benchmark.extra_info["non-key rule breaks propagation"] = True
