"""E18 — explainable violations: what reason tracing and conflict cores cost.

PR 6 added reason-traced evaluation (``repro.constraints.evaluate``) and
deletion-based subset-minimal conflict cores (``repro.engine.explain``).
The design contract is asymmetric: the success path must not pay for
explainability at all (tracing only starts *after* a check has failed), a
rejection may pay at most one extra traced re-run of the failing check, and
full core extraction is an offline/audit-time cost.  This module records all
three prices:

* ``success_commit`` — a committed transaction on an enforcing store with
  ``explain=True`` vs ``explain=False``.  Acceptance: the tracing-enabled
  store's commit latency is unchanged (≤1.5x with absolute timer slack —
  nothing on this path allocates a trace).
* ``rejection`` — an insert that violates the referential constraint
  ``db1``, explain on vs off.  Acceptance: ≤2x — detection runs once
  untraced, then once more traced to build the reason graph.
* ``core_extraction`` — ``store.explain_violations()`` on a store with a
  planted referential violation and a key collision, at 10³ and 10⁴
  objects.  The trace-seeded support keeps the shrink loop's conflict
  checks over a handful of candidates (each check re-filters extents, so
  the cost is a small multiple of one audit, not quadratic in it); the gate
  asserts the 10³→10⁴ growth stays linear-ish.

Results land in ``BENCH_e18_explain.json`` via the shared harness
(see ``conftest.py``).
"""

import time

from repro import ObjectStore
from repro.errors import ConstraintViolation
from repro.fixtures import bookseller_schema

#: Block size: each Publisher is referenced by this many consecutive Items.
ITEMS_PER_PUBLISHER = 100


def _populated_store(size: int, enforce: bool = True, **kwargs) -> ObjectStore:
    store = ObjectStore(bookseller_schema(), enforce=False, **kwargs)
    publishers = [
        store.insert("Publisher", name=f"Pub {index}", location="NY")
        for index in range(max(size // ITEMS_PER_PUBLISHER, 2))
    ]
    for index in range(size):
        block = min(index // ITEMS_PER_PUBLISHER, len(publishers) - 1)
        store.insert(
            "Item",
            title=f"Book {index}",
            isbn=f"ISBN-{index}",
            publisher=publishers[block],
            authors=frozenset({"a"}),
            shopprice=50.0,
            libprice=45.0,
        )
    if enforce:
        store.enforce = True
        store.dependency_index()  # build outside the timed region
        assert store.check_all() == []
    return store


def _best_of(fn, repetitions: int = 5) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _commit_timer(store):
    """One committed transaction flipping an Item between two publishers —
    the e15 workload: dirties ``(Item, publisher)``, re-checks db1, passes."""
    items = store.extent("Item")
    publishers = store.extent("Publisher")
    target = items[1]
    original, other = publishers[0], publishers[1]

    def commit():
        with store.transaction():
            store.update(target, publisher=other)
            store.update(target, publisher=original)

    return commit


def _rejection_timer(store):
    """One rejected insert: an unreferenced publisher violates db1."""

    def reject():
        try:
            store.insert("Publisher", name="Ghost", location="X")
        except ConstraintViolation:
            return
        raise AssertionError("ghost publisher was not rejected")

    return reject


def test_e18_success_commit_latency_unchanged(benchmark, e18_size):
    """Tracing off the success path: explain=True costs nothing on commits
    that pass — the flag only changes what happens after a check fails."""
    explaining = _populated_store(e18_size, explain=True)
    plain = _populated_store(e18_size, explain=False)

    t_explaining = _best_of(_commit_timer(explaining), 7)
    t_plain = _best_of(_commit_timer(plain), 7)
    benchmark(_commit_timer(explaining))

    benchmark.extra_info["objects"] = e18_size
    benchmark.extra_info["commit_explain_on_ms"] = round(t_explaining * 1000, 4)
    benchmark.extra_info["commit_explain_off_ms"] = round(t_plain * 1000, 4)
    benchmark.extra_info["ratio_on_over_off"] = round(t_explaining / t_plain, 2)

    assert t_explaining <= 1.5 * t_plain + 5e-4, (
        f"explain=True slowed the success path: {t_explaining * 1e6:.0f}us "
        f"vs {t_plain * 1e6:.0f}us at {e18_size} objects"
    )


def test_e18_rejection_overhead_bounded(benchmark, e18_size):
    """A rejection pays at most one traced re-run of the failing check:
    detection with explain=True stays within 2x of explain=False."""
    explaining = _populated_store(e18_size, explain=True)
    plain = _populated_store(e18_size, explain=False)

    t_explaining = _best_of(_rejection_timer(explaining), 7)
    t_plain = _best_of(_rejection_timer(plain), 7)
    benchmark(_rejection_timer(explaining))

    # sanity: the traced rejection actually carries a reason graph
    try:
        explaining.insert("Publisher", name="Ghost", location="X")
    except ConstraintViolation as exc:
        assert exc.trace is not None and exc.trace.events
    else:  # pragma: no cover - guarded by the timer above
        raise AssertionError("ghost publisher was not rejected")

    benchmark.extra_info["objects"] = e18_size
    benchmark.extra_info["reject_explain_on_ms"] = round(t_explaining * 1000, 4)
    benchmark.extra_info["reject_explain_off_ms"] = round(t_plain * 1000, 4)
    benchmark.extra_info["ratio_on_over_off"] = round(t_explaining / t_plain, 2)

    assert t_explaining <= 2.0 * t_plain + 1e-3, (
        f"traced rejection {t_explaining * 1e6:.0f}us exceeds 2x the "
        f"untraced {t_plain * 1e6:.0f}us at {e18_size} objects"
    )


def _violating_store(size: int) -> ObjectStore:
    """A non-enforcing store with one violation per explanation shape:
    an unreferenced publisher (db1, quantified/referential) and an isbn
    collision (cc1, key)."""
    store = _populated_store(size, enforce=False)
    store.insert("Publisher", name="Ghost", location="X")
    referenced = store.extent("Publisher")[0]
    store.insert(
        "Item",
        title="Duplicate",
        isbn="ISBN-0",
        publisher=referenced,
        authors=frozenset({"a"}),
        shopprice=50.0,
        libprice=45.0,
    )
    return store


def test_e18_core_extraction_time(benchmark, e18_size):
    """Core extraction: audit-time cost, trace-seeded so the shrink loop's
    conflict checks stay over a handful of candidates at any store size."""
    store = _violating_store(e18_size)
    violations = store.audit()
    assert violations

    cores = benchmark(lambda: store.explain_violations(violations))

    by_suffix = {core.constraint_name.rsplit(".", 1)[-1]: core for core in cores}
    assert set(by_suffix) == {"db1", "cc1"}
    assert all(core.minimal for core in cores)
    ghost = by_suffix["db1"]
    assert [m.class_name for m in ghost.members] == ["Publisher"]
    collision = by_suffix["cc1"]
    assert len(collision.members) == 2  # exactly the colliding pair

    benchmark.extra_info["objects"] = e18_size
    benchmark.extra_info["cores"] = len(cores)
    benchmark.extra_info["shrink_checks"] = sum(core.checks for core in cores)


def _scan_check_timer(store):
    """One untraced scan-semantics evaluation of every non-object
    constraint — the unit of work core extraction is measured against.
    (Extraction must mask extents, and the maintained indexes describe the
    full store, so scan semantics is the fair baseline, not the O(1)
    probes.)"""
    from repro.constraints.evaluate import evaluate
    from repro.constraints.model import ConstraintKind

    constraints = [
        c
        for c in store.schema.all_constraints()
        if c.kind is not ConstraintKind.OBJECT
    ]

    def check():
        for constraint in constraints:
            ctx = store.eval_context(
                self_extent_class=(
                    constraint.owner
                    if constraint.kind is ConstraintKind.CLASS
                    else None
                )
            )
            ctx.indexes = None
            evaluate(constraint.formula, ctx)

    return check


def test_e18_core_extraction_bounded_by_scan_checks(benchmark, e18_size):
    """The complexity gate: extraction costs a small constant number of
    scan-semantics checks — the traced seed, the trace-seeded shrink loop
    (a handful of conflict checks over masked views), and one isolated
    re-trace.  It must never regress to shrinking over the whole extent,
    which would cost O(extent) checks instead."""
    store = _violating_store(e18_size)
    violations = store.audit()

    t_scan = _best_of(_scan_check_timer(store), 5)
    t_extract = _best_of(lambda: store.explain_violations(violations), 3)
    benchmark(lambda: store.explain_violations(violations))

    benchmark.extra_info["objects"] = e18_size
    benchmark.extra_info["scan_check_ms"] = round(t_scan * 1000, 4)
    benchmark.extra_info["extract_ms"] = round(t_extract * 1000, 4)
    benchmark.extra_info["checks_per_scan"] = round(t_extract / t_scan, 2)

    assert t_extract <= 10 * t_scan + 1e-2, (
        f"core extraction costs {t_extract / t_scan:.1f} scan checks at "
        f"{e18_size} objects — the shrink loop is no longer trace-seeded"
    )
