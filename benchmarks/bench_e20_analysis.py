"""E20 — static analysis: registration-time cost and the pruned hot path.

PR 8 added a static-analysis subsystem over constraint ASTs
(:mod:`repro.constraints.analysis`): lint, per-constraint satisfiability,
cross-constraint contradiction/subsumption, and redundancy pruning feeding
the incremental-enforcement dispatch tables.  This benchmark records its two
performance claims:

* analysis is a **bounded one-time cost** paid at schema registration
  (``ObjectStore(schema, analyze=True)``) — the cross-constraint pass is
  O(n²) solver calls over n object constraints, but runs once per schema,
  never per commit;
* steady-state commits are **no slower** with analysis on (the paper-shaped
  fixture schema has nothing to prune: both stores walk identical dispatch
  tables), and **≥1.5x faster** where redundancy pruning applies (a ladder
  of entailed constraints collapses to its strongest member).

``e20_size`` is the number of object constraints in the synthetic ladder
schema (``size >= 1`` … ``size >= n``: the strongest entails all others, so
n−1 of n are pruned).  Run with ``--quick`` for the CI smoke size.
"""

import time

from repro import ObjectStore
from repro.fixtures import cslibrary_schema
from repro.tm.parser import parse_database


def _ladder_source(constraints: int) -> str:
    lines = [
        "Database Bench",
        "Class Widget",
        "  attributes",
        "    size : int",
        "    label : string",
        "  object constraints",
    ]
    for k in range(1, constraints + 1):
        lines.append(f"    oc{k:03d} : size >= {k}")
    lines.append("end Widget")
    return "\n".join(lines) + "\n"


def _best_of(fn, repetitions: int = 5) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _populate(store: ObjectStore, objects: int = 200) -> None:
    for index in range(objects):
        store.insert("Widget", size=1_000 + index, label=f"w{index}")


def _best_update(store: ObjectStore, rounds: int = 300) -> float:
    target = store.extent("Widget")[0]
    best = float("inf")
    for round_index in range(rounds):
        start = time.perf_counter()
        store.update(target, size=2_000 + round_index % 10)
        best = min(best, time.perf_counter() - start)
    return best


def test_e20_registration_cost_is_bounded(benchmark, e20_size):
    """Analysis-on registration pays the full pass pipeline once; record it
    against plain registration and hold a generous absolute ceiling."""
    source = _ladder_source(e20_size)

    def register_analyzed():
        return ObjectStore(parse_database(source), analyze=True)

    def register_plain():
        return ObjectStore(parse_database(source))

    t_plain = _best_of(register_plain, 3)
    store = benchmark(register_analyzed)
    t_analyzed = _best_of(register_analyzed, 3)

    benchmark.extra_info["constraints"] = e20_size
    benchmark.extra_info["plain_registration_ms"] = round(t_plain * 1000, 3)
    benchmark.extra_info["analyzed_registration_ms"] = round(t_analyzed * 1000, 3)
    benchmark.extra_info["one_time_overhead_ms"] = round(
        (t_analyzed - t_plain) * 1000, 3
    )
    # Bounded one-time cost: even the O(n²) cross pass over the largest
    # ladder stays far below this ceiling (observed ~0.5 s at n=64).
    assert t_analyzed < 5.0, (
        f"analysis-on registration took {t_analyzed:.2f}s "
        f"for {e20_size} constraints"
    )
    assert store.analyze is True


def test_e20_steady_state_parity_on_fixture_schema(benchmark, e20_size):
    """Nothing prunes on the paper's fixture schema, so analyze-on commits
    must match the analyze-off baseline (same dispatch tables)."""

    def fresh(analyze: bool) -> ObjectStore:
        schema = cslibrary_schema()
        schema.set_constant("MAX", 10**12)
        store = ObjectStore(schema, analyze=analyze)
        for index in range(200):
            store.insert(
                "Publication",
                title=f"Book {index}",
                isbn=f"ISBN-{index}",
                publisher="ACM",
                shopprice=50.0,
                ourprice=45.0,
            )
        return store

    baseline = fresh(analyze=False)
    analyzed = fresh(analyze=True)
    target_off = baseline.extent("Publication")[0]
    target_on = analyzed.extent("Publication")[0]

    def commit_off():
        baseline.update(target_off, publisher="IEEE")

    def commit_on():
        analyzed.update(target_on, publisher="IEEE")

    t_off = _best_of(commit_off, 200)
    t_on = _best_of(commit_on, 200)
    benchmark(commit_on)

    benchmark.extra_info["baseline_commit_us"] = round(t_off * 1e6, 2)
    benchmark.extra_info["analyzed_commit_us"] = round(t_on * 1e6, 2)
    benchmark.extra_info["ratio"] = round(t_on / t_off, 3)
    # Parity within noise: the analyze-on store adds one frozenset lookup.
    assert t_on <= t_off * 1.3 + 20e-6, (
        f"analyze-on steady-state commit {t_on * 1e6:.1f}us vs "
        f"baseline {t_off * 1e6:.1f}us"
    )


def test_e20_pruned_hot_path_speedup(benchmark, e20_size):
    """Where pruning applies (n−1 of n ladder constraints are entailed by
    the strongest), commits on the analyzed store are ≥1.5x faster."""
    source = _ladder_source(e20_size)
    plain = ObjectStore(parse_database(source))
    pruned = ObjectStore(parse_database(source), analyze=True)
    _populate(plain)
    _populate(pruned)

    t_plain = _best_update(plain)
    t_pruned = _best_update(pruned)
    target = pruned.extent("Widget")[0]
    benchmark(lambda: pruned.update(target, size=3_000))

    pruned_set = pruned.dependency_index().pruned_constraints()
    benchmark.extra_info["constraints"] = e20_size
    benchmark.extra_info["pruned_away"] = len(pruned_set)
    benchmark.extra_info["plain_commit_us"] = round(t_plain * 1e6, 2)
    benchmark.extra_info["pruned_commit_us"] = round(t_pruned * 1e6, 2)
    benchmark.extra_info["speedup"] = round(t_plain / t_pruned, 2)

    assert len(pruned_set) == e20_size - 1
    assert t_plain / t_pruned >= 1.5, (
        f"pruned hot path only {t_plain / t_pruned:.2f}x faster at "
        f"{e20_size} ladder constraints"
    )
    # Equivalence spot check: both stores still reject below the keeper.
    import pytest

    from repro.errors import ConstraintViolation

    for store in (plain, pruned):
        with pytest.raises(ConstraintViolation, match="oc"):
            store.insert("Widget", size=1, label="reject")
