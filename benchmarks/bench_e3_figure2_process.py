"""E3 — Figure 2: instance-based interoperation (conformation + merging).

Paper artifact: the conformation/merging process over the two object sets,
producing a global object set classified by *both* databases' hierarchies,
with the virtual class RefereedProceedings arising from the partial overlap
of Proceedings and RefereedPubl, as a subclass of both.
"""

from repro.integration.conformation import conform
from repro.integration.hierarchy import derive_hierarchy
from repro.integration.matching import match_instances
from repro.integration.merging import merge_instances


def _figure2(spec, local_store, remote_store):
    match = match_instances(spec, local_store, remote_store)
    conformation = conform(spec, local_store, remote_store)
    view = merge_instances(spec, conformation, match)
    hierarchy = derive_hierarchy(view, conformation)
    return match, view, hierarchy


def test_e3_figure2_process(benchmark, library_setup):
    spec, local_store, remote_store = library_setup
    match, view, hierarchy = benchmark(_figure2, spec, local_store, remote_store)

    # Merging: 2 equality merges + 3 publisher merges via descriptivity.
    assert len(view.merged_objects()) == 5
    # The RefereedProceedings virtual subclass of Figure 2.
    assert "RefereedProceedings" in hierarchy.virtual_classes
    members = {obj.state["isbn"] for obj in view.extent("RefereedProceedings")}
    assert members == {"ISBN-001", "ISBN-006"}
    assert hierarchy.is_subclass("RefereedProceedings", "CSLibrary.RefereedPubl")
    assert hierarchy.is_subclass("RefereedProceedings", "Bookseller.Proceedings")
    # A derived cross-database isa edge (extent containment).
    assert ("Bookseller.Publisher", "CSLibrary.VirtPublisher") in hierarchy.derived_edges

    benchmark.extra_info["global objects"] = len(list(view.objects()))
    benchmark.extra_info["merged objects"] = len(view.merged_objects())
    benchmark.extra_info["virtual classes"] = sorted(hierarchy.virtual_classes)
    benchmark.extra_info["derived isa edges"] = len(set(hierarchy.derived_edges))
