"""E5 — Section 4: conformation of constraints.

Paper artifacts, verbatim:

* ``oc2`` of Publication reallocated to the virtual class —
  "object constraint on VirtPublisher: oc1: name in KNOWNPUBLISHERS";
* ``oc1`` of RefereedPubl converted through ``multiply(2)`` —
  "object constraint on RefereedPubl: oc1: rating >= 4".
"""

from repro import parse_expression
from repro.integration.conformation import conform
from repro.integration.relationships import Side


def _run(spec, local_store, remote_store):
    return conform(spec, local_store, remote_store)


def test_e5_section4_conformation(benchmark, library_setup):
    spec, local_store, remote_store = library_setup
    conformation = benchmark(_run, spec, local_store, remote_store)

    local = conformation.on(Side.LOCAL)
    oc2 = local.conformed_constraints["CSLibrary.Publication.oc2"]
    assert oc2.owner == "VirtPublisher"
    assert oc2.formula == parse_expression("name in KNOWNPUBLISHERS")

    oc1 = local.conformed_constraints["CSLibrary.RefereedPubl.oc1"]
    assert oc1.owner == "RefereedPubl"
    assert oc1.formula == parse_expression("rating >= 4")

    # Supporting artifacts: renames and instance conversion.
    assert "libprice" in local.schema.effective_attributes("Publication")
    ratings = sorted(
        obj.state["rating"] for obj in local.instances_of("ScientificPubl")
    )
    assert ratings == [4, 6, 8]  # doubled 2, 3, 4

    benchmark.extra_info["oc2 conformed"] = f"{oc2.owner}: {oc2.formula}"
    benchmark.extra_info["oc1 conformed"] = f"{oc1.owner}: {oc1.formula}"
    benchmark.extra_info["virtual publishers"] = len(
        local.instances_of("VirtPublisher")
    )
