"""E13 — incremental (delta-driven) vs full constraint enforcement.

The paper's interoperation pipeline assumes component databases enforce
their own constraints on every update; the seed engine did so by re-checking
*every* constraint against the *whole* store at each commit.  This benchmark
records what the constraint-dependency index buys: commit-time validation of
a single-object update touches only the constraints whose read set
intersects the update's dirty set, so its cost is bounded by the affected
constraints — not by the store.

Three workloads per store size (10² – 10⁵ Figure 1-shaped publications):

* ``plain`` — update an attribute only an O(1) object constraint reads
  (``publisher``): incremental validation is constant-time.
* ``aggregate`` — update ``ourprice``, which the ``cc2`` sum constraint
  reads: incremental validation still pays one O(n) aggregate, but skips
  the per-object sweep.
* ``full`` — what the seed did at every commit: ``check_all()``.

Run ``pytest benchmarks/bench_e13_incremental.py --quick`` for the CI smoke
sizes (10², 10³).  The ≥5x acceptance assertion runs at every size; at 10⁴
the observed ratio is ~20x for aggregate-reading updates and >500x for plain
updates.
"""

import time

from repro import ObjectStore
from repro.fixtures import cslibrary_schema

PUBLISHERS = ("ACM", "IEEE", "Springer", "Elsevier", "Kluwer")


def _populated_store(size: int) -> ObjectStore:
    schema = cslibrary_schema()
    schema.set_constant("MAX", 10**12)  # keep the sum constraint satisfiable
    store = ObjectStore(schema, enforce=False)
    for index in range(size):
        store.insert(
            "Publication",
            title=f"Book {index}",
            isbn=f"ISBN-{index}",
            publisher=PUBLISHERS[index % len(PUBLISHERS)],
            shopprice=50.0 + index % 40,
            ourprice=45.0 + index % 40,
        )
    store.enforce = True
    store.dependency_index()  # build outside the timed region
    assert store.check_all() == []  # baseline: incremental checking resumes
    return store


def _best_of(fn, repetitions: int = 5) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_e13_single_update_speedup(benchmark, e13_size):
    store = _populated_store(e13_size)
    target = next(iter(store.objects()))

    def plain_update():
        with store.transaction():
            store.update(target, publisher="IEEE")

    def aggregate_update():
        with store.transaction():
            store.update(target, ourprice=40.0)

    def full_revalidation():
        assert store.check_all() == []

    # Time the comparison baseline and the two incremental workloads with
    # the same best-of-N discipline, then let pytest-benchmark record the
    # headline (plain single-object commit) for the reproduction record.
    repetitions = 5 if e13_size <= 10_000 else 2
    t_full = _best_of(full_revalidation, repetitions)
    t_aggregate = _best_of(aggregate_update, repetitions)
    t_plain = _best_of(plain_update, repetitions)
    benchmark(plain_update)

    benchmark.extra_info["objects"] = e13_size
    benchmark.extra_info["full_ms"] = round(t_full * 1000, 3)
    benchmark.extra_info["aggregate_commit_ms"] = round(t_aggregate * 1000, 3)
    benchmark.extra_info["plain_commit_ms"] = round(t_plain * 1000, 3)
    benchmark.extra_info["speedup_plain"] = round(t_full / t_plain, 1)
    benchmark.extra_info["speedup_aggregate"] = round(t_full / t_aggregate, 1)

    # Acceptance: ≥5x over full revalidation for single-object updates.
    assert t_full / t_plain >= 5.0, (
        f"plain single-object update only {t_full / t_plain:.1f}x faster "
        f"than full revalidation at {e13_size} objects"
    )


def test_e13_equivalence_spot_check(benchmark, e13_size):
    """The fast path must reject exactly what full validation rejects: an
    update that breaks an object constraint fails identically on an
    incremental and a non-incremental store (the exhaustive property test
    lives in tests/engine/test_incremental.py)."""
    import pytest

    from repro.errors import ConstraintViolation

    size = min(e13_size, 1_000)  # correctness spot check needs no scale

    def build_and_reject():
        for incremental in (True, False):
            store = _populated_store(size)
            store.incremental = incremental
            target = next(iter(store.objects()))
            with pytest.raises(ConstraintViolation, match="oc1"):
                with store.transaction():
                    store.update(target, ourprice=1e6)  # > shopprice
            assert store.check_all() == []
        return True

    assert benchmark(build_and_reject)
