"""E1 — the introduction example (personnel databases).

Paper artifact: from DB1's ``trav-reimb ∈ {10, 20}`` and DB2's
``trav-reimb ∈ {14, 24}`` under the company's averaging policy, the global
constraint ``trav-reimb ∈ {12, 17, 22}`` is derived, while DB1's subjective
``salary < 1500`` does not propagate.
"""

from repro import parse_expression
from repro.integration import IntegrationWorkbench


EXPECTED_GLOBAL = parse_expression("trav_reimb in {12, 17, 22}")
EXPECTED_ABSENT = parse_expression("salary < 1500")
SCOPE = "PersonnelDB1.Employee ⋈ PersonnelDB2.Employee"


def _run(personnel_setup):
    spec, db1, db2 = personnel_setup
    return IntegrationWorkbench(spec, db1, db2).run()


def test_e1_intro_example(benchmark, personnel_setup):
    result = benchmark(_run, personnel_setup)

    formulas = result.derivation.formulas_for_scope(SCOPE)
    assert EXPECTED_GLOBAL in formulas, "paper: trav-reimb ∈ {12, 17, 22}"
    assert EXPECTED_ABSENT not in [
        c.formula for c in result.global_constraints
    ], "paper: the subjective salary rule must not propagate"
    assert result.derivation.explicit_conflicts == [], (
        "paper: the apparent conflict is solved by the way global values "
        "are defined"
    )
    bob = result.view.merged_objects()[0]
    assert bob.state["trav_reimb"] == 17  # avg(20, 14)

    benchmark.extra_info["derived"] = "trav_reimb in {12, 17, 22}"
    benchmark.extra_info["merged avg(20, 14)"] = bob.state["trav_reimb"]
    benchmark.extra_info["subjective salary propagated"] = False
