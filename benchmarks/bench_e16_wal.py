"""E16 — durability: WAL write-through overhead and crash-recovery time.

PR 4 adds the durability subsystem (:mod:`repro.engine.wal`): every accepted
mutation appends a CRC-framed JSON record to a write-ahead log, transactions
bracket their records with begin/commit/abort markers, and
``ObjectStore.open`` recovers snapshot + committed log tail.  This benchmark
records what durability costs and how recovery scales:

* ``commit overhead`` — a single-update transaction commit with the WAL
  write-through on vs off.  The log write is O(touched objects), so the
  overhead must be a *constant factor*, not O(store).
* ``constant commit`` — the CI regression guard (runs with ``--quick``): a
  WAL-on commit at 10⁴ objects must stay within a fixed multiple of the 10³
  case; a regression to O(store) logging (e.g. accidentally snapshotting per
  commit) costs >100x and fails the build.
* ``recovery`` — ``ObjectStore.open`` wall time vs store size, both from a
  pure log tail (worst case: replay every record) and from a checkpoint
  snapshot (best case: no tail).  Both are O(store) with index rebuild
  included; the numbers record the constant.

Store sizes 10³–10⁵ (10³–10⁴ with ``--quick``).  Results land in
``BENCH_e16_wal.json`` via the shared harness (see ``conftest.py``).
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro import ObjectStore
from repro.engine import WriteAheadLog
from repro.fixtures import cslibrary_schema


def _populate(store: ObjectStore, size: int) -> None:
    for index in range(size):
        store.insert(
            "Publication",
            title=f"Book {index}",
            isbn=f"ISBN-{index}",
            publisher="ACM",
            shopprice=50.0 + index % 40,
            ourprice=45.0 + index % 40,
        )


def _fresh_schema():
    schema = cslibrary_schema()
    schema.set_constant("MAX", 10**12)  # keep the sum constraint satisfiable
    return schema


def _durable_store(size: int, directory: Path | None) -> ObjectStore:
    """A populated store, WAL-attached when ``directory`` is given.

    ``checkpoint_every=0``: the measurements isolate the per-commit log
    write; checkpoint amortization is covered by the recovery case.
    """
    wal = (
        WriteAheadLog(directory, checkpoint_every=0)
        if directory is not None
        else False
    )
    store = ObjectStore(_fresh_schema(), enforce=False, wal=wal)
    _populate(store, size)
    store.enforce = True
    store.dependency_index()  # build outside the timed region
    assert store.check_all() == []
    return store


def _best_of(fn, repetitions: int = 5) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _commit_timer(store):
    target = next(iter(store.objects()))

    def commit():
        with store.transaction():
            store.update(target, ourprice=40.0)

    return commit


def test_e16_commit_overhead(benchmark, e16_size, tmp_path):
    """Durability costs a constant factor per commit, not O(store)."""
    durable = _durable_store(e16_size, tmp_path / "db")
    in_memory = _durable_store(e16_size, None)

    repetitions = 5 if e16_size <= 10_000 else 3
    t_wal = _best_of(_commit_timer(durable), repetitions)
    t_memory = _best_of(_commit_timer(in_memory), repetitions)
    benchmark(_commit_timer(durable))
    durable.close()

    overhead = t_wal / t_memory
    benchmark.extra_info["objects"] = e16_size
    benchmark.extra_info["commit_wal_on_us"] = round(t_wal * 1e6, 2)
    benchmark.extra_info["commit_wal_off_us"] = round(t_memory * 1e6, 2)
    benchmark.extra_info["overhead_factor"] = round(overhead, 2)

    # Acceptance: the write-through is O(touched) — a handful of buffered
    # log lines — so even with timer noise the factor stays small at every
    # store size (an O(store) write-through would scale the factor with
    # e16_size instead).
    assert t_wal <= 5 * t_memory + 5e-4, (
        f"WAL write-through costs {overhead:.1f}x at {e16_size} objects — "
        "not a constant factor"
    )


def test_e16_wal_commit_stays_constant(benchmark, tmp_path):
    """The CI regression guard: WAL-on commits must not regress to O(store)
    — the 10⁴-object commit stays under a fixed multiple of the 10³ case."""
    small = _durable_store(1_000, tmp_path / "small")
    large = _durable_store(10_000, tmp_path / "large")

    t_small = _best_of(_commit_timer(small), 7)
    t_large = _best_of(_commit_timer(large), 7)
    benchmark(_commit_timer(large))
    small.close()
    large.close()

    benchmark.extra_info["commit_1k_us"] = round(t_small * 1e6, 2)
    benchmark.extra_info["commit_10k_us"] = round(t_large * 1e6, 2)
    benchmark.extra_info["ratio_10k_over_1k"] = round(t_large / t_small, 2)

    assert t_large <= 5 * t_small + 5e-4, (
        f"WAL-on commit scales with the store: {t_small * 1e6:.0f}us at 10^3 "
        f"vs {t_large * 1e6:.0f}us at 10^4"
    )


def test_e16_recovery_scaling(benchmark, e16_size):
    """Recovery wall time vs store size: log-tail replay (worst case) and
    snapshot-only (after a checkpoint), index rebuild included."""
    base = Path(tempfile.mkdtemp(prefix="repro-bench-e16-"))
    try:
        path = base / "db"
        store = _durable_store(e16_size, path)
        expected = len(store)
        store.close()

        def recover():
            recovered = ObjectStore.open(path, verify=False)
            assert len(recovered) == expected
            recovered.close()
            return recovered

        repetitions = 3 if e16_size <= 10_000 else 2
        t_log_tail = _best_of(recover, repetitions)

        checkpointed = ObjectStore.open(path, verify=False)
        checkpointed.checkpoint()
        checkpointed.close()
        t_snapshot = _best_of(recover, repetitions)

        # One verified recovery: the recovered store passes a full audit.
        verified = ObjectStore.open(path)
        assert len(verified) == expected
        verified.close()

        benchmark(recover)

        benchmark.extra_info["objects"] = e16_size
        benchmark.extra_info["recover_log_tail_ms"] = round(t_log_tail * 1e3, 2)
        benchmark.extra_info["recover_snapshot_ms"] = round(t_snapshot * 1e3, 2)
        benchmark.extra_info["objects_per_s_log_tail"] = (
            round(e16_size / t_log_tail) if t_log_tail else None
        )
    finally:
        shutil.rmtree(base, ignore_errors=True)
