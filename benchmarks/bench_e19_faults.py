"""E19 — fault injection: the no-op shim gate and fsck throughput.

PR 7 threads every WAL file operation through an optional
:class:`~repro.engine.faults.FaultInjector` and adds the ``repro fsck``
scrubber.  This benchmark holds the bargain the shim makes:

* ``shim overhead`` — the acceptance gate: a durable commit with an
  attached *empty-schedule* injector must stay within **1.05x** of the
  same commit with no injector at all (plus a fixed epsilon for timer
  noise at microsecond scale).  The success path is one ``is not None``
  branch plus an empty-dict truthiness check; anything measurably slower
  than that fails the build.
* ``fsck throughput`` — the scrubber's full three passes (CRC frame scan,
  snapshot digest verification, replay certification) over a populated
  directory; the numbers record objects/s so scrub cost stays visible
  across PRs.

Store sizes 10³–10⁴ (10³ with ``--quick``).  Results land in
``BENCH_e19_faults.json`` via the shared harness (see ``conftest.py``).
"""

import time
from pathlib import Path

from repro import ObjectStore
from repro.engine import WriteAheadLog
from repro.engine.faults import FaultInjector
from repro.engine.wal import fsck
from repro.fixtures import cslibrary_schema


def _fresh_schema():
    schema = cslibrary_schema()
    schema.set_constant("MAX", 10**12)  # keep the sum constraint satisfiable
    return schema


def _populate(store: ObjectStore, size: int) -> None:
    for index in range(size):
        store.insert(
            "Publication",
            title=f"Book {index}",
            isbn=f"ISBN-{index}",
            publisher="ACM",
            shopprice=50.0 + index % 40,
            ourprice=45.0 + index % 40,
        )


def _durable_store(size: int, directory: Path, faults=None) -> ObjectStore:
    wal = WriteAheadLog(directory, checkpoint_every=0, faults=faults)
    store = ObjectStore(_fresh_schema(), enforce=False, wal=wal)
    _populate(store, size)
    store.enforce = True
    store.dependency_index()  # build outside the timed region
    return store


def _commit_timer(store):
    target = next(iter(store.objects()))

    def commit():
        with store.transaction():
            store.update(target, ourprice=40.0)

    return commit


def _interleaved_best_of(first, second, repetitions: int) -> tuple[float, float]:
    """Best-of timings with the two timers alternating, so cache warmth and
    scheduler noise hit both sides equally instead of biasing the ratio."""
    best_first = best_second = float("inf")
    first()  # warm both paths before timing (page cache, allocator, JIT-free
    second()  # Python still benefits from warmed dict/bytecode caches)
    for _ in range(repetitions):
        start = time.perf_counter()
        first()
        best_first = min(best_first, time.perf_counter() - start)
        start = time.perf_counter()
        second()
        best_second = min(best_second, time.perf_counter() - start)
    return best_first, best_second


def test_e19_noop_shim_overhead(benchmark, e19_size, tmp_path):
    """Acceptance gate: an attached empty-schedule injector costs ≤1.05x
    per durable commit relative to no injector at all."""
    injector = FaultInjector()
    shimmed = _durable_store(e19_size, tmp_path / "shimmed", faults=injector)
    plain = _durable_store(e19_size, tmp_path / "plain")

    repetitions = 40 if e19_size <= 1_000 else 15
    t_shim, t_plain = _interleaved_best_of(
        _commit_timer(shimmed), _commit_timer(plain), repetitions
    )
    benchmark(_commit_timer(shimmed))
    shimmed.close()
    plain.close()

    overhead = t_shim / t_plain
    benchmark.extra_info["objects"] = e19_size
    benchmark.extra_info["commit_shim_us"] = round(t_shim * 1e6, 2)
    benchmark.extra_info["commit_plain_us"] = round(t_plain * 1e6, 2)
    benchmark.extra_info["overhead_factor"] = round(overhead, 3)

    # The schedule never fired and nothing was recorded: a true no-op.
    assert injector.fired == [] and not injector.crashed

    # 1.05x plus a 50us epsilon: at ~100us per commit the gate is real,
    # while a sub-epsilon absolute difference cannot flake the build.
    assert t_shim <= 1.05 * t_plain + 5e-5, (
        f"no-op fault shim costs {overhead:.2f}x per commit at {e19_size} "
        "objects — the success path must be one branch, not work"
    )


def test_e19_fsck_throughput(benchmark, e19_size, tmp_path):
    """The scrubber's three passes over a populated directory: wall time
    and objects/s, with the verdict asserted clean."""
    path = tmp_path / "db"
    store = _durable_store(e19_size, path)
    # Half the history in the snapshot, half in the log tail: both the
    # digest pass and the replay pass do real work.
    store.checkpoint()
    targets = list(store.extent("Publication"))[: max(1, e19_size // 10)]
    with store.transaction():
        for obj in targets:
            store.update(obj, ourprice=41.0)
    store.close()

    start = time.perf_counter()
    report = fsck(path)
    elapsed = time.perf_counter() - start
    assert report.status == "clean", report.findings
    assert report.objects == e19_size

    result = benchmark(lambda: fsck(path))
    assert result.status == "clean"

    benchmark.extra_info["objects"] = e19_size
    benchmark.extra_info["fsck_ms"] = round(elapsed * 1e3, 2)
    benchmark.extra_info["objects_per_s"] = (
        round(e19_size / elapsed) if elapsed else None
    )
    benchmark.extra_info["frames_valid"] = report.frames_valid
