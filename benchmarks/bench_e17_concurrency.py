"""E17 — concurrent serving: snapshot-read throughput and group commit.

PR 5 adds the concurrency layer (:mod:`repro.engine.concurrency`): readers
take immutable O(1) snapshots that never touch the coarse writer lock,
while ``sync=True`` durable commits released from the writer lock coalesce
their fsyncs through group commit (:mod:`repro.engine.wal`).  This
benchmark records what concurrent serving actually delivers:

* ``snapshot readers`` — aggregate throughput of 4 reader threads scanning
  snapshot extents, idle vs under one sustained transaction-committing
  writer.  Lock-free reads mean the degradation is bounded by GIL sharing
  (≈ +1 runnable thread), *not* by lock convoys: the acceptance gate is
  **< 2x**.  A single mid-load ``store.snapshot()`` acquisition is also
  timed — it must not block on the writer (CI guard).
* ``group commit`` — fsyncs per durable commit at 1/4/16 concurrent
  committers on one ``sync=True`` store.  The 16-committer gate is
  **< 0.25 fsyncs/commit** (< 1.0 is the hard CI guard); a lone committer
  must keep its immediate-fsync latency.
* ``recovery with schema change`` — crash recovery replays post-checkpoint
  ``set_constant`` schema records *and* restores exactly the committed
  prefix (an uncommitted transaction tail is discarded), flagging schema
  drift for ``repro recover``.

Store sizes via ``e17_size`` (10³ with ``--quick``, plus 10⁴ full).
Results land in ``BENCH_e17_concurrency.json`` via the shared harness.
"""

import threading
import time

from repro import ObjectStore
from repro.fixtures import cslibrary_schema

READER_THREADS = 4


def _fresh_schema():
    schema = cslibrary_schema()
    schema.set_constant("MAX", 10**15)  # keep the sum constraint satisfiable
    return schema


def _populate(store, size):
    for index in range(size):
        store.insert(
            "Publication",
            title=f"Book {index}",
            isbn=f"ISBN-{index}",
            publisher="ACM",
            shopprice=50.0,
            ourprice=45.0,
        )


def _reader_aggregate(store, seconds, stop_flag=None):
    """Aggregate snapshot-scan ops completed by READER_THREADS readers in
    ``seconds`` — each op takes a fresh snapshot and sums one attribute
    over the extent."""
    counts = [0] * READER_THREADS
    stop = threading.Event()
    failures = []

    def reader(slot):
        try:
            while not stop.is_set():
                with store.snapshot() as snap:
                    total = 0.0
                    for obj in snap.extent("Publication"):
                        total += obj.state["ourprice"]
                    assert total >= 0.0
                counts[slot] += 1
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(READER_THREADS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(seconds)
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    elapsed = time.perf_counter() - started
    assert not failures, failures[0]
    return sum(counts) / elapsed


def test_e17_snapshot_readers_under_writer(benchmark, e17_size):
    """Snapshot-read throughput must degrade < 2x under a sustained
    writer, and mid-load snapshot acquisition must not block on it."""
    store = ObjectStore(_fresh_schema(), enforce=False, wal=False)
    _populate(store, e17_size)
    store.enforce = True
    store.dependency_index()
    assert store.check_all() == []
    targets = [obj.oid for obj in store.extent("Publication")]
    store.snapshot()  # activate outside the timed regions

    seconds = 0.4
    idle_ops = _reader_aggregate(store, seconds)

    stop = threading.Event()
    commits = [0]
    failures = []

    def writer():
        step = 0
        try:
            while not stop.is_set():
                with store.transaction():
                    store.update(
                        targets[step % len(targets)],
                        ourprice=40.0 + (step % 10),
                    )
                commits[0] += 1
                step += 1
        except BaseException as exc:  # pragma: no cover
            failures.append(exc)

    writer_thread = threading.Thread(target=writer, daemon=True)
    writer_thread.start()
    time.sleep(0.05)  # let the writer reach steady state
    loaded_ops = _reader_aggregate(store, seconds)
    # CI guard: acquiring a snapshot while the writer keeps committing is
    # O(1) — it must never wait for the writer lock.
    acquire_start = time.perf_counter()
    probe = store.snapshot()
    acquire_seconds = time.perf_counter() - acquire_start
    probe.close()
    stop.set()
    writer_thread.join(timeout=30.0)
    assert not failures, failures[0]
    assert commits[0] > 0, "writer never committed — contention not measured"

    degradation = idle_ops / loaded_ops if loaded_ops else float("inf")
    benchmark.extra_info["objects"] = e17_size
    benchmark.extra_info["reader_threads"] = READER_THREADS
    benchmark.extra_info["idle_reads_per_s"] = round(idle_ops, 1)
    benchmark.extra_info["loaded_reads_per_s"] = round(loaded_ops, 1)
    benchmark.extra_info["writer_commits_per_s"] = round(commits[0] / seconds, 1)
    benchmark.extra_info["degradation_factor"] = round(degradation, 3)
    benchmark.extra_info["snapshot_acquire_us_under_load"] = round(
        acquire_seconds * 1e6, 1
    )

    assert degradation < 2.0, (
        f"snapshot readers degrade {degradation:.2f}x under a sustained "
        "writer — reads are serializing behind the writer"
    )
    assert acquire_seconds < 0.05, (
        f"snapshot acquisition took {acquire_seconds * 1e3:.1f}ms under "
        "writer load — it is blocking on the writer"
    )

    # The timing record: one snapshot scan on the quiesced store.
    def scan():
        with store.snapshot() as snap:
            total = 0.0
            for obj in snap.extent("Publication"):
                total += obj.state["ourprice"]
        return total

    benchmark(scan)


def _committer_round(store, committers, commits_each):
    """Run ``committers`` threads × ``commits_each`` durable transaction
    commits; returns (fsyncs per commit, commits per second)."""
    wal = store.wal
    targets = [obj.oid for obj in store.extent("Publication")]
    fsyncs_before = wal.fsyncs
    commits_before = wal.sync_commits
    failures = []

    def committer(slot):
        try:
            for step in range(commits_each):
                with store.transaction():
                    store.update(
                        targets[(slot * commits_each + step) % len(targets)],
                        ourprice=40.0 + (step % 10),
                    )
        except BaseException as exc:  # pragma: no cover
            failures.append(exc)

    threads = [
        threading.Thread(target=committer, args=(slot,), daemon=True)
        for slot in range(committers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    elapsed = time.perf_counter() - started
    assert not failures, failures[0]
    commits = wal.sync_commits - commits_before
    assert commits == committers * commits_each
    fsyncs = wal.fsyncs - fsyncs_before
    return fsyncs / commits, commits / elapsed


def test_e17_group_commit_fsync_amortization(benchmark, tmp_path):
    """Concurrent ``sync=True`` committers must share fsyncs: < 0.25
    fsyncs/commit at 16 committers (< 1.0 is the hard CI guard)."""
    store = ObjectStore.open(
        tmp_path / "db", _fresh_schema(), sync=True, checkpoint_every=0
    )
    store.enforce = False
    _populate(store, 200)
    store.enforce = True
    store.dependency_index()

    ratios = {}
    rates = {}
    for committers in (1, 4, 16):
        ratios[committers], rates[committers] = _committer_round(
            store, committers, 24
        )

    benchmark.extra_info["fsyncs_per_commit"] = {
        str(n): round(ratio, 4) for n, ratio in ratios.items()
    }
    benchmark.extra_info["commits_per_s"] = {
        str(n): round(rate, 1) for n, rate in rates.items()
    }

    # A lone committer fsyncs once per commit — durability is immediate.
    assert ratios[1] >= 0.99
    # The hard CI guard, then the amortization target.
    assert ratios[16] < 1.0, (
        f"group commit broken: {ratios[16]:.2f} fsyncs/commit at 16 "
        "committers"
    )
    assert ratios[16] < 0.25, (
        f"group commit underperforms: {ratios[16]:.2f} fsyncs/commit at 16 "
        "committers (target < 0.25)"
    )

    # The timing record: one 16-committer round.
    benchmark.pedantic(
        lambda: _committer_round(store, 16, 4), rounds=3, iterations=1
    )
    store.close()

    recovered = ObjectStore.open(tmp_path / "db", verify=False)
    assert len(recovered) == 200
    recovered.close()


def test_e17_recovery_replays_schema_changes(benchmark, tmp_path):
    """Crash recovery restores exactly the committed prefix *including*
    post-checkpoint schema-change records (the pre-PR behaviour silently
    reverted them to the checkpoint's schema)."""
    path = tmp_path / "db"
    store = ObjectStore.open(path, _fresh_schema(), checkpoint_every=0)
    store.enforce = False
    _populate(store, 500)
    store.enforce = True
    store.checkpoint()
    store.set_constant("MAX", 10**14)
    store.insert(
        "Publication",
        title="post-schema-change",
        isbn="ISBN-post",
        publisher="ACM",
        shopprice=50.0,
        ourprice=45.0,
    )
    committed = len(store)
    # Crash mid-transaction: enter a transaction, log an operation, then
    # abandon the process image without ever reaching __exit__ — the open
    # bracket must be discarded (and truncated) by recovery.
    txn = store.transaction()
    txn.__enter__()
    store.insert(
        "Publication",
        title="uncommitted",
        isbn="ISBN-lost",
        publisher="ACM",
        shopprice=50.0,
        ourprice=45.0,
    )
    del txn
    del store  # no commit, no close, no checkpoint

    def recover():
        recovered = ObjectStore.open(path, verify=False)
        assert len(recovered) == committed
        assert recovered.schema.constants["MAX"] == 10**14
        info = recovered.recovery_info
        assert info.schema_changes == 1 and info.schema_drift
        recovered.close()
        return recovered

    started = time.perf_counter()
    recover()
    elapsed = time.perf_counter() - started
    benchmark.extra_info["objects"] = committed
    benchmark.extra_info["recover_ms"] = round(elapsed * 1e3, 2)
    benchmark.extra_info["schema_changes_replayed"] = 1
    benchmark(recover)
