#!/usr/bin/env python3
"""Reverse engineering a relational database into TM, then integrating it.

The paper notes that TM specifications "are typically obtained through
reverse engineering" of existing relational databases [VeA95].  This script
walks that pipeline:

1. a relational payroll schema (tables, PK/FK, CHECK constraints) is
   translated into a TM schema — CHECKs become object constraints, keys
   become ``key`` class constraints, a PK-as-FK table becomes a subclass;
2. the result is integrated with the hand-written PersonnelDB2 of the intro
   example, deriving the same global ``trav_reimb`` constraint.
"""

from repro import (
    Average,
    AnyChoice,
    ComparisonRule,
    IntegrationSpecification,
    IntegrationWorkbench,
    ObjectStore,
    PropertyEquivalence,
    RelationalSchema,
    Trust,
    personnel_stores,
    schema_to_source,
    translate_schema,
)
from repro.integration.relationships import Side
from repro.reverse import Column, ForeignKey, Table


def build_relational_schema() -> RelationalSchema:
    schema = RelationalSchema("PayrollSQL")
    schema.add_table(
        Table(
            "Employee",
            columns=[
                Column("ssn", "varchar(16)"),
                Column("salary", "real", check="salary < 1500"),
                Column("trav_reimb", "int", check="trav_reimb IN (10, 20)"),
            ],
            primary_key=("ssn",),
        )
    )
    schema.add_table(
        Table(
            "Manager",
            columns=[
                Column("ssn", "varchar(16)"),
                Column("bonus", "real", check="bonus BETWEEN 0 AND 500"),
            ],
            primary_key=("ssn",),
            foreign_keys=[ForeignKey("ssn", "Employee", "ssn")],
        )
    )
    return schema


def main() -> None:
    relational = build_relational_schema()
    tm_schema = translate_schema(relational)

    print("=== reverse-engineered TM specification ===")
    print(schema_to_source(tm_schema))

    print("=== populating the reverse-engineered database ===")
    store = ObjectStore(tm_schema)
    store.insert("Employee", ssn="100-10", salary=1200.0, trav_reimb=10)
    store.insert("Employee", ssn="100-20", salary=1400.0, trav_reimb=20)
    store.insert(
        "Manager", ssn="100-30", salary=1450.0, trav_reimb=20, bonus=300.0
    )
    print(f"  {len(store)} objects inserted, all constraints enforced")

    # Integrate with the intro example's DB2 (same application domain).
    _, db2, _ = personnel_stores()
    spec = IntegrationSpecification(tm_schema, db2.schema)
    spec.add_rule(ComparisonRule.equality("Employee", "Employee", "O.ssn = O'.ssn"))
    spec.add_propeq(
        PropertyEquivalence("Employee", "ssn", "Employee", "ssn", df=AnyChoice())
    )
    spec.add_propeq(
        PropertyEquivalence(
            "Employee", "trav_reimb", "Employee", "trav_reimb", df=Average()
        )
    )
    spec.add_propeq(
        PropertyEquivalence(
            "Employee", "salary", "Employee", "salary",
            df=Trust(Side.LOCAL, "PayrollSQL"),
        )
    )
    spec.declare_subjective("PayrollSQL.Employee.oc1")  # the salary cap

    result = IntegrationWorkbench(spec, store, db2).run()

    print("=== integration of the reverse-engineered database ===")
    merged = result.view.merged_objects()
    for obj in merged:
        print(f"  merged {obj.state['ssn']}: global state {obj.state}")
    print("  global constraints:")
    for constraint in result.global_constraints:
        print(f"    {constraint.describe()}")


if __name__ == "__main__":
    main()
