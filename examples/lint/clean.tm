Database Inventory
Class Widget
  attributes
    name : string
    size : int
    price : real
  object constraints
    oc1 : size >= 1
    oc2 : price > 0
end Widget
