Database Inventory
Class Widget
  attributes
    size : int
    label : string
  object constraints
    oc1 : size > 10 and size < 5
    oc2 : label > 3
end Widget
