Database Inventory
Class Widget
  attributes
    size : int
  object constraints
    oc1 : size >= 3
    oc2 : size >= 2
end Widget
