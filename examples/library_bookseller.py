#!/usr/bin/env python3
"""The full Figure 1 scenario: CSLibrary ⋈ Bookseller.

Reproduces, mechanically, every worked example of the paper:

* Section 2.3 / Figure 2 — conformation and merging, with the virtual
  ``RefereedProceedings`` class derived from partially overlapping extents;
* Section 3 — the derived object constraint ``rating >= 7`` from the
  RefereedPubl similarity rule;
* Section 4 — constraint conformation (``oc2`` moves to ``VirtPublisher``;
  ``rating >= 2`` becomes ``rating >= 4`` through ``multiply(2)``);
* Section 5.1 — objectivity/subjectivity classification of every constraint;
* Section 5.2 — the derived ``publisher.name = 'ACM' implies rating >= 5``,
  the blocked derivations (trust on the prices), and the similarity-rule
  repair suggestions.
"""

from repro import (
    IntegrationWorkbench,
    bookseller_store,
    cslibrary_store,
    library_integration_spec,
    render_report,
    to_source,
)
from repro.integration.relationships import Side


def main() -> None:
    local_store, local_named = cslibrary_store()
    remote_store, remote_named = bookseller_store()
    spec = library_integration_spec()

    result = IntegrationWorkbench(spec, local_store, remote_store).run()

    print("=== Section 4: conformed constraints ===")
    conformed = result.conformation.on(Side.LOCAL).conformed_constraints
    for original in (
        "CSLibrary.Publication.oc2",
        "CSLibrary.RefereedPubl.oc1",
        "CSLibrary.NonRefereedPubl.oc1",
        "CSLibrary.ScientificPubl.cc1",
    ):
        constraint = conformed[original]
        print(
            f"  {original}  →  on {constraint.owner}: "
            f"{to_source(constraint.formula)}"
        )

    print("\n=== Section 3: derived object constraints ===")
    for analysis in result.rule_checks.analyses:
        for derived in analysis.derived:
            print(
                f"  {analysis.rule.name} ⇒ {derived.owner}: "
                f"{to_source(derived.formula)}"
            )

    print("\n=== Figure 2: the integrated view ===")
    vldb = next(
        obj
        for obj in result.view.merged_objects()
        if obj.state.get("isbn") == "ISBN-001"
    )
    print(f"  merged VLDB'95 proceedings: {vldb.state}")
    print(f"  classified under: {sorted(vldb.classes)}")
    print(
        "  RefereedProceedings extent: "
        + str(
            sorted(
                obj.state["isbn"]
                for obj in result.view.extent("RefereedProceedings")
            )
        )
    )
    print("  derived subclass relationships:")
    for child, parent in sorted(set(result.hierarchy.derived_edges)):
        print(f"    {child} isa {parent}")

    print("\n=== Section 5.2: the integrated constraint set ===")
    for constraint in result.global_constraints:
        print(f"  {constraint.describe()}")

    print("\n=== conflicts and suggestions ===")
    for conflict in result.derivation.similarity_conflicts:
        print(f"  ! {conflict.describe()}")
    for risk in result.derivation.implicit_risks:
        print(f"  ! {risk.describe()}")
    for suggestion in result.suggestions:
        print(f"  * {suggestion.describe()}")
        if suggestion.repaired_rule is not None:
            print(f"      repaired: {suggestion.repaired_rule.describe()}")

    print()
    print(render_report(result))


if __name__ == "__main__":
    main()
