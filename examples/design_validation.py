#!/usr/bin/env python3
"""The design-tool loop of Figure 3: detect conflicts, apply repairs, re-run.

A designer writes a *deliberately flawed* integration of the Figure 1
databases:

* a similarity rule whose intraobject condition contradicts the target
  class's constraints (Section 3 conflict);
* a similarity rule that does not guarantee the target's constraints
  (Section 5.2.1 strict-similarity conflict);
* a constraint declared objective although it ranges over subjective values
  (Section 5.1.3 consistency violation).

The workbench reports each problem with a concrete suggestion; the script
applies the suggested repairs and shows the second run coming out clean(er).
"""

from repro import (
    ComparisonRule,
    IntegrationWorkbench,
    bookseller_store,
    cslibrary_store,
    library_integration_spec,
)
from repro.integration.relationships import Side


def build_flawed_spec():
    spec = library_integration_spec()
    # Flaw 1: candidates must have rating < 2 — but RefereedPubl (the rule's
    # *source* here) requires rating >= 2: no object can ever qualify.
    spec.add_rule(
        ComparisonRule.similarity(
            "RefereedPubl", "Proceedings", "O.rating < 2", Side.LOCAL
        )
    )
    # Flaw 2: declaring the price invariant objective although the trust
    # decision functions make its values subjective.
    spec.declare_objective("CSLibrary.Publication.oc1")
    return spec


def main() -> None:
    local_store, _ = cslibrary_store()
    remote_store, _ = bookseller_store()

    print("=== first run: flawed specification ===")
    spec = build_flawed_spec()
    result = IntegrationWorkbench(spec, local_store, remote_store).run()

    print(f"consistent: {result.is_consistent()}")
    print("\nSection 3 conflicts (rule vs constraints):")
    for conflict in result.rule_checks.conflicts:
        print(f"  ! {conflict.describe()}")
    print("\nSection 5.1.3 consistency violations:")
    for violation in result.subjectivity.violations:
        print(f"  ! {violation}")
    print("\nstrict-similarity conflicts:")
    for conflict in result.derivation.similarity_conflicts:
        print(f"  ! {conflict.describe()}")
    print("\nsuggestions:")
    for suggestion in result.suggestions:
        print(f"  * {suggestion.describe()}")

    print("\n=== second run: repaired specification ===")
    repaired_spec = library_integration_spec()
    # Repair flaw 1: drop the impossible rule (never added).
    # Repair flaw 2: accept the subjectivity verdict (no objective override).
    # Repair the similarity conflicts by applying the suggested rules.
    first = IntegrationWorkbench(
        repaired_spec, local_store, remote_store
    ).run()
    replacements = {
        s.target: s for s in first.suggestions if s.repaired_rule is not None
    }
    repaired_spec.rules = [
        replacements[rule.name].repaired_rule
        if rule.name in replacements
        else rule
        for rule in repaired_spec.rules
    ]
    second = IntegrationWorkbench(
        repaired_spec, local_store, remote_store
    ).run()
    print(f"similarity conflicts before: "
          f"{len(first.derivation.similarity_conflicts)}, after: "
          f"{len(second.derivation.similarity_conflicts)}")
    print(f"rule-check conflicts after: {len(second.rule_checks.conflicts)}")
    print(f"subjectivity violations after: "
          f"{len(second.subjectivity.violations)}")
    print("\nremaining advisories (implicit-conflict risks from `any`):")
    for risk in second.derivation.implicit_risks:
        print(f"  - {risk.describe()}")


if __name__ == "__main__":
    main()
