#!/usr/bin/env python3
"""Global query optimisation and update validation with derived constraints.

The paper's introduction motivates global constraints with exactly these two
applications:

* "optimising queries against the integrated view, eliminating subqueries
  which are known to yield empty results";
* "the validation of update transactions, preventing the formulation of
  subtransactions which will certainly be rejected by the local transaction
  manager".

This script runs both against the Figure 1 scenario.
"""

from repro import (
    GlobalQueryOptimizer,
    GlobalUpdateValidator,
    IntegrationWorkbench,
    bookseller_store,
    cslibrary_store,
    library_integration_spec,
    to_source,
)


def main() -> None:
    local_store, _ = cslibrary_store()
    remote_store, _ = bookseller_store()
    result = IntegrationWorkbench(
        library_integration_spec(), local_store, remote_store
    ).run()

    optimizer = GlobalQueryOptimizer(result)

    print("=== query pruning ===")
    queries = [
        ("CSLibrary.RefereedPubl", "publisher.name = 'ACM' and rating < 5"),
        ("CSLibrary.RefereedPubl", "ref? = true and rating < 7"),
        ("CSLibrary.RefereedPubl", "publisher.name = 'ACM' and rating >= 6"),
        ("PersonnelDB1.Employee", "trav_reimb = 15"),  # unknown class: skip
    ]
    for class_name, predicate in queries:
        try:
            decision = optimizer.analyse(class_name, predicate)
        except Exception as exc:  # unknown class in this scenario
            print(f"  {class_name} where {predicate}: n/a ({exc})")
            continue
        print(f"  {decision.describe()}")
        if decision.empty:
            print(f"    refuted by: {', '.join(decision.reasons)}")

    print("\n=== predicate simplification ===")
    predicate = "(publisher.name = 'ACM' and rating < 5) or rating >= 9"
    simplified = optimizer.simplify("CSLibrary.RefereedPubl", predicate)
    print(f"  {predicate}")
    print(f"  →  {to_source(simplified)}")

    print("\n=== executing optimised queries ===")
    hits = optimizer.execute("CSLibrary.RefereedPubl", "rating >= 8")
    for obj in hits:
        print(f"  {obj.state['isbn']}: {obj.state['title']} (rating {obj.state['rating']})")

    print("\n=== update validation ===")
    validator = GlobalUpdateValidator(result)
    vldb = next(
        obj
        for obj in result.view.merged_objects()
        if obj.state.get("isbn") == "ISBN-001"
    )
    for changes in ({"rating": 9}, {"rating": 4}, {"libprice": 150.0}):
        verdict = validator.validate(vldb.oid, **changes)
        print(f"  {changes}: {verdict.describe()}")


if __name__ == "__main__":
    main()
