#!/usr/bin/env python3
"""Quickstart: the paper's introduction example, end to end.

Two departmental personnel databases each keep an ``Employee`` class with
``(ssn, salary, trav_reimb)``.  DB1 enforces ``trav_reimb ∈ {10, 20}`` and
``salary < 1500``; DB2 enforces ``trav_reimb ∈ {14, 24}``.  The company
averages travel tariffs for multi-department employees.

Running this script shows the paper's two observations:

1. ``salary < 1500`` is a *subjective* business rule — it does not hold on
   the integrated view;
2. the apparent conflict between the ``trav_reimb`` constraints dissolves:
   the ``avg`` decision function lets the workbench derive the global
   constraint ``trav_reimb ∈ {12, 17, 22}``.
"""

from repro import (
    GlobalQueryOptimizer,
    IntegrationWorkbench,
    personnel_integration_spec,
    personnel_stores,
    render_report,
    to_source,
)


def main() -> None:
    # The two autonomous component databases, populated and enforcing their
    # own constraints (inserting salary >= 1500 into DB1 would raise).
    db1, db2, employees = personnel_stores()
    print(f"DB1 holds {len(db1)} employees, DB2 holds {len(db2)}")

    # The integration specification: employees match on ssn; travel
    # reimbursement combines by avg (company policy); salaries trust DB1;
    # DB1's salary cap is declared a subjective business rule.
    spec = personnel_integration_spec()

    result = IntegrationWorkbench(spec, db1, db2).run()

    print("\n--- merged view ---")
    for obj in result.view.objects():
        sources = ", ".join(side.value for side in obj.components)
        print(f"  {obj.oid} [{sources}] {obj.state}")

    bob = result.view.merged_objects()[0]
    print(
        f"\nShared employee {bob.state['ssn']}: local tariff 20, remote 14 "
        f"→ global avg {bob.state['trav_reimb']}"
    )

    print("\n--- derived global constraints ---")
    for constraint in result.global_constraints:
        print(f"  {constraint.describe()}")

    print("\n--- why salary < 1500 is absent ---")
    for note in result.derivation.notes:
        if "oc2" in note:
            print(f"  {note}")

    # The derived constraint immediately pays off: a query for an impossible
    # tariff is answered empty without scanning anything.
    optimizer = GlobalQueryOptimizer(result)
    decision = optimizer.analyse("PersonnelDB1.Employee", "trav_reimb = 15")
    print(f"\nquery pruning: {decision.describe()}")

    print(render_report(result))


if __name__ == "__main__":
    main()
