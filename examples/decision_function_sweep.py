#!/usr/bin/env python3
"""How the choice of decision function shapes the global constraint set.

Section 5.1.2's taxonomy is the paper's key design lever: this script sweeps
the decision function for the intro example's ``trav_reimb`` property across
all four categories and shows, for each, the property subjectivity, whether
derivation is possible, and the derived global constraint — a compact
ablation of the paper's central mechanism.
"""

from repro import (
    AnyChoice,
    Average,
    IntegrationWorkbench,
    Maximum,
    Minimum,
    PropertyEquivalence,
    PropertyStatus,
    Trust,
    personnel_integration_spec,
    personnel_stores,
    to_source,
)
from repro.integration.relationships import Side


def sweep_df(df):
    spec = personnel_integration_spec()
    spec.propeqs[1] = PropertyEquivalence(
        "Employee", "trav_reimb", "Employee", "trav_reimb", df=df
    )
    db1, db2, _ = personnel_stores()
    result = IntegrationWorkbench(spec, db1, db2).run()
    status = result.subjectivity.status_of_property(
        Side.LOCAL, "Employee", "trav_reimb"
    )
    derived = [
        to_source(c.formula)
        for c in result.global_constraints
        if "trav_reimb" in to_source(c.formula)
    ]
    bob = result.view.merged_objects()[0]
    risks = [r for r in result.derivation.implicit_risks if r.property_name == "trav_reimb"]
    return {
        "df": df.name,
        "category": df.category.value,
        "local property": status.value,
        "global value (20, 14)": bob.state["trav_reimb"],
        "derived constraints": derived or ["(none)"],
        "implicit risks": len(risks),
    }


def main() -> None:
    print("decision-function sweep for Employee.trav_reimb")
    print("local constraint: in {10, 20}; remote constraint: in {14, 24}\n")
    for df in (
        AnyChoice(),
        Trust(Side.LOCAL, "PersonnelDB1"),
        Trust(Side.REMOTE, "PersonnelDB2"),
        Maximum(),
        Minimum(),
        Average(),
    ):
        row = sweep_df(df)
        print(f"df = {row['df']}  ({row['category']})")
        for key in (
            "local property",
            "global value (20, 14)",
            "derived constraints",
            "implicit risks",
        ):
            print(f"    {key}: {row[key]}")
        print()


if __name__ == "__main__":
    main()
