# The served store: `repro serve` in a container.  The engine is pure
# Python (no runtime dependencies), so the image is just an interpreter
# plus src/.  Tenant stores persist under /data — mount a volume there.
FROM python:3.12-slim

WORKDIR /app
COPY src/ src/

ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1

EXPOSE 7707
VOLUME /data

# Exec form so SIGTERM reaches the server directly: `docker stop` runs
# the clean-shutdown path (every tenant store checkpointed and closed).
ENTRYPOINT ["python", "-m", "repro", "serve"]
CMD ["--host", "0.0.0.0", "--port", "7707", "--root", "/data"]

HEALTHCHECK --interval=30s --timeout=3s --start-period=5s \
    CMD python -c "import socket; socket.create_connection(('127.0.0.1', 7707), 2).close()"
