"""Recursive-descent parser for the constraint language.

The grammar follows the surface syntax of Figure 1 plus the comparison-rule
conditions in Section 2.2:

.. code-block:: text

    formula     := implication
    implication := disjunction ('implies' implication)?
    disjunction := conjunction ('or' conjunction)*
    conjunction := negation ('and' negation)*
    negation    := 'not' negation | relation
    relation    := additive (('=' | '!=' | '<' | '<=' | '>' | '>=') additive
                             | 'in' set_expr)?
    additive    := term (('+' | '-') term)*
    term        := unary (('*' | '/') unary)*
    unary       := '-' unary | primary
    primary     := NUMBER | STRING | 'true' | 'false' | set_literal
                 | aggregate | quantified | key | call_or_path
                 | '(' formula ')'
    aggregate   := '(' AGG '(' 'collect' v 'for' v 'in' coll ')' 'over' IDENT ')'
    quantified  := ('forall'|'exists') IDENT 'in' IDENT (quantified | '|' formula | formula)
    key         := 'key' IDENT (',' IDENT)*

Named constants (``MAX``, ``KNOWNPUBLISHERS``) are recognised either from an
explicit ``constants`` set or by the paper's all-caps convention.

Every node is stamped with the ``(line, column)`` of its leading token
(``Node.pos``), so diagnostics downstream — the static analyser, lint, and
violation messages — can cite source locations.  When parsing standalone
source those are positions within the snippet; the TM schema parser feeds
its original token slice through :func:`parse_tokens` instead, so constraint
ASTs embedded in a ``.tm`` file carry *file* coordinates.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence

from repro.constraints.ast import (
    Aggregate,
    And,
    BinaryOp,
    Comparison,
    FunctionCall,
    Implies,
    KeyConstraint,
    Literal,
    Membership,
    NamedConstant,
    Node,
    Not,
    Or,
    Path,
    Quantified,
    SetLiteral,
)
from repro.constraints.lexer import Token, TokenStream, tokenize

AGGREGATE_FUNCS = ("sum", "avg", "min", "max", "count")


def parse_expression(source: str, constants: Collection[str] = ()) -> Node:
    """Parse a constraint formula (or bare expression) from source text."""
    return parse_tokens(tokenize(source), constants)


def parse_tokens(tokens: Sequence[Token], constants: Collection[str] = ()) -> Node:
    """Parse a formula from an already-lexed token sequence.

    The sequence must end with an ``EOF`` token (append one if slicing from a
    larger stream).  Because the tokens keep their original positions, ASTs
    built this way cite coordinates in the file the tokens came from.
    """
    stream = TokenStream(list(tokens))
    parser = _Parser(stream, frozenset(constants))
    node = parser.parse_formula()
    stream.expect("EOF")
    return node


def parse_constraint(source: str, constants: Collection[str] = ()) -> Node:
    """Alias of :func:`parse_expression`, kept for call-site readability."""
    return parse_expression(source, constants)


def _pos(token: Token) -> tuple[int, int]:
    return (token.line, token.column)


class _Parser:
    def __init__(self, stream: TokenStream, constants: frozenset):
        self.stream = stream
        self.constants = constants

    # -- formulas ------------------------------------------------------------

    def parse_formula(self) -> Node:
        return self._implication()

    def _implication(self) -> Node:
        left = self._disjunction()
        if self.stream.at_keyword("implies"):
            self.stream.next()
            right = self._implication()
            return Implies(left, right, pos=left.position())
        return left

    def _disjunction(self) -> Node:
        parts = [self._conjunction()]
        while self.stream.at_keyword("or"):
            self.stream.next()
            parts.append(self._conjunction())
        if len(parts) == 1:
            return parts[0]
        return Or(tuple(parts), pos=parts[0].position())

    def _conjunction(self) -> Node:
        parts = [self._negation()]
        while self.stream.at_keyword("and"):
            self.stream.next()
            parts.append(self._negation())
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts), pos=parts[0].position())

    def _negation(self) -> Node:
        if self.stream.at_keyword("not"):
            token = self.stream.next()
            return Not(self._negation(), pos=_pos(token))
        return self._relation()

    def _relation(self) -> Node:
        left = self._additive()
        token = self.stream.peek()
        if token.kind == "OP":
            self.stream.next()
            right = self._additive()
            return Comparison(token.text, left, right, pos=_pos(token))
        if self.stream.at_keyword("in"):
            in_token = self.stream.next()
            collection = self._set_expression()
            return Membership(left, collection, pos=_pos(in_token))
        return left

    def _set_expression(self) -> Node:
        if self.stream.at("LBRACE"):
            return self._set_literal()
        # A named constant set (KNOWNPUBLISHERS) or a set-valued attribute
        # path; _call_or_path applies the all-caps constant convention.
        return self._additive()

    # -- expressions -------------------------------------------------------------

    def _additive(self) -> Node:
        left = self._term()
        while self.stream.at("PLUS") or self.stream.at("MINUS"):
            token = self.stream.next()
            op = "+" if token.kind == "PLUS" else "-"
            left = BinaryOp(op, left, self._term(), pos=_pos(token))
        return left

    def _term(self) -> Node:
        left = self._unary()
        while self.stream.at("STAR") or self.stream.at("SLASH"):
            token = self.stream.next()
            op = "*" if token.kind == "STAR" else "/"
            left = BinaryOp(op, left, self._unary(), pos=_pos(token))
        return left

    def _unary(self) -> Node:
        if self.stream.at("MINUS"):
            token = self.stream.next()
            operand = self._unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value, pos=_pos(token))
            return BinaryOp("-", Literal(0, pos=_pos(token)), operand, pos=_pos(token))
        return self._primary()

    def _primary(self) -> Node:
        stream = self.stream
        token = stream.peek()
        if token.kind == "NUMBER":
            stream.next()
            return Literal(_number(token), pos=_pos(token))
        if token.kind == "STRING":
            stream.next()
            return Literal(token.text[1:-1], pos=_pos(token))
        if stream.at_keyword("true"):
            stream.next()
            return Literal(True, pos=_pos(token))
        if stream.at_keyword("false"):
            stream.next()
            return Literal(False, pos=_pos(token))
        if stream.at("LBRACE"):
            return self._set_literal()
        if stream.at_keyword("forall", "exists"):
            return self._quantified()
        if stream.at_keyword("key"):
            return self._key()
        if stream.at("LPAREN"):
            return self._parenthesised()
        if token.kind == "IDENT" or stream.at_keyword("self"):
            return self._call_or_path()
        raise stream.error("expected an expression")

    def _parenthesised(self) -> Node:
        stream = self.stream
        stream.expect("LPAREN")
        if stream.at_keyword(*AGGREGATE_FUNCS):
            node = self._aggregate_body()
            stream.expect("RPAREN")
            return node
        node = self.parse_formula()
        stream.expect("RPAREN")
        return node

    def _set_literal(self) -> Node:
        stream = self.stream
        open_token = stream.expect("LBRACE")
        values = []
        if not stream.at("RBRACE"):
            values.append(self._constant_value())
            while stream.accept("COMMA"):
                values.append(self._constant_value())
        stream.expect("RBRACE")
        return SetLiteral(tuple(values), pos=_pos(open_token))

    def _constant_value(self):
        stream = self.stream
        token = stream.peek()
        if token.kind == "NUMBER":
            stream.next()
            return _number(token)
        if token.kind == "STRING":
            stream.next()
            return token.text[1:-1]
        if stream.at_keyword("true"):
            stream.next()
            return True
        if stream.at_keyword("false"):
            stream.next()
            return False
        if stream.at("MINUS"):
            stream.next()
            inner = stream.expect("NUMBER")
            return -_number(inner)
        raise stream.error("expected a constant inside a set literal")

    def _aggregate_body(self) -> Node:
        stream = self.stream
        func_token = stream.next()  # the aggregate keyword
        func = func_token.text
        stream.expect("LPAREN")
        stream.expect("KEYWORD", "collect")
        item_var = stream.expect("IDENT").text
        stream.expect("KEYWORD", "for")
        bound_var = stream.expect("IDENT").text
        stream.expect("KEYWORD", "in")
        if stream.at_keyword("self"):
            stream.next()
            collection = "self"
        else:
            collection = stream.expect("IDENT").text
        stream.expect("RPAREN")
        over: str | None = None
        if stream.at_keyword("over"):
            stream.next()
            over = stream.expect("IDENT").text
        if bound_var != item_var:
            raise stream.error(
                f"collect variable {item_var!r} must match loop variable {bound_var!r}"
            )
        return Aggregate(func, item_var, collection, over, pos=_pos(func_token))

    def _quantified(self) -> Node:
        stream = self.stream
        kind_token = stream.next()  # forall | exists
        kind = kind_token.text
        var = stream.expect("IDENT").text
        stream.expect("KEYWORD", "in")
        class_name = stream.expect("IDENT").text
        if stream.at_keyword("forall", "exists"):
            body = self._quantified()
        elif stream.accept("BAR"):
            body = self.parse_formula()
        else:
            body = self.parse_formula()
        return Quantified(kind, var, class_name, body, pos=_pos(kind_token))

    def _key(self) -> Node:
        stream = self.stream
        key_token = stream.expect("KEYWORD", "key")
        attributes = [stream.expect("IDENT").text]
        while stream.accept("COMMA"):
            attributes.append(stream.expect("IDENT").text)
        return KeyConstraint(tuple(attributes), pos=_pos(key_token))

    def _call_or_path(self) -> Node:
        stream = self.stream
        first_token = stream.next()
        first = first_token.text
        if stream.at("LPAREN"):
            stream.next()
            args = []
            if not stream.at("RPAREN"):
                args.append(self.parse_formula())
                while stream.accept("COMMA"):
                    args.append(self.parse_formula())
            stream.expect("RPAREN")
            return FunctionCall(first, tuple(args), pos=_pos(first_token))
        parts = [first]
        while stream.at("DOT"):
            stream.next()
            parts.append(stream.expect("IDENT").text)
        if len(parts) == 1 and self._is_constant(first):
            return NamedConstant(first, pos=_pos(first_token))
        return Path(tuple(parts), pos=_pos(first_token))

    def _is_constant(self, name: str) -> bool:
        if name in self.constants:
            return True
        return len(name) > 1 and name.isupper()


def _number(token: Token):
    return float(token.text) if "." in token.text else int(token.text)
