"""Normalisation of constraint formulas.

Section 5.2.1 of the paper works with *normalised* object constraints: a
constraint that cannot be written as ``phi_1 and phi_2 and ... and phi_n``
(such constraints "are normalised into n separate object constraints").  A
normalised constraint then "defines a correlation between the values of the
properties involved".

:func:`split_conjunction` implements exactly that normalisation.  To maximise
granularity it first rewrites implications whose consequent is a conjunction
(``A implies (B and C)`` ≡ ``(A implies B) and (A implies C)``) and flattens
nested conjunctions.

:func:`to_nnf` / :func:`to_dnf` support the solver: negation normal form
pushes ``not`` down to atoms (comparisons negate by operator flipping), and
disjunctive normal form turns a formula into a list of conjunctive branches
for domain propagation.
"""

from __future__ import annotations

from repro.constraints.ast import (
    And,
    Comparison,
    FalseFormula,
    Implies,
    Node,
    Not,
    Or,
    TrueFormula,
    conjoin,
    disjoin,
    FALSE,
    TRUE,
)
from repro.errors import SolverError

#: Guard against exponential DNF blow-up; the paper's constraints are tiny.
DNF_LIMIT = 512


def negate(formula: Node) -> Node:
    """Logical negation with immediate simplification at the top node."""
    if isinstance(formula, TrueFormula):
        return FALSE
    if isinstance(formula, FalseFormula):
        return TRUE
    if isinstance(formula, Not):
        return formula.operand
    if isinstance(formula, Comparison):
        return formula.negated()
    return Not(formula)


def to_nnf(formula: Node) -> Node:
    """Negation normal form: ``not`` only on atoms, implications expanded."""
    return _nnf(formula, negated=False)


def _nnf(node: Node, negated: bool) -> Node:
    if isinstance(node, Not):
        return _nnf(node.operand, not negated)
    if isinstance(node, And):
        parts = [_nnf(part, negated) for part in node.parts]
        return disjoin(parts) if negated else conjoin(parts)
    if isinstance(node, Or):
        parts = [_nnf(part, negated) for part in node.parts]
        return conjoin(parts) if negated else disjoin(parts)
    if isinstance(node, Implies):
        # A -> B  ==  not A or B;   not(A -> B)  ==  A and not B
        if negated:
            return conjoin([_nnf(node.antecedent, False), _nnf(node.consequent, True)])
        return disjoin([_nnf(node.antecedent, True), _nnf(node.consequent, False)])
    if isinstance(node, TrueFormula):
        return FALSE if negated else TRUE
    if isinstance(node, FalseFormula):
        return TRUE if negated else FALSE
    if isinstance(node, Comparison):
        return node.negated() if negated else node
    # Membership, quantifiers, key constraints, function calls, bare paths:
    # negation stays wrapped around the atom.
    return Not(node) if negated else node


def to_dnf(formula: Node, limit: int = DNF_LIMIT) -> list[list[Node]]:
    """Disjunctive normal form as a list of conjunctive branches.

    Each branch is a list of literals (atoms or ``Not`` of atoms).  An empty
    branch list means the formula is unsatisfiable (``false``); a branch that
    is an empty list is trivially true.
    """
    nnf = to_nnf(formula)
    branches = _dnf(nnf, limit)
    return branches


def _dnf(node: Node, limit: int) -> list[list[Node]]:
    if isinstance(node, TrueFormula):
        return [[]]
    if isinstance(node, FalseFormula):
        return []
    if isinstance(node, Or):
        branches: list[list[Node]] = []
        for part in node.parts:
            branches.extend(_dnf(part, limit))
            if len(branches) > limit:
                raise SolverError(f"DNF exceeds {limit} branches")
        return branches
    if isinstance(node, And):
        branches = [[]]
        for part in node.parts:
            part_branches = _dnf(part, limit)
            branches = [
                existing + new for existing in branches for new in part_branches
            ]
            if len(branches) > limit:
                raise SolverError(f"DNF exceeds {limit} branches")
        return branches
    return [[node]]


def split_conjunction(formula: Node) -> list[Node]:
    """The paper's constraint normalisation: split into non-conjunctive parts.

    ``A and (B and C)`` yields ``[A, B, C]``; ``A implies (B and C)`` yields
    ``[A implies B, A implies C]``.  Disjunctions and implications with
    non-conjunctive consequents are atomic normalised constraints.
    """
    formula = _distribute_implications(formula)
    if isinstance(formula, And):
        result: list[Node] = []
        for part in formula.parts:
            result.extend(split_conjunction(part))
        return result
    if isinstance(formula, TrueFormula):
        return []
    return [formula]


def _distribute_implications(node: Node) -> Node:
    if isinstance(node, Implies):
        consequent = _distribute_implications(node.consequent)
        if isinstance(consequent, And):
            return conjoin(
                [Implies(node.antecedent, part) for part in consequent.parts]
            )
        return Implies(node.antecedent, consequent)
    if isinstance(node, And):
        return conjoin([_distribute_implications(part) for part in node.parts])
    return node


def is_literal(node: Node) -> bool:
    """Whether ``node`` is an atom or a negated atom (DNF branch member)."""
    if isinstance(node, Not):
        node = node.operand
    return not isinstance(node, (And, Or, Implies, Not))


def atoms_of(formula: Node) -> list[Node]:
    """The distinct atoms of a formula (negations stripped)."""
    seen: dict[Node, None] = {}
    for branch in to_dnf(formula):
        for literal in branch:
            atom = literal.operand if isinstance(literal, Not) else literal
            seen.setdefault(atom, None)
    return list(seen)
