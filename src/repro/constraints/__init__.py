"""The first-order constraint language of the paper.

Figure 1 of the paper attaches three kinds of *static* integrity constraints
to TM classes:

* **object constraints** — conditions on the state of a single (complex)
  object, implicitly universally quantified over the class extent
  (``oc1: ourprice <= shopprice``);
* **class constraints** — conditions on the extent of one class, including
  aggregates and key constraints
  (``cc2: (sum (collect x for x in self) over ourprice) < MAX``);
* **database constraints** — conditions spanning several classes
  (``db1: forall p in Publisher exists i in Item | i.publisher = p``).

This package implements the language end to end: an immutable AST
(:mod:`~repro.constraints.ast`), a lexer and recursive-descent parser that
accept the Figure 1 surface syntax (:mod:`~repro.constraints.parser`), a
pretty-printer that round-trips (:mod:`~repro.constraints.printer`), structural
classification (:mod:`~repro.constraints.classify`), normalisation into the
paper's *normalised constraints* (:mod:`~repro.constraints.normalize`),
evaluation against object states (:mod:`~repro.constraints.evaluate`) and the
symbolic solver used for conflict detection and entailment
(:mod:`~repro.constraints.solver`).
"""

from repro.constraints.ast import (
    Aggregate,
    And,
    BinaryOp,
    Comparison,
    FalseFormula,
    FunctionCall,
    Implies,
    KeyConstraint,
    Literal,
    Membership,
    NamedConstant,
    Node,
    Not,
    Or,
    Path,
    Quantified,
    SetLiteral,
    TrueFormula,
)
from repro.constraints.model import Constraint, ConstraintKind
from repro.constraints.parser import parse_constraint, parse_expression
from repro.constraints.printer import to_source
from repro.constraints.classify import classify_formula
from repro.constraints.normalize import negate, split_conjunction, to_dnf, to_nnf
from repro.constraints.evaluate import EvalContext, evaluate
from repro.constraints.solver import (
    Solver,
    TypeEnvironment,
    entails,
    is_satisfiable,
)

__all__ = [
    "Node",
    "Literal",
    "SetLiteral",
    "NamedConstant",
    "Path",
    "BinaryOp",
    "FunctionCall",
    "Aggregate",
    "Comparison",
    "Membership",
    "Not",
    "And",
    "Or",
    "Implies",
    "Quantified",
    "KeyConstraint",
    "TrueFormula",
    "FalseFormula",
    "Constraint",
    "ConstraintKind",
    "parse_expression",
    "parse_constraint",
    "to_source",
    "classify_formula",
    "split_conjunction",
    "to_nnf",
    "to_dnf",
    "negate",
    "evaluate",
    "EvalContext",
    "Solver",
    "TypeEnvironment",
    "entails",
    "is_satisfiable",
]
