"""Immutable AST for the constraint language.

All nodes are frozen dataclasses: structural equality and hashability are used
throughout (deduplicating atoms in the solver, comparing conformed constraints
across databases, caching).  Collections inside nodes are tuples.

Expression nodes produce values; formula nodes produce truth values.  Both
share the :class:`Node` base so that rewriting (attribute substitution, domain
conversion) can traverse uniformly.

Every node carries an optional ``pos`` — the 1-based ``(line, column)`` of its
first token in the source it was parsed from — so diagnostics (static
analysis, lint, violation messages) can cite stable source locations.
``pos`` is excluded from equality and hashing: two structurally identical
formulas parsed from different places *are* the same constraint to the
solver, the compiled-closure cache and cross-database comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Any

def _pos_field() -> tuple[int, int] | None:
    """The shared ``pos`` field: carried along, never compared or hashed."""
    return field(default=None, compare=False, repr=False, kw_only=True)


# Comparison operators and their negations/mirrors.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

NEGATED_OP = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}

MIRRORED_OP = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


class Node:
    """Base class for every AST node."""

    #: Source position; overridden by the dataclass field on every subclass.
    pos: tuple[int, int] | None = None

    def children(self) -> Iterator[Node]:
        """The node's direct sub-nodes, in source order."""
        return iter(())

    def walk(self) -> Iterator[Node]:
        """Depth-first pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children():
            yield from child.walk()

    def position(self) -> tuple[int, int] | None:
        """The first known source position in this subtree (pre-order)."""
        for node in self.walk():
            if node.pos is not None:
                return node.pos
        return None


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Node):
    """A constant value: number, string or boolean."""

    value: Any
    pos: tuple[int, int] | None = _pos_field()


@dataclass(frozen=True)
class SetLiteral(Node):
    """An explicit finite set of constants, e.g. ``{10, 20}``."""

    values: tuple
    pos: tuple[int, int] | None = _pos_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))


@dataclass(frozen=True)
class NamedConstant(Node):
    """A named schema constant such as ``KNOWNPUBLISHERS`` or ``MAX``.

    The binding of a named constant to a value (or value set) lives in the
    schema / evaluation context, not in the AST.
    """

    name: str
    pos: tuple[int, int] | None = _pos_field()


@dataclass(frozen=True)
class Path(Node):
    """A (possibly dotted) attribute path: ``rating``, ``publisher.name``,
    ``O'.ref?``, ``i.publisher``.

    ``parts[0]`` may name a bound variable (``O``, ``O'``, a quantifier
    variable, ``self``); otherwise the path is implicitly rooted at the
    constrained object.  Resolution happens at evaluation/solving time when
    the variable scope is known.
    """

    parts: tuple[str, ...]
    pos: tuple[int, int] | None = _pos_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))

    @staticmethod
    def of(*parts: str) -> Path:
        return Path(tuple(parts))

    def dotted(self) -> str:
        return ".".join(self.parts)

    def strip_root(self, root_names: tuple[str, ...]) -> Path:
        """Drop a leading variable name in ``root_names``, if present."""
        if len(self.parts) > 1 and self.parts[0] in root_names:
            return Path(self.parts[1:], pos=self.pos)
        return self

    def with_root(self, root: str) -> Path:
        """Prefix the path with an explicit root variable."""
        return Path((root,) + self.parts, pos=self.pos)


@dataclass(frozen=True)
class BinaryOp(Node):
    """Arithmetic: ``+ - * /`` between expressions."""

    op: str
    left: Node
    right: Node
    pos: tuple[int, int] | None = _pos_field()

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass(frozen=True)
class FunctionCall(Node):
    """An uninterpreted or built-in function applied to expressions.

    The paper's example rules use ``contains(O.title, 'Proceed')``; conversion
    functions applied during conformation also surface as calls.
    """

    name: str
    args: tuple[Node, ...]
    pos: tuple[int, int] | None = _pos_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def children(self) -> Iterator[Node]:
        return iter(self.args)


@dataclass(frozen=True)
class Aggregate(Node):
    """A TM aggregate: ``(sum (collect x for x in self) over ourprice)``.

    ``collection`` is either the literal string ``"self"`` (the extent of the
    class owning the constraint) or a class name.
    """

    func: str  # sum | avg | min | max | count
    item_var: str
    collection: str
    over: str | None  # attribute name; None only for count
    pos: tuple[int, int] | None = _pos_field()

    def children(self) -> Iterator[Node]:
        return iter(())


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison(Node):
    """``left op right`` with ``op`` one of ``= != < <= > >=``."""

    op: str
    left: Node
    right: Node
    pos: tuple[int, int] | None = _pos_field()

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right

    def negated(self) -> Comparison:
        return Comparison(NEGATED_OP[self.op], self.left, self.right, pos=self.pos)

    def mirrored(self) -> Comparison:
        """The same relation with operands swapped (``a < b`` ↦ ``b > a``)."""
        return Comparison(MIRRORED_OP[self.op], self.right, self.left, pos=self.pos)


@dataclass(frozen=True)
class Membership(Node):
    """``expr in set_expr`` — set_expr is a :class:`SetLiteral` or a
    :class:`NamedConstant` naming a set."""

    element: Node
    collection: Node
    pos: tuple[int, int] | None = _pos_field()

    def children(self) -> Iterator[Node]:
        yield self.element
        yield self.collection


@dataclass(frozen=True)
class Not(Node):
    operand: Node
    pos: tuple[int, int] | None = _pos_field()

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass(frozen=True)
class And(Node):
    parts: tuple[Node, ...]
    pos: tuple[int, int] | None = _pos_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))

    def children(self) -> Iterator[Node]:
        return iter(self.parts)


@dataclass(frozen=True)
class Or(Node):
    parts: tuple[Node, ...]
    pos: tuple[int, int] | None = _pos_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))

    def children(self) -> Iterator[Node]:
        return iter(self.parts)


@dataclass(frozen=True)
class Implies(Node):
    """``antecedent implies consequent`` (the conditional constraints of
    Figure 1, e.g. ``publisher.name='IEEE' implies ref?=true``)."""

    antecedent: Node
    consequent: Node
    pos: tuple[int, int] | None = _pos_field()

    def children(self) -> Iterator[Node]:
        yield self.antecedent
        yield self.consequent


@dataclass(frozen=True)
class Quantified(Node):
    """``forall v in Class body`` / ``exists v in Class | body``.

    Database constraints chain quantifiers, e.g. the Figure 1 constraint
    ``forall p in Publisher exists i in Item | i.publisher = p``.
    """

    kind: str  # 'forall' | 'exists'
    var: str
    class_name: str
    body: Node
    pos: tuple[int, int] | None = _pos_field()

    def children(self) -> Iterator[Node]:
        yield self.body


@dataclass(frozen=True)
class KeyConstraint(Node):
    """``key isbn`` — a uniqueness constraint over the listed attributes."""

    attributes: tuple[str, ...]
    pos: tuple[int, int] | None = _pos_field()

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", tuple(self.attributes))


@dataclass(frozen=True)
class TrueFormula(Node):
    """The always-true formula (unit of conjunction)."""

    pos: tuple[int, int] | None = _pos_field()


@dataclass(frozen=True)
class FalseFormula(Node):
    """The always-false formula (unit of disjunction)."""

    pos: tuple[int, int] | None = _pos_field()


TRUE = TrueFormula()
FALSE = FalseFormula()


def conjoin(parts: list[Node]) -> Node:
    """Conjunction of formulas with unit simplification."""
    live = [p for p in parts if not isinstance(p, TrueFormula)]
    if any(isinstance(p, FalseFormula) for p in live):
        return FALSE
    if not live:
        return TRUE
    if len(live) == 1:
        return live[0]
    flattened: list[Node] = []
    for part in live:
        if isinstance(part, And):
            flattened.extend(part.parts)
        else:
            flattened.append(part)
    return And(tuple(flattened))


def disjoin(parts: list[Node]) -> Node:
    """Disjunction of formulas with unit simplification."""
    live = [p for p in parts if not isinstance(p, FalseFormula)]
    if any(isinstance(p, TrueFormula) for p in live):
        return TRUE
    if not live:
        return FALSE
    if len(live) == 1:
        return live[0]
    flattened: list[Node] = []
    for part in live:
        if isinstance(part, Or):
            flattened.extend(part.parts)
        else:
            flattened.append(part)
    return Or(tuple(flattened))


def match_referential_body(body: Node, var: str) -> tuple[str, Node] | None:
    """Match the body of a *referential* existential quantifier.

    Given the body of ``exists var in D | ...``, recognise the equality shape
    ``var.attr = other`` (or mirrored, ``other = var.attr``) with a
    single-dereference path on the quantified variable, and return
    ``(attr, other)``.  This is the structural half of the reference-count
    fast path: when ``attr`` is a reference attribute, ``exists y in D |
    y.attr = x`` reduces to a maintained referrer-count lookup on ``x``'s
    identity (see :mod:`repro.engine.indexes`).  Returns ``None`` for any
    other body — those stay on the extent scan.

    ``other`` must not mention ``var`` itself: the probe evaluates it in
    the *enclosing* scope, where a same-named outer binding would silently
    shadow-swap the semantics (``exists y in D | y.ref = y`` compares each
    D member to *itself*, not to an outer ``y``).
    """
    if not isinstance(body, Comparison) or body.op != "=":
        return None
    for mine, other in ((body.left, body.right), (body.right, body.left)):
        if (
            isinstance(mine, Path)
            and len(mine.parts) == 2
            and mine.parts[0] == var
            and not any(
                isinstance(sub, Path) and sub.parts[0] == var
                for sub in other.walk()
            )
        ):
            return mine.parts[1], other
    return None


def match_referential_quantifier(node: Node) -> tuple[str, str, str, str] | None:
    """Match a whole-formula referential quantifier pattern.

    Recognised shapes (``mode``, with C the outer and D the inner class):

    * ``forall x in C exists y in D | y.a = x``       → ``("all", C, D, a)``
    * ``forall x in C | not (exists y in D | y.a = x)`` → ``("none", C, D, a)``
    * ``exists x in C exists y in D | y.a = x``       → ``("any", C, D, a)``

    These are the forms a maintained reference-count index answers in O(1)
    from its live-referenced-member count; anything else returns ``None``.
    """
    if not isinstance(node, Quantified):
        return None
    inner, negated = node.body, False
    if isinstance(inner, Not):
        inner, negated = inner.operand, True
    if not isinstance(inner, Quantified) or inner.kind != "exists":
        return None
    if inner.var == node.var:
        return None  # the inner quantifier shadows the outer variable
    match = match_referential_body(inner.body, inner.var)
    if match is None:
        return None
    attr, other = match
    if not (isinstance(other, Path) and other.parts == (node.var,)):
        return None
    if node.kind == "forall":
        mode = "none" if negated else "all"
    elif node.kind == "exists" and not negated:
        mode = "any"
    else:
        return None
    return mode, node.class_name, inner.class_name, attr


def paths_in(node: Node) -> tuple[Path, ...]:
    """All :class:`Path` nodes in ``node``, in traversal order, deduplicated."""
    seen: dict[Path, None] = {}
    for sub in node.walk():
        if isinstance(sub, Path):
            seen.setdefault(sub, None)
    return tuple(seen)
