"""Difference-bound closure for path-vs-path comparisons.

Atoms like ``ourprice <= shopprice`` (object constraint ``oc1`` of Figure 1)
relate two attribute paths.  The solver encodes each such atom as a weighted
edge ``x - y ≤ c`` (with a strictness flag for ``<``) in a difference-bound
matrix over the constrained terms plus a distinguished zero node, closes the
matrix with Floyd–Warshall, and reads tightened per-term bounds back out.

A negative cycle (total weight < 0, or = 0 with at least one strict edge)
proves the conjunction unsatisfiable — e.g. ``x < y and y < x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterable

#: The distinguished node representing the constant 0.
ZERO = "<zero>"


@dataclass(frozen=True)
class Bound:
    """An upper bound ``≤ value`` (or ``< value`` when ``strict``)."""

    value: float
    strict: bool = False

    def add(self, other: "Bound") -> "Bound":
        return Bound(self.value + other.value, self.strict or other.strict)

    def tighter_than(self, other: "Bound") -> bool:
        if self.value != other.value:
            return self.value < other.value
        return self.strict and not other.strict

    def violates_zero(self) -> bool:
        """Whether a cycle with this total bound is contradictory."""
        return self.value < 0 or (self.value == 0 and self.strict)


class DifferenceBounds:
    """A mutable difference-bound matrix over hashable node keys."""

    def __init__(self) -> None:
        self._edges: dict[tuple[Hashable, Hashable], Bound] = {}
        self._nodes: dict[Hashable, None] = {ZERO: None}

    def nodes(self) -> Iterable[Hashable]:
        return self._nodes

    def add_edge(self, source: Hashable, target: Hashable, bound: Bound) -> None:
        """Record ``source - target ≤ bound`` (keeping the tighter of dups)."""
        self._nodes.setdefault(source, None)
        self._nodes.setdefault(target, None)
        key = (source, target)
        existing = self._edges.get(key)
        if existing is None or bound.tighter_than(existing):
            self._edges[key] = bound

    def add_upper(self, term: Hashable, value: float, strict: bool = False) -> None:
        """``term ≤ value``."""
        self.add_edge(term, ZERO, Bound(value, strict))

    def add_lower(self, term: Hashable, value: float, strict: bool = False) -> None:
        """``term ≥ value``."""
        self.add_edge(ZERO, term, Bound(-value, strict))

    def close(self) -> bool:
        """Floyd–Warshall closure; returns ``False`` on a negative cycle."""
        nodes = list(self._nodes)
        edges = self._edges
        for middle in nodes:
            for source in nodes:
                first = edges.get((source, middle))
                if first is None:
                    continue
                for target in nodes:
                    second = edges.get((middle, target))
                    if second is None:
                        continue
                    candidate = first.add(second)
                    key = (source, target)
                    existing = edges.get(key)
                    if existing is None or candidate.tighter_than(existing):
                        edges[key] = candidate
        for node in nodes:
            loop = edges.get((node, node))
            if loop is not None and loop.violates_zero():
                return False
        return True

    def upper_bound(self, term: Hashable) -> Bound | None:
        """The closed bound ``term ≤ value``, if any."""
        return self._edges.get((term, ZERO))

    def lower_bound(self, term: Hashable) -> tuple[float, bool] | None:
        """The closed bound ``term ≥ value`` as ``(value, strict)``, if any."""
        bound = self._edges.get((ZERO, term))
        if bound is None:
            return None
        return -bound.value, bound.strict
