"""Pretty-printer for constraint ASTs.

``parse_expression(to_source(node))`` reproduces ``node`` for every node the
parser can produce — the round-trip property is enforced by the test suite.
"""

from __future__ import annotations

from repro.constraints.ast import (
    Aggregate,
    And,
    BinaryOp,
    Comparison,
    FalseFormula,
    FunctionCall,
    Implies,
    KeyConstraint,
    Literal,
    Membership,
    NamedConstant,
    Node,
    Not,
    Or,
    Path,
    Quantified,
    SetLiteral,
    TrueFormula,
)

# Binding strength, loosest first; used to decide parenthesisation.
_PRECEDENCE = {
    Implies: 1,
    Or: 2,
    And: 3,
    Not: 4,
    Comparison: 5,
    Membership: 5,
    BinaryOp: 6,
}


def to_source(node: Node) -> str:
    """Render ``node`` as parseable constraint-language source."""
    return _render(node, 0)


def _precedence(node: Node) -> int:
    for node_type, prec in _PRECEDENCE.items():
        if isinstance(node, node_type):
            if isinstance(node, BinaryOp):
                return 6 if node.op in "+-" else 7
            return prec
    return 9  # atoms never need parentheses


def _render(node: Node, parent_prec: int) -> str:
    text = _render_bare(node)
    if _precedence(node) < parent_prec:
        return f"({text})"
    return text


def _render_bare(node: Node) -> str:
    if isinstance(node, Literal):
        return _literal(node.value)
    if isinstance(node, SetLiteral):
        return "{" + ", ".join(_literal(v) for v in node.values) + "}"
    if isinstance(node, NamedConstant):
        return node.name
    if isinstance(node, Path):
        return node.dotted()
    if isinstance(node, BinaryOp):
        prec = _precedence(node)
        return f"{_render(node.left, prec)} {node.op} {_render(node.right, prec + 1)}"
    if isinstance(node, FunctionCall):
        args = ", ".join(_render(arg, 0) for arg in node.args)
        return f"{node.name}({args})"
    if isinstance(node, Aggregate):
        collected = f"(collect {node.item_var} for {node.item_var} in {node.collection})"
        suffix = f" over {node.over}" if node.over else ""
        return f"({node.func} {collected}{suffix})"
    if isinstance(node, Comparison):
        prec = _precedence(node)
        return f"{_render(node.left, prec + 1)} {node.op} {_render(node.right, prec + 1)}"
    if isinstance(node, Membership):
        prec = _precedence(node)
        return f"{_render(node.element, prec + 1)} in {_render(node.collection, 0)}"
    if isinstance(node, Not):
        return f"not {_render(node.operand, _precedence(node))}"
    if isinstance(node, And):
        # Children at prec+1 so a *nested* And gets parenthesised; the parser
        # produces flat n-ary conjunctions, so flat trees stay paren-free.
        prec = _precedence(node)
        return " and ".join(_render(part, prec + 1) for part in node.parts)
    if isinstance(node, Or):
        prec = _precedence(node)
        return " or ".join(_render(part, prec + 1) for part in node.parts)
    if isinstance(node, Implies):
        prec = _precedence(node)
        return f"{_render(node.antecedent, prec + 1)} implies {_render(node.consequent, prec)}"
    if isinstance(node, Quantified):
        body = _render(node.body, 0)
        separator = " " if isinstance(node.body, Quantified) else " | "
        return f"{node.kind} {node.var} in {node.class_name}{separator}{body}"
    if isinstance(node, KeyConstraint):
        return "key " + ", ".join(node.attributes)
    if isinstance(node, TrueFormula):
        return "true"
    if isinstance(node, FalseFormula):
        return "false"
    raise TypeError(f"cannot render node of type {type(node).__name__}")


def _literal(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, float) and value.is_integer():
        return str(value)  # keep the .0 so the round-trip preserves floatness
    return str(value)
