"""Satisfiability and entailment for the paper's constraint fragment.

The solver decides the judgements the paper relies on:

* **conflict detection** — "a conflict between local and remote object
  constraints is inconsistent, i.e. ``Omega ⊨ false``" (Section 5.2.1);
* **entailment** — strict similarity requires ``Omega' ⊨ Omega``
  (Section 5.2.1), e.g. ``rating >= 7 ⊨ rating >= 4``;
* **domain extraction** — the derivation engine asks for the set of values a
  formula allows for a property (Section 5.2.1's derivation of global
  constraints through decision functions).

Method: the formula goes to disjunctive normal form; each conjunctive branch
is checked by abstract-domain propagation.  Every *term* (attribute path,
uninterpreted function application, aggregate) gets a
:class:`~repro.domains.valueset.ValueSet` seeded from its declared type;
unary atoms intersect the domains; equality atoms merge terms via union-find;
order atoms between terms feed a difference-bound matrix whose closure
(Floyd–Warshall) both detects cycles like ``x < y and y < x`` and tightens
per-term bounds; disequalities prune singletons.  The loop runs to a fixpoint
because finite-set domains with holes can tighten DBM bounds and vice versa.

Soundness: an UNSAT answer is always correct (every propagation step is a
sound over-approximation, so an empty domain or negative cycle is a real
contradiction).  A SAT answer is correct on the fragment the paper uses
(unary constraints over typed domains, pairwise order atoms, boolean /
membership atoms); pathological combinations of many disequalities over small
finite domains may be reported SAT conservatively.  The property-based test
suite cross-checks the solver against brute-force enumeration on randomly
generated formulas within the fragment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Any

from repro.constraints.ast import (
    BinaryOp,
    Comparison,
    Literal,
    Membership,
    NamedConstant,
    Node,
    Not,
    Path,
    SetLiteral,
    TrueFormula,
    FalseFormula,
    conjoin,
)
from repro.constraints.dbm import DifferenceBounds
from repro.constraints.normalize import negate, to_dnf
from repro.domains.valueset import (
    BOTTOM,
    DiscreteSet,
    NumericSet,
    TopSet,
    ValueSet,
    boolean_set,
    from_values,
)
from repro.domains.interval import IntervalSet
from repro.domains.typed import type_to_valueset
from repro.errors import SolverError
from repro.types.primitives import Type

_MAX_FIXPOINT_ROUNDS = 12


@dataclass
class TypeEnvironment:
    """Typing context for the solver.

    ``attribute_types`` maps *dotted paths* (as they appear in the formulas
    being solved, e.g. ``"rating"`` or ``"O'.publisher.name"``) to TM types;
    ``constants`` binds named schema constants to scalars or collections.
    Unknown paths default to the unconstrained domain.
    """

    attribute_types: Mapping[str, Type] = field(default_factory=dict)
    constants: Mapping[str, Any] = field(default_factory=dict)

    def domain_for(self, path: Path) -> ValueSet:
        tm_type = self.attribute_types.get(path.dotted())
        return type_to_valueset(tm_type)

    def constant(self, name: str) -> Any | None:
        return self.constants.get(name)

    def merged_with(self, other: "TypeEnvironment") -> "TypeEnvironment":
        """A new environment with the union of both (``other`` wins ties)."""
        types = dict(self.attribute_types)
        types.update(other.attribute_types)
        constants = dict(self.constants)
        constants.update(other.constants)
        return TypeEnvironment(types, constants)

    def prefixed(self, root: str) -> "TypeEnvironment":
        """All attribute types re-keyed under a root variable (``O.rating``)."""
        return TypeEnvironment(
            {f"{root}.{key}": value for key, value in self.attribute_types.items()},
            dict(self.constants),
        )


EMPTY_ENVIRONMENT = TypeEnvironment()


def is_satisfiable(formula: Node, env: TypeEnvironment | None = None) -> bool:
    """Whether some typed assignment of the terms satisfies ``formula``."""
    return Solver(env).is_satisfiable(formula)


def entails(premise: Node, conclusion: Node, env: TypeEnvironment | None = None) -> bool:
    """``premise ⊨ conclusion`` under the typing environment."""
    return Solver(env).entails(premise, conclusion)


class Solver:
    """See module docstring.  Stateless apart from the environment."""

    def __init__(self, env: TypeEnvironment | None = None):
        self.env = env or EMPTY_ENVIRONMENT

    # -- public API -----------------------------------------------------------

    def is_satisfiable(self, formula: Node) -> bool:
        return any(
            _Branch(self.env, branch).satisfiable() for branch in to_dnf(formula)
        )

    def is_unsatisfiable(self, formula: Node) -> bool:
        return not self.is_satisfiable(formula)

    def entails(self, premise: Node, conclusion: Node) -> bool:
        """``premise ⊨ conclusion``: no model of premise violates conclusion."""
        return self.is_unsatisfiable(conjoin([premise, negate(conclusion)]))

    def equivalent(self, left: Node, right: Node) -> bool:
        return self.entails(left, right) and self.entails(right, left)

    def conflicts(self, *formulas: Node) -> bool:
        """Whether the conjunction of ``formulas`` is unsatisfiable — the
        paper's *explicit conflict* (``Omega ⊨ false``)."""
        return self.is_unsatisfiable(conjoin(list(formulas)))

    def domain_of(self, formula: Node, path: Path | str) -> ValueSet:
        """The set of values ``path`` may take in models of ``formula``.

        Computed as the union over satisfiable DNF branches of the propagated
        branch domain — a sound over-approximation that is exact on the
        paper's fragment.  This is the primitive underlying global-constraint
        derivation: ``domain_of(trav_reimb ∈ {10,20} ..., trav_reimb)``.
        """
        if isinstance(path, str):
            path = Path(tuple(path.split(".")))
        result: ValueSet = BOTTOM
        for branch_literals in to_dnf(formula):
            branch = _Branch(self.env, branch_literals)
            if branch.satisfiable():
                result = result.union_with(branch.domain_of(path))
        return result


class _UnionFind:
    """Union-find over AST term nodes (for ``=`` atoms)."""

    def __init__(self) -> None:
        self._parent: dict[Node, Node] = {}

    def find(self, item: Node) -> Node:
        parent = self._parent.get(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: Node, b: Node) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


class _Branch:
    """Propagation state for a single conjunctive DNF branch."""

    def __init__(self, env: TypeEnvironment, literals: list[Node]):
        self.env = env
        self.literals = literals
        self.domains: dict[Node, ValueSet] = {}
        self.order_atoms: list[tuple[Node, Node, str]] = []  # (left, right, op)
        self.disequalities: list[tuple[Node, Node]] = []
        self.merged = _UnionFind()
        self.contradiction = False
        self._result: bool | None = None

    # -- domain bookkeeping ---------------------------------------------------

    def _seed(self, term: Node) -> ValueSet:
        if isinstance(term, Path):
            return self.env.domain_for(term)
        return TopSet()

    def _get(self, term: Node) -> ValueSet:
        root = self.merged.find(term)
        if root not in self.domains:
            self.domains[root] = self._seed(term)
        return self.domains[root]

    def _narrow(self, term: Node, values: ValueSet) -> None:
        root = self.merged.find(term)
        current = self._get(term)
        narrowed = current.intersect(values)
        self.domains[root] = narrowed
        if narrowed.is_empty():
            self.contradiction = True

    def domain_of(self, term: Node) -> ValueSet:
        """The propagated domain of ``term`` (call after :meth:`satisfiable`)."""
        self.satisfiable()
        return self._get(term)

    # -- main loop ----------------------------------------------------------------

    def satisfiable(self) -> bool:
        if self._result is None:
            self._result = self._solve()
        return self._result

    def _solve(self) -> bool:
        for literal in self.literals:
            self._assert_literal(literal)
            if self.contradiction:
                return False
        # Union-find merges may have left stale domain entries; rebuild by
        # intersecting every term's entry into its representative.
        self._consolidate_merged_domains()
        if self.contradiction:
            return False
        for _ in range(_MAX_FIXPOINT_ROUNDS):
            changed = self._propagate_order_atoms()
            changed = self._propagate_disequalities() or changed
            if self.contradiction:
                return False
            if not changed:
                break
        return not self.contradiction

    def _consolidate_merged_domains(self) -> None:
        for term in list(self.domains):
            root = self.merged.find(term)
            if root == term:
                continue
            mine = self.domains.pop(term)
            existing = self.domains.get(root, self._seed(root))
            merged = existing.intersect(mine)
            self.domains[root] = merged
            if merged.is_empty():
                self.contradiction = True

    # -- literal assertion -----------------------------------------------------------

    def _assert_literal(self, literal: Node) -> None:
        positive = True
        if isinstance(literal, Not):
            positive = False
            literal = literal.operand
        if isinstance(literal, TrueFormula):
            if not positive:
                self.contradiction = True
            return
        if isinstance(literal, FalseFormula):
            if positive:
                self.contradiction = True
            return
        if isinstance(literal, Comparison):
            if not positive:
                literal = literal.negated()
            self._assert_comparison(literal)
            return
        if isinstance(literal, Membership):
            self._assert_membership(literal, positive)
            return
        # Bare boolean atom (function call, path used as boolean, quantifier,
        # key constraint): give the node itself a boolean pseudo-domain.
        self._narrow(literal, boolean_set(positive))

    def _assert_comparison(self, atom: Comparison) -> None:
        left = _fold(atom.left, self.env)
        right = _fold(atom.right, self.env)
        left_const = _const_value(left)
        right_const = _const_value(right)
        if left_const is not _NOT_CONST and right_const is not _NOT_CONST:
            if not _compare_constants(atom.op, left_const, right_const):
                self.contradiction = True
            return
        if left_const is not _NOT_CONST:
            # const op term  ==  term mirrored-op const
            self._assert_comparison(Comparison(atom.op, left, right).mirrored())
            return
        if right_const is not _NOT_CONST:
            self._assert_term_vs_const(left, atom.op, right_const)
            return
        self._assert_term_vs_term(left, atom.op, right)

    def _assert_term_vs_const(self, term: Node, op: str, value: Any) -> None:
        term = _strip_linear(term, self)
        if isinstance(term, _LinearTerm):
            # (x + c) op v  ==  x op (v - c)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                self.contradiction = True
                return
            self._assert_term_vs_const(term.term, op, value - term.offset)
            return
        self._narrow(term, _valueset_for(op, value))

    def _assert_term_vs_term(self, left: Node, op: str, right: Node) -> None:
        left_linear = _strip_linear(left, self)
        right_linear = _strip_linear(right, self)
        left_term = left_linear.term if isinstance(left_linear, _LinearTerm) else left
        left_off = left_linear.offset if isinstance(left_linear, _LinearTerm) else 0
        right_term = right_linear.term if isinstance(right_linear, _LinearTerm) else right
        right_off = right_linear.offset if isinstance(right_linear, _LinearTerm) else 0

        if op == "=" and left_off == right_off == 0:
            self.merged.union(left_term, right_term)
            return
        if op == "!=" and left_off == right_off == 0:
            self.disequalities.append((left_term, right_term))
            return
        if op in ("<", "<=", ">", ">=", "="):
            self.order_atoms.append(
                (_OffsetTerm(left_term, left_off), _OffsetTerm(right_term, right_off), op)  # type: ignore[arg-type]
            )
            return
        # != with offsets: keep as a (weak) disequality between base terms
        # only when offsets match was handled above; otherwise inert.

    def _assert_membership(self, atom: Membership, positive: bool) -> None:
        element = _fold(atom.element, self.env)
        collection = _fold(atom.collection, self.env)
        values = _collection_values(collection, self.env)
        if values is None:
            # Unresolvable collection (set-valued attribute): opaque boolean.
            self._narrow(atom, boolean_set(positive))
            return
        element_const = _const_value(element)
        if element_const is not _NOT_CONST:
            inside = element_const in values
            if inside != positive:
                self.contradiction = True
            return
        value_set = from_values(values)
        if not positive:
            value_set = value_set.complement()
        self._narrow(element, value_set)

    # -- propagation -------------------------------------------------------------------

    def _propagate_order_atoms(self) -> bool:
        numeric_terms: dict[Node, None] = {}
        for left, right, _ in self.order_atoms:
            numeric_terms.setdefault(self.merged.find(left.term), None)
            numeric_terms.setdefault(self.merged.find(right.term), None)
        for term, domain in self.domains.items():
            if isinstance(domain, NumericSet):
                numeric_terms.setdefault(term, None)
        if not numeric_terms and not self.order_atoms:
            return False

        dbm = DifferenceBounds()
        for left, right, op in self.order_atoms:
            lterm = self.merged.find(left.term)
            rterm = self.merged.find(right.term)
            offset = right.offset - left.offset
            # left.term + left.off  op  right.term + right.off
            if op in ("<", "<="):
                dbm.add_edge(lterm, rterm, _bound(offset, op == "<"))
            elif op in (">", ">="):
                dbm.add_edge(rterm, lterm, _bound(-offset, op == ">"))
            elif op == "=":
                dbm.add_edge(lterm, rterm, _bound(offset, False))
                dbm.add_edge(rterm, lterm, _bound(-offset, False))
        for term in numeric_terms:
            domain = self._get(term)
            if not isinstance(domain, NumericSet):
                if isinstance(domain, TopSet):
                    continue
                # An order atom over a non-numeric domain: inert (sound).
                continue
            low, low_strict = domain.lower_bound()
            high, high_strict = domain.upper_bound()
            if low is not None:
                dbm.add_lower(term, low, low_strict)
            if high is not None:
                dbm.add_upper(term, high, high_strict)
        if not dbm.close():
            self.contradiction = True
            return True

        changed = False
        for term in numeric_terms:
            domain = self._get(term)
            if not isinstance(domain, (NumericSet, TopSet)):
                continue
            bounds = IntervalSet.all()
            upper = dbm.upper_bound(term)
            if upper is not None:
                bounds = bounds.intersect(IntervalSet.at_most(upper.value, upper.strict))
            lower = dbm.lower_bound(term)
            if lower is not None:
                bounds = bounds.intersect(IntervalSet.at_least(lower[0], lower[1]))
            refined = NumericSet(bounds)
            narrowed = domain.intersect(refined)
            if narrowed != domain:
                changed = True
                self.domains[self.merged.find(term)] = narrowed
                if narrowed.is_empty():
                    self.contradiction = True
                    return True
        return changed

    def _propagate_disequalities(self) -> bool:
        changed = False
        for left, right in self.disequalities:
            lroot, rroot = self.merged.find(left), self.merged.find(right)
            if lroot == rroot:
                self.contradiction = True
                return True
            ldom, rdom = self._get(lroot), self._get(rroot)
            lvals = ldom.enumerate(limit=1)
            rvals = rdom.enumerate(limit=1)
            if lvals is not None and len(lvals) == 1 and rvals is not None and len(rvals) == 1:
                if lvals[0] == rvals[0]:
                    self.contradiction = True
                    return True
            if lvals is not None and len(lvals) == 1:
                narrowed = rdom.intersect(_point_complement(lvals[0]))
                if narrowed != rdom:
                    self.domains[rroot] = narrowed
                    changed = True
                    if narrowed.is_empty():
                        self.contradiction = True
                        return True
            elif rvals is not None and len(rvals) == 1:
                narrowed = ldom.intersect(_point_complement(rvals[0]))
                if narrowed != ldom:
                    self.domains[lroot] = narrowed
                    changed = True
                    if narrowed.is_empty():
                        self.contradiction = True
                        return True
        return changed


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _OffsetTerm:
    term: Node
    offset: float


@dataclass(frozen=True)
class _LinearTerm:
    term: Node
    offset: float


_NOT_CONST = object()


def _const_value(node: Node) -> Any:
    if isinstance(node, Literal):
        return node.value
    return _NOT_CONST


def _fold(node: Node, env: TypeEnvironment) -> Node:
    """Constant-fold literals, named constants and arithmetic on constants."""
    if isinstance(node, NamedConstant):
        value = env.constant(node.name)
        if value is not None and not isinstance(value, (set, frozenset, list, tuple)):
            return Literal(value)
        return node
    if isinstance(node, BinaryOp):
        left = _fold(node.left, env)
        right = _fold(node.right, env)
        if isinstance(left, Literal) and isinstance(right, Literal):
            try:
                return Literal(_ARITH[node.op](left.value, right.value))
            except (TypeError, ZeroDivisionError, KeyError):
                return BinaryOp(node.op, left, right)
        return BinaryOp(node.op, left, right)
    return node


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


def _strip_linear(node: Node, branch: "_Branch") -> Node | _LinearTerm:
    """Recognise ``term + c`` / ``term - c`` shapes for DBM offsets."""
    if isinstance(node, BinaryOp) and node.op in ("+", "-"):
        left, right = node.left, node.right
        if isinstance(right, Literal) and isinstance(right.value, (int, float)):
            sign = 1 if node.op == "+" else -1
            return _LinearTerm(left, sign * right.value)
        if (
            node.op == "+"
            and isinstance(left, Literal)
            and isinstance(left.value, (int, float))
        ):
            return _LinearTerm(right, left.value)
    return node


def _compare_constants(op: str, left: Any, right: Any) -> bool:
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise SolverError(f"unknown comparison {op!r}")


def _valueset_for(op: str, value: Any) -> ValueSet:
    is_number = isinstance(value, (int, float)) and not isinstance(value, bool)
    if is_number:
        if op == "=":
            return NumericSet.points([value])
        if op == "!=":
            return NumericSet.points([value]).complement()
        if op == "<":
            return NumericSet(IntervalSet.at_most(value, strict=True))
        if op == "<=":
            return NumericSet(IntervalSet.at_most(value))
        if op == ">":
            return NumericSet(IntervalSet.at_least(value, strict=True))
        if op == ">=":
            return NumericSet(IntervalSet.at_least(value))
    else:
        if op == "=":
            if isinstance(value, bool):
                return boolean_set(value)
            return DiscreteSet.of(value)
        if op == "!=":
            if isinstance(value, bool):
                return boolean_set(not value)
            return DiscreteSet.of(value).complement()
        # Ordered comparison on non-numeric constants: inert (no refinement).
        return TopSet()
    raise SolverError(f"unknown comparison {op!r}")


def _point_complement(value: Any) -> ValueSet:
    if isinstance(value, bool):
        return boolean_set(not value)
    if isinstance(value, (int, float)):
        return NumericSet.points([value]).complement()
    return DiscreteSet.of(value).complement()


def _collection_values(node: Node, env: TypeEnvironment) -> tuple | None:
    if isinstance(node, SetLiteral):
        return node.values
    if isinstance(node, NamedConstant):
        bound = env.constant(node.name)
        if isinstance(bound, (set, frozenset, list, tuple)):
            return tuple(bound)
    return None


def _bound(value: float, strict: bool):
    from repro.constraints.dbm import Bound

    return Bound(value, strict)
