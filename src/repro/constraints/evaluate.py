"""Evaluation of constraint formulas against object states.

An *object state* is any mapping from attribute names to values (the engine
stores states as dicts).  Evaluation is parameterised by an
:class:`EvalContext` carrying:

* ``current`` — the object an object constraint is being checked on (paths
  without an explicit root resolve against it);
* ``bindings`` — named variables in scope (``O``, ``O'``, quantifier vars);
* ``extents`` — class name → iterable of object states, for quantifiers,
  aggregates over named classes and key constraints;
* ``self_extent`` — the extent behind ``self`` in class constraints;
* ``constants`` — named schema constants (``MAX`` → number,
  ``KNOWNPUBLISHERS`` → set of strings);
* ``get_attr`` — attribute accessor hook; the engine substitutes one that
  dereferences object identifiers through the store so that paths like
  ``publisher.name`` traverse references.

Aggregates over an empty extent: ``sum`` is 0 and ``count`` is 0; ``avg`` /
``min`` / ``max`` are *vacuous* — a comparison against a vacuous value is
satisfied.  (TM leaves this case open; vacuous truth matches how the paper
treats constraints on empty classes.)  Vacuous truth is a *tri-state*: a
comparison (or membership test) on a vacuous value returns the
:data:`VACUOUS` sentinel itself — truthy, so it satisfies at formula roots —
and the connectives propagate it (``not`` of a vacuous truth stays vacuous,
conjunction/disjunction/implication absorb it unless a strict operand
decides).  This keeps logically equivalent phrasings in agreement:
``not (avg ... > 5)`` and ``avg ... <= 5`` are both satisfied on an empty
extent, where naive boolean negation would make them disagree.

Evaluation is *compiled*: :func:`compile_node` lowers an AST once into a tree
of Python closures (``EvalContext -> value``), and :func:`evaluate` dispatches
through a cache keyed by the (hashable, frozen) AST node.  Constraints are
checked against every mutation, so the same formula is evaluated thousands of
times per store lifetime; paying the ``isinstance`` dispatch and operator
lookup once per formula instead of once per check is the difference between
an interpretive and a compiled enforcement hot path.

When the context carries an index probe (``ctx.indexes``, supplied by the
engine's :class:`~repro.engine.indexes.IndexManager`), aggregate, key and
*referential quantifier* nodes first ask it for a materialized answer — a
running sum/count/min/max, a key-uniqueness verdict, or a reference-count
verdict (``forall p in Publisher exists i in Item | i.publisher = p``
reduces to one maintained counter comparison) — and only fall back to the
extent scan on :data:`INDEX_MISS`.  The probe answers in O(1) regardless of
extent size, which is what makes aggregate-, key- and referential-constraint
commits constant-time in store size.

Reason tracing: when ``ctx.trace`` is a :class:`ReasonTrace`, every closure
records the reads that determined its verdict — attribute reads (with the
owning object), constant reads, index probes, extent scans, quantifier
bindings — as :class:`TraceEvent` rows.  Quantifiers record *decisive*
iterations only: an ``exists`` that succeeds keeps just the witness, a
``forall`` that fails keeps just the falsifying binding, while a quantifier
that had to exhaust its extent keeps every iteration (the whole extent
supports the verdict).  Tracing is opt-in and adds exactly one ``is None``
test per closure to the untraced path; verdicts are bit-identical with and
without a trace (the property suite in ``tests/engine/test_explain.py``
holds us to that).  :meth:`ReasonTrace.support` projects the events down to
the set of object identifiers the verdict depended on — the seed for
deletion-based conflict-core extraction (``repro.engine.explain``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Mapping
from typing import Any

from repro.constraints.ast import (
    Aggregate,
    And,
    BinaryOp,
    Comparison,
    FalseFormula,
    FunctionCall,
    Implies,
    KeyConstraint,
    Literal,
    Membership,
    NamedConstant,
    Node,
    Not,
    Or,
    Path,
    Quantified,
    SetLiteral,
    TrueFormula,
    match_referential_body,
    match_referential_quantifier,
)
from repro.errors import EvaluationError


class _Vacuous:
    """Result of an aggregate over an empty extent; satisfies any comparison.

    Doubles as the *vacuous truth* of the tri-state logic: comparisons on a
    vacuous value return the sentinel itself, connectives propagate it, and
    at a formula root its truthiness (``True``) counts as satisfied.
    """

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<vacuous>"


VACUOUS = _Vacuous()

#: Sentinel returned by an index probe that cannot answer a query (no index
#: materialized for the class/attribute, or the index was invalidated);
#: evaluation then falls back to the extent scan.
INDEX_MISS = object()


@dataclass(frozen=True)
class TraceEvent:
    """One read recorded during a traced evaluation.

    ``kind`` is one of:

    * ``"attr"`` — an attribute read; ``subject`` is the owning object's oid
      (or its repr for plain states), ``detail`` the attribute name;
    * ``"constant"`` — a named-constant read; ``subject`` is the name,
      ``detail`` the value's repr;
    * ``"probe"`` — an index probe answered the node; ``subject`` describes
      the probe, ``detail`` the answer;
    * ``"extent"`` — a quantifier/aggregate/key scanned a class extent;
      ``subject`` is the class name, ``detail`` what for;
    * ``"binding"`` — a quantifier bound ``var`` to an object; ``subject``
      is the object's oid, ``detail`` the binding description;
    * ``"member"`` — an aggregate or key scan visited an extent member;
      ``subject`` is its oid, ``detail`` the attribute(s) read from it;
    * ``"error"`` — evaluation failed; ``subject`` is the message.

    ``env`` snapshots the quantifier bindings in scope when the event was
    recorded, as ``((var, oid), ...)`` — the binding chain explanations and
    the CLI print for each conflict-core member.
    """

    kind: str
    subject: str
    detail: str = ""
    env: tuple = ()

    def describe(self) -> str:
        text = f"{self.kind} {self.subject}"
        if self.detail:
            text += f" [{self.detail}]"
        if self.env:
            chain = ", ".join(f"{var}={oid}" for var, oid in self.env)
            text += f" via {chain}"
        return text


class ReasonTrace:
    """The reason graph of one evaluation: an ordered list of
    :class:`TraceEvent` rows, append-only during evaluation.

    Quantifier closures truncate their own event ranges to keep only
    decisive iterations (see the module docstring), which is why the trace
    exposes its raw ``events`` list rather than an opaque recorder.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(
        self, kind: str, subject: str, detail: str = "", env: tuple = ()
    ) -> None:
        self.events.append(TraceEvent(kind, subject, detail, env))

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReasonTrace of {len(self.events)} events>"

    def support(self) -> tuple[str, ...]:
        """Subjects of every object whose state or membership determined
        the verdict, in first-read order (the seed set for core
        extraction).  Objects traced outside a store contribute their repr;
        core extraction intersects with the store's object table, so those
        drop out where masking is meaningless.
        """
        seen: dict[str, None] = {}
        for event in self.events:
            if event.kind in ("attr", "binding", "member"):
                seen.setdefault(event.subject, None)
            for _var, oid in event.env:
                if isinstance(oid, str):
                    seen.setdefault(oid, None)
        return tuple(seen)

    def constants_read(self) -> tuple[str, ...]:
        """Names of every schema constant the verdict depended on."""
        return tuple(
            dict.fromkeys(
                event.subject for event in self.events if event.kind == "constant"
            )
        )

    def reads_of(self, oid: str) -> tuple[str, ...]:
        """Attribute names read from ``oid`` during the evaluation."""
        names: dict[str, None] = {}
        for event in self.events:
            if event.kind in ("attr", "member") and event.subject == oid:
                if event.detail:
                    names.setdefault(event.detail, None)
        return tuple(names)

    def chain_of(self, oid: str) -> tuple:
        """The first binding chain that put ``oid`` in scope —
        ``((var, oid), ...)`` ending at the binding that introduced it.
        Only quantifier bindings (``var in Class`` details) extend the
        chain; other events contribute the bindings they were read under.
        """
        for event in self.events:
            if (
                event.kind == "binding"
                and event.subject == oid
                and " in " in event.detail
            ):
                return event.env + ((_binding_var(event.detail), oid),)
            if event.subject == oid and event.env:
                return event.env
            for var, bound in event.env:
                if bound == oid:
                    return event.env
        return ()

    def describe(self) -> str:
        return "\n".join(event.describe() for event in self.events)


def _binding_var(detail: str) -> str:
    # binding details are "var in Class" (or "key collision with …")
    return detail.split(" ", 1)[0] if detail else "?"


def _subject_of(obj: Any) -> str:
    """Trace subject for an object: its oid when it has one (store objects,
    snapshot objects), otherwise a repr (plain dict states)."""
    oid = getattr(obj, "oid", None)
    if isinstance(oid, str):
        return oid
    text = repr(obj)
    return text if len(text) <= 80 else text[:77] + "..."


def _trace_env(ctx: "EvalContext") -> tuple:
    """Snapshot of the quantifier bindings in scope, as ((var, oid), ...).
    Only called on traced paths, so the untraced hot path never pays for it.
    """
    return tuple((var, _subject_of(obj)) for var, obj in ctx.bindings.items())


def _default_get_attr(obj: Any, name: str) -> Any:
    if isinstance(obj, Mapping):
        if name in obj:
            return obj[name]
        raise EvaluationError(f"object state has no attribute {name!r}: {obj!r}")
    if hasattr(obj, name):
        return getattr(obj, name)
    raise EvaluationError(f"cannot read attribute {name!r} from {obj!r}")


#: Built-in functions available in rule conditions and constraints.
BUILTIN_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "contains": lambda haystack, needle: needle in haystack,
    "lower": lambda s: s.lower(),
    "upper": lambda s: s.upper(),
    "abs": abs,
    "length": len,
    "startswith": lambda s, prefix: s.startswith(prefix),
}


@dataclass
class EvalContext:
    """Everything a formula needs to evaluate; see module docstring."""

    current: Any = None
    bindings: dict[str, Any] = field(default_factory=dict)
    extents: Mapping[str, Iterable[Any]] = field(default_factory=dict)
    self_extent: Iterable[Any] = ()
    constants: Mapping[str, Any] = field(default_factory=dict)
    get_attr: Callable[[Any, str], Any] = _default_get_attr
    functions: Mapping[str, Callable[..., Any]] = field(default_factory=dict)
    #: The class whose deep extent backs ``self`` in class constraints;
    #: lets aggregate/key evaluation consult ``indexes`` instead of scanning.
    self_extent_class: str | None = None
    #: Optional index probe (duck-typed; the engine passes
    #: :class:`repro.engine.indexes.IndexManager`).  Must provide
    #: ``aggregate_value(func, class_name, over) -> value | INDEX_MISS``,
    #: ``key_unique(class_name, attributes) -> bool | None``,
    #: ``reference_count(referrer_class, attribute, oid) -> int | INDEX_MISS``
    #: and ``referential_verdict(mode, referenced_class, referrer_class,
    #: attribute) -> bool | INDEX_MISS``.  ``None`` disables the fast path:
    #: every aggregate, key and referential check scans extents.
    indexes: Any = None
    #: Optional :class:`ReasonTrace` collecting the reads that determine the
    #: verdict.  ``None`` (the default) disables tracing; the only cost left
    #: on the untraced path is one ``is None`` test per instrumented closure.
    trace: Any = None

    def child(self, **overrides: Any) -> "EvalContext":
        """A copy with some fields replaced (used by quantifier binding)."""
        data = {
            "current": self.current,
            "bindings": dict(self.bindings),
            "extents": self.extents,
            "self_extent": self.self_extent,
            "constants": self.constants,
            "get_attr": self.get_attr,
            "functions": self.functions,
            "self_extent_class": self.self_extent_class,
            "indexes": self.indexes,
            "trace": self.trace,
        }
        data.update(overrides)
        return EvalContext(**data)

    def function(self, name: str) -> Callable[..., Any]:
        if name in self.functions:
            return self.functions[name]
        if name in BUILTIN_FUNCTIONS:
            return BUILTIN_FUNCTIONS[name]
        raise EvaluationError(f"unknown function {name!r}")

    def extent_of(self, class_name: str) -> Iterable[Any]:
        if class_name not in self.extents:
            raise EvaluationError(f"no extent known for class {class_name!r}")
        return self.extents[class_name]


#: Compiled form of a node: a closure from evaluation context to value.
CompiledNode = Callable[[EvalContext], Any]

#: node → compiled closure.  AST nodes are frozen dataclasses, so structurally
#: equal formulas share one compilation.  Unhashable nodes (a Literal holding
#: a mutable value) are compiled without caching.  The cache is bounded: a
#: long-lived process compiling formulas from many schemas (the workbench as
#: a service, a large test session) would otherwise grow without limit, so
#: once the bound is hit the cache is dropped wholesale — recompilation is
#: cheap and the live constraints repopulate it on their next check.
_COMPILED: dict[Node, CompiledNode] = {}
_COMPILED_LIMIT = 4096


def compiled(node: Node) -> CompiledNode:
    """The compiled closure for ``node``, lowered once and cached."""
    try:
        closure = _COMPILED.get(node)
    except TypeError:  # unhashable literal somewhere in the tree
        return compile_node(node)
    if closure is None:
        closure = compile_node(node)
        if len(_COMPILED) >= _COMPILED_LIMIT:
            _COMPILED.clear()
        _COMPILED[node] = closure
    return closure


def evaluate(node: Node, ctx: EvalContext) -> Any:
    """Evaluate a formula (→ bool) or expression (→ value) in ``ctx``."""
    return compiled(node)(ctx)


def evaluate_traced(
    node: Node, ctx: EvalContext, trace: ReasonTrace | None = None
) -> tuple[Any, ReasonTrace]:
    """Evaluate with reason tracing; returns ``(verdict, trace)``.

    Same compiled closures, same verdict as :func:`evaluate` — bit-identical
    by the property suite.  Pass ``trace`` explicitly to keep access to the
    partial event list when evaluation raises (the events recorded up to the
    failure stay on it); the :class:`EvaluationError` itself carries the
    quantifier ``bindings`` that were in scope.
    """
    if trace is None:
        trace = ReasonTrace()
    return compiled(node)(ctx.child(trace=trace)), trace


def compile_node(node: Node) -> CompiledNode:
    """Lower ``node`` to a closure over :class:`EvalContext`.

    The closure tree mirrors the AST; all per-node dispatch (isinstance
    checks, operator table lookups, tuple rebuilding) happens here, once,
    instead of on every evaluation.  Semantics are identical to the former
    tree interpreter, including vacuous-value propagation and the errors
    raised.
    """
    if isinstance(node, Literal):
        value = node.value
        return lambda ctx: value
    if isinstance(node, SetLiteral):
        values = frozenset(node.values)
        return lambda ctx: values
    if isinstance(node, NamedConstant):
        name = node.name
        def run_constant(ctx: EvalContext) -> Any:
            if name not in ctx.constants:
                raise EvaluationError(
                    f"unknown named constant {name!r}", bindings=_trace_env(ctx)
                )
            value = ctx.constants[name]
            if ctx.trace is not None:
                ctx.trace.record("constant", name, repr(value), _trace_env(ctx))
            return value
        return run_constant
    if isinstance(node, Path):
        return _compile_path(node)
    if isinstance(node, BinaryOp):
        return _compile_arith(node)
    if isinstance(node, FunctionCall):
        fn_name = node.name
        arg_closures = tuple(compiled(arg) for arg in node.args)
        def run_call(ctx: EvalContext) -> Any:
            return ctx.function(fn_name)(*[arg(ctx) for arg in arg_closures])
        return run_call
    if isinstance(node, Aggregate):
        return _compile_aggregate(node)
    if isinstance(node, Comparison):
        return _compile_comparison(node)
    if isinstance(node, Membership):
        element = compiled(node.element)
        collection = compiled(node.collection)
        def run_membership(ctx: EvalContext) -> Any:
            value = element(ctx)
            members = collection(ctx)
            if isinstance(value, _Vacuous):
                return VACUOUS
            try:
                return value in members
            except TypeError as exc:
                raise EvaluationError(
                    f"cannot test membership in {members!r}",
                    bindings=_trace_env(ctx),
                ) from exc
        return run_membership
    if isinstance(node, Not):
        operand = compiled(node.operand)

        def run_not(ctx: EvalContext) -> Any:
            value = operand(ctx)
            if isinstance(value, _Vacuous):
                return value  # ¬(vacuous) imposes nothing either
            return not value

        return run_not
    if isinstance(node, And):
        parts = tuple(compiled(part) for part in node.parts)

        def run_and(ctx: EvalContext) -> Any:
            saw_vacuous = False
            for part in parts:
                value = part(ctx)
                if isinstance(value, _Vacuous):
                    saw_vacuous = True
                elif not value:
                    return False
            return VACUOUS if saw_vacuous else True

        return run_and
    if isinstance(node, Or):
        parts = tuple(compiled(part) for part in node.parts)

        def run_or(ctx: EvalContext) -> Any:
            # A vacuous disjunct must not short-circuit: its De Morgan dual
            # (a conjunction of negations) evaluates every part too.
            saw_vacuous = False
            for part in parts:
                value = part(ctx)
                if isinstance(value, _Vacuous):
                    saw_vacuous = True
                elif value:
                    return True
            return VACUOUS if saw_vacuous else False

        return run_or
    if isinstance(node, Implies):
        antecedent = compiled(node.antecedent)
        consequent = compiled(node.consequent)

        def run_implies(ctx: EvalContext) -> Any:
            condition = antecedent(ctx)
            if isinstance(condition, _Vacuous):
                conclusion = consequent(ctx)
                if not isinstance(conclusion, _Vacuous) and conclusion:
                    return True
                return VACUOUS
            if not condition:
                return True
            return consequent(ctx)

        return run_implies
    if isinstance(node, Quantified):
        return _compile_quantified(node)
    if isinstance(node, KeyConstraint):
        return _compile_key(node)
    if isinstance(node, TrueFormula):
        return lambda ctx: True
    if isinstance(node, FalseFormula):
        return lambda ctx: False
    raise EvaluationError(f"cannot evaluate node of type {type(node).__name__}")


def _compile_path(path: Path) -> CompiledNode:
    parts = path.parts
    head, tail = parts[0], parts[1:]
    dotted = path.dotted()

    def run_path(ctx: EvalContext) -> Any:
        if head in ctx.bindings:
            obj = ctx.bindings[head]
            rest = tail
        else:
            if ctx.current is None:
                raise EvaluationError(
                    f"path {dotted!r} has no root: no current object bound",
                    bindings=_trace_env(ctx),
                )
            obj = ctx.current
            rest = parts
        get_attr = ctx.get_attr
        trace = ctx.trace
        if trace is None:
            for name in rest:
                obj = get_attr(obj, name)
            return obj
        env = _trace_env(ctx)
        for name in rest:
            # Recorded before the read so a failing dereference still shows
            # which object's attribute was being followed.
            trace.record("attr", _subject_of(obj), name, env)
            obj = get_attr(obj, name)
        return obj

    return run_path


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


def _compile_arith(node: BinaryOp) -> CompiledNode:
    if node.op not in _ARITHMETIC:
        raise EvaluationError(f"unknown arithmetic operator {node.op!r}")
    op_name = node.op
    operator = _ARITHMETIC[op_name]
    left = compiled(node.left)
    right = compiled(node.right)

    def run_arith(ctx: EvalContext) -> Any:
        a = left(ctx)
        b = right(ctx)
        if isinstance(a, _Vacuous) or isinstance(b, _Vacuous):
            return VACUOUS
        try:
            return operator(a, b)
        except TypeError as exc:
            raise EvaluationError(
                f"arithmetic {op_name!r} failed on {a!r} and {b!r}",
                bindings=_trace_env(ctx),
            ) from exc

    return run_arith


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compile_comparison(node: Comparison) -> CompiledNode:
    comparator = _COMPARATORS[node.op]
    op_name = node.op
    left = compiled(node.left)
    right = compiled(node.right)

    def run_comparison(ctx: EvalContext) -> Any:
        a = left(ctx)
        b = right(ctx)
        if isinstance(a, _Vacuous) or isinstance(b, _Vacuous):
            return VACUOUS
        try:
            return comparator(a, b)
        except TypeError as exc:
            raise EvaluationError(
                f"cannot compare {a!r} {op_name} {b!r}",
                bindings=_trace_env(ctx),
            ) from exc

    return run_comparison


def _compile_aggregate(node: Aggregate) -> CompiledNode:
    func, collection, over = node.func, node.collection, node.over
    if func not in ("sum", "avg", "min", "max", "count"):
        raise EvaluationError(f"unknown aggregate {func!r}")

    def run_aggregate(ctx: EvalContext) -> Any:
        trace = ctx.trace
        if ctx.indexes is not None:
            base = ctx.self_extent_class if collection == "self" else collection
            if base is not None:
                value = ctx.indexes.aggregate_value(func, base, over)
                if value is not INDEX_MISS:
                    if trace is not None:
                        trace.record(
                            "probe",
                            f"{func}({base}.{over})" if over else f"{func}({base})",
                            repr(value),
                            _trace_env(ctx),
                        )
                    return value
        if collection == "self":
            extent = list(ctx.self_extent)
            base_name = ctx.self_extent_class or "self"
        else:
            extent = list(ctx.extent_of(collection))
            base_name = collection
        if trace is not None:
            # The whole extent supports an aggregate verdict — including the
            # empty extent (a vacuous verdict still gets a non-empty trace).
            env = _trace_env(ctx)
            trace.record(
                "extent",
                base_name,
                f"{func} over {over}" if over else func,
                env,
            )
            for obj in extent:
                trace.record("member", _subject_of(obj), over or "", env)
        if func == "count" and over is None:
            return len(extent)
        get_attr = ctx.get_attr
        values = [get_attr(obj, over) for obj in extent]
        if func == "count":
            return len(values)
        if not values:
            return 0 if func == "sum" else VACUOUS
        try:
            if func == "sum":
                return sum(values)
            if func == "avg":
                return sum(values) / len(values)
            if func == "min":
                return min(values)
            return max(values)
        except TypeError as exc:
            # Same error contract as comparisons/arithmetic: operand trouble
            # surfaces as EvaluationError, never a raw TypeError — mirroring
            # the index path, which degrades to INDEX_MISS on such values.
            raise EvaluationError(
                f"cannot aggregate {func!r} over {over!r}: "
                f"non-numeric or mixed-type operands",
                bindings=_trace_env(ctx),
            ) from exc

    return run_aggregate


def _compile_quantified(node: Quantified) -> CompiledNode:
    if node.kind not in ("forall", "exists"):
        raise EvaluationError(f"unknown quantifier {node.kind!r}")
    body = compiled(node.body)
    var, class_name = node.var, node.class_name
    is_forall = node.kind == "forall"

    # Referential fast paths.  ``outer`` matches whole-formula shapes
    # (``forall x in C exists y in D | y.a = x`` and the negated/existential
    # variants) answered by one O(1) verdict probe; ``inner`` matches the
    # bare existential (``exists y in D | y.a = <expr>``) answered by an O(1)
    # referrer-count lookup on the expression's identity.  Both degrade to
    # the extent scan on INDEX_MISS, exactly like aggregates and keys.
    outer = match_referential_quantifier(node)
    inner = match_referential_body(node.body, var) if not is_forall else None
    inner_attr = inner[0] if inner is not None else None
    inner_other = compiled(inner[1]) if inner is not None else None

    def run_quantified(ctx: EvalContext) -> Any:
        indexes = ctx.indexes
        trace = ctx.trace
        if indexes is not None:
            if outer is not None:
                verdict = indexes.referential_verdict(*outer)
                if verdict is not INDEX_MISS:
                    if trace is not None:
                        mode, referenced, referrer, attr = outer
                        trace.record(
                            "probe",
                            f"referential {mode}: {referrer}.{attr} -> {referenced}",
                            repr(verdict),
                            _trace_env(ctx),
                        )
                    return verdict
            if inner_other is not None:
                try:
                    target = inner_other(ctx)
                except Exception:
                    target = None  # scan fallback re-raises (or not), as before
                oid = getattr(target, "oid", None)
                if isinstance(oid, str):
                    count = indexes.reference_count(class_name, inner_attr, oid)
                    if count is not INDEX_MISS:
                        if trace is not None:
                            trace.record(
                                "probe",
                                f"refcount {class_name}.{inner_attr} = {oid}",
                                repr(count),
                                _trace_env(ctx),
                            )
                        return count > 0
        extent = ctx.extent_of(class_name)
        bindings = ctx.bindings
        saw_vacuous = False
        if trace is None:
            if is_forall:
                for obj in extent:
                    value = body(ctx.child(bindings={**bindings, var: obj}))
                    if isinstance(value, _Vacuous):
                        saw_vacuous = True
                    elif not value:
                        return False
                return VACUOUS if saw_vacuous else True
            for obj in extent:
                value = body(ctx.child(bindings={**bindings, var: obj}))
                if isinstance(value, _Vacuous):
                    saw_vacuous = True
                elif value:
                    return True
            return VACUOUS if saw_vacuous else False
        # Traced scan.  Bodies run *untraced* first — identical closures,
        # identical verdicts — and only the decisive iteration (forall's
        # falsifier, exists' witness, or the iteration that raises) is
        # re-evaluated with tracing to capture its reason events.  An
        # exhausted loop (forall→True/VACUOUS, exists→False/VACUOUS) keeps
        # just the extent event: "every member was scanned" *is* the
        # reason, and per-member events would make detection traces — and
        # the conflict-core seed supports derived from them — O(extent).
        env = _trace_env(ctx)
        trace.record("extent", class_name, f"{node.kind} {var}", env)

        def retrace(obj: Any) -> Any:
            trace.record(
                "binding", _subject_of(obj), f"{var} in {class_name}", env
            )
            return body(ctx.child(bindings={**bindings, var: obj}))

        decisive = not is_forall  # forall exits on falsy, exists on truthy
        for obj in extent:
            try:
                value = body(
                    ctx.child(bindings={**bindings, var: obj}, trace=None)
                )
            except Exception:
                # Evaluation is pure, so the traced re-run deterministically
                # raises the same error — now with its events on the trace.
                retrace(obj)
                raise
            if isinstance(value, _Vacuous):
                saw_vacuous = True
            elif bool(value) is decisive:
                retrace(obj)
                return decisive
        if saw_vacuous:
            return VACUOUS
        return is_forall

    return run_quantified


def _compile_key(node: KeyConstraint) -> CompiledNode:
    attributes = node.attributes

    def run_key(ctx: EvalContext) -> bool:
        trace = ctx.trace
        if ctx.indexes is not None and ctx.self_extent_class is not None:
            verdict = ctx.indexes.key_unique(ctx.self_extent_class, attributes)
            if verdict is not None:
                if trace is not None:
                    trace.record(
                        "probe",
                        f"key {ctx.self_extent_class}({', '.join(attributes)})",
                        repr(verdict),
                        _trace_env(ctx),
                    )
                return verdict
        # seen maps key → first holder's subject so a traced collision can
        # name the pair; the untraced cost over a plain set is negligible.
        seen: dict[tuple, str] = {}
        get_attr = ctx.get_attr
        joined = ", ".join(attributes)
        if trace is not None:
            trace.record(
                "extent", ctx.self_extent_class or "self", f"key {joined}", ()
            )
            loop_mark = len(trace.events)
        for obj in ctx.self_extent:
            subject = _subject_of(obj) if trace is not None else ""
            if trace is not None:
                trace.record("member", subject, joined)
            key = tuple(get_attr(obj, attr) for attr in attributes)
            if key in seen:
                if trace is not None:
                    # Only the colliding pair supports a False verdict.
                    del trace.events[loop_mark:]
                    trace.record("member", seen[key], joined)
                    trace.record("member", subject, joined)
                    trace.record("binding", seen[key], f"key collision on ({joined})")
                    trace.record("binding", subject, f"key collision on ({joined})")
                return False
            seen[key] = subject
        return True

    return run_key
