"""Evaluation of constraint formulas against object states.

An *object state* is any mapping from attribute names to values (the engine
stores states as dicts).  Evaluation is parameterised by an
:class:`EvalContext` carrying:

* ``current`` — the object an object constraint is being checked on (paths
  without an explicit root resolve against it);
* ``bindings`` — named variables in scope (``O``, ``O'``, quantifier vars);
* ``extents`` — class name → iterable of object states, for quantifiers,
  aggregates over named classes and key constraints;
* ``self_extent`` — the extent behind ``self`` in class constraints;
* ``constants`` — named schema constants (``MAX`` → number,
  ``KNOWNPUBLISHERS`` → set of strings);
* ``get_attr`` — attribute accessor hook; the engine substitutes one that
  dereferences object identifiers through the store so that paths like
  ``publisher.name`` traverse references.

Aggregates over an empty extent: ``sum`` is 0 and ``count`` is 0; ``avg`` /
``min`` / ``max`` are *vacuous* — any comparison against a vacuous value is
satisfied.  (TM leaves this case open; vacuous truth matches how the paper
treats constraints on empty classes.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.constraints.ast import (
    Aggregate,
    And,
    BinaryOp,
    Comparison,
    FalseFormula,
    FunctionCall,
    Implies,
    KeyConstraint,
    Literal,
    Membership,
    NamedConstant,
    Node,
    Not,
    Or,
    Path,
    Quantified,
    SetLiteral,
    TrueFormula,
)
from repro.errors import EvaluationError


class _Vacuous:
    """Result of an aggregate over an empty extent; satisfies any comparison."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<vacuous>"


VACUOUS = _Vacuous()


def _default_get_attr(obj: Any, name: str) -> Any:
    if isinstance(obj, Mapping):
        if name in obj:
            return obj[name]
        raise EvaluationError(f"object state has no attribute {name!r}: {obj!r}")
    if hasattr(obj, name):
        return getattr(obj, name)
    raise EvaluationError(f"cannot read attribute {name!r} from {obj!r}")


#: Built-in functions available in rule conditions and constraints.
BUILTIN_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "contains": lambda haystack, needle: needle in haystack,
    "lower": lambda s: s.lower(),
    "upper": lambda s: s.upper(),
    "abs": abs,
    "length": len,
    "startswith": lambda s, prefix: s.startswith(prefix),
}


@dataclass
class EvalContext:
    """Everything a formula needs to evaluate; see module docstring."""

    current: Any = None
    bindings: dict[str, Any] = field(default_factory=dict)
    extents: Mapping[str, Iterable[Any]] = field(default_factory=dict)
    self_extent: Iterable[Any] = ()
    constants: Mapping[str, Any] = field(default_factory=dict)
    get_attr: Callable[[Any, str], Any] = _default_get_attr
    functions: Mapping[str, Callable[..., Any]] = field(default_factory=dict)

    def child(self, **overrides: Any) -> "EvalContext":
        """A copy with some fields replaced (used by quantifier binding)."""
        data = {
            "current": self.current,
            "bindings": dict(self.bindings),
            "extents": self.extents,
            "self_extent": self.self_extent,
            "constants": self.constants,
            "get_attr": self.get_attr,
            "functions": self.functions,
        }
        data.update(overrides)
        return EvalContext(**data)

    def function(self, name: str) -> Callable[..., Any]:
        if name in self.functions:
            return self.functions[name]
        if name in BUILTIN_FUNCTIONS:
            return BUILTIN_FUNCTIONS[name]
        raise EvaluationError(f"unknown function {name!r}")

    def extent_of(self, class_name: str) -> Iterable[Any]:
        if class_name not in self.extents:
            raise EvaluationError(f"no extent known for class {class_name!r}")
        return self.extents[class_name]


def evaluate(node: Node, ctx: EvalContext) -> Any:
    """Evaluate a formula (→ bool) or expression (→ value) in ``ctx``."""
    if isinstance(node, Literal):
        return node.value
    if isinstance(node, SetLiteral):
        return frozenset(node.values)
    if isinstance(node, NamedConstant):
        if node.name not in ctx.constants:
            raise EvaluationError(f"unknown named constant {node.name!r}")
        return ctx.constants[node.name]
    if isinstance(node, Path):
        return _evaluate_path(node, ctx)
    if isinstance(node, BinaryOp):
        return _evaluate_arith(node, ctx)
    if isinstance(node, FunctionCall):
        args = [evaluate(arg, ctx) for arg in node.args]
        return ctx.function(node.name)(*args)
    if isinstance(node, Aggregate):
        return _evaluate_aggregate(node, ctx)
    if isinstance(node, Comparison):
        return _evaluate_comparison(node, ctx)
    if isinstance(node, Membership):
        element = evaluate(node.element, ctx)
        collection = evaluate(node.collection, ctx)
        if isinstance(element, _Vacuous):
            return True
        try:
            return element in collection
        except TypeError as exc:
            raise EvaluationError(f"cannot test membership in {collection!r}") from exc
    if isinstance(node, Not):
        return not evaluate(node.operand, ctx)
    if isinstance(node, And):
        return all(evaluate(part, ctx) for part in node.parts)
    if isinstance(node, Or):
        return any(evaluate(part, ctx) for part in node.parts)
    if isinstance(node, Implies):
        return (not evaluate(node.antecedent, ctx)) or evaluate(node.consequent, ctx)
    if isinstance(node, Quantified):
        return _evaluate_quantified(node, ctx)
    if isinstance(node, KeyConstraint):
        return _evaluate_key(node, ctx)
    if isinstance(node, TrueFormula):
        return True
    if isinstance(node, FalseFormula):
        return False
    raise EvaluationError(f"cannot evaluate node of type {type(node).__name__}")


def _evaluate_path(path: Path, ctx: EvalContext) -> Any:
    parts = path.parts
    if parts[0] in ctx.bindings:
        obj = ctx.bindings[parts[0]]
        rest = parts[1:]
    else:
        if ctx.current is None:
            raise EvaluationError(
                f"path {path.dotted()!r} has no root: no current object bound"
            )
        obj = ctx.current
        rest = parts
    for name in rest:
        obj = ctx.get_attr(obj, name)
    return obj


def _evaluate_arith(node: BinaryOp, ctx: EvalContext) -> Any:
    left = evaluate(node.left, ctx)
    right = evaluate(node.right, ctx)
    if isinstance(left, _Vacuous) or isinstance(right, _Vacuous):
        return VACUOUS
    try:
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        if node.op == "/":
            return left / right
    except TypeError as exc:
        raise EvaluationError(
            f"arithmetic {node.op!r} failed on {left!r} and {right!r}"
        ) from exc
    raise EvaluationError(f"unknown arithmetic operator {node.op!r}")


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _evaluate_comparison(node: Comparison, ctx: EvalContext) -> bool:
    left = evaluate(node.left, ctx)
    right = evaluate(node.right, ctx)
    if isinstance(left, _Vacuous) or isinstance(right, _Vacuous):
        return True
    try:
        return _COMPARATORS[node.op](left, right)
    except TypeError as exc:
        raise EvaluationError(
            f"cannot compare {left!r} {node.op} {right!r}"
        ) from exc


def _evaluate_aggregate(node: Aggregate, ctx: EvalContext) -> Any:
    if node.collection == "self":
        extent = list(ctx.self_extent)
    else:
        extent = list(ctx.extent_of(node.collection))
    if node.func == "count" and node.over is None:
        return len(extent)
    values = [ctx.get_attr(obj, node.over) for obj in extent]
    if node.func == "sum":
        return sum(values)
    if node.func == "count":
        return len(values)
    if not values:
        return VACUOUS
    if node.func == "avg":
        return sum(values) / len(values)
    if node.func == "min":
        return min(values)
    if node.func == "max":
        return max(values)
    raise EvaluationError(f"unknown aggregate {node.func!r}")


def _evaluate_quantified(node: Quantified, ctx: EvalContext) -> bool:
    extent = ctx.extent_of(node.class_name)
    if node.kind == "forall":
        return all(
            evaluate(node.body, ctx.child(bindings={**ctx.bindings, node.var: obj}))
            for obj in extent
        )
    if node.kind == "exists":
        return any(
            evaluate(node.body, ctx.child(bindings={**ctx.bindings, node.var: obj}))
            for obj in extent
        )
    raise EvaluationError(f"unknown quantifier {node.kind!r}")


def _evaluate_key(node: KeyConstraint, ctx: EvalContext) -> bool:
    seen: set[tuple] = set()
    for obj in ctx.self_extent:
        key = tuple(ctx.get_attr(obj, attr) for attr in node.attributes)
        if key in seen:
            return False
        seen.add(key)
    return True
