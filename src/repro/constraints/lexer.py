"""Tokenizer for the constraint language and the TM schema syntax.

One lexer serves both parsers; the TM schema parser simply consumes a wider
set of keywords.  Identifiers may end in ``?`` (``ref?``) and contain a prime
(``O'``) to match the paper's notation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError

TOKEN_SPEC = [
    ("NUMBER", r"\d+\.\d+|\d+"),
    ("DOTDOT", r"\.\."),
    ("STRING", r"'[^']*'|\"[^\"]*\""),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*'?\??"),
    ("ARROW", r"<-"),
    ("OP", r"<=|>=|!=|=>|<|>|="),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("COMMA", r","),
    ("COLON", r":"),
    ("SEMI", r";"),
    ("DOT", r"\."),
    ("BAR", r"\|"),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("STAR", r"\*"),
    ("SLASH", r"/"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("COMMENT", r"#[^\n]*|//[^\n]*"),
    ("MISMATCH", r"."),
]

_MASTER_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in TOKEN_SPEC))

#: Words with grammatical meaning in constraint expressions.
KEYWORDS = frozenset(
    {
        "and",
        "or",
        "not",
        "implies",
        "in",
        "key",
        "forall",
        "exists",
        "true",
        "false",
        "sum",
        "avg",
        "min",
        "max",
        "count",
        "collect",
        "for",
        "over",
        "self",
    }
)


@dataclass(frozen=True)
class Token:
    """A lexical token with its 1-based source position."""

    kind: str  # NUMBER | STRING | IDENT | KEYWORD | operator kinds | EOF
    text: str
    line: int
    column: int

    def describe(self) -> str:
        return f"{self.kind}({self.text!r})"


def tokenize(source: str, keep_newlines: bool = False) -> list[Token]:
    """Tokenize ``source``; raises :class:`ParseError` on illegal characters.

    ``keep_newlines`` is used by the TM schema parser, where line breaks
    terminate attribute and constraint declarations.
    """
    tokens: list[Token] = []
    line = 1
    line_start = 0
    for match in _MASTER_RE.finditer(source):
        kind = match.lastgroup or "MISMATCH"
        text = match.group()
        column = match.start() - line_start + 1
        if kind == "NEWLINE":
            if keep_newlines:
                tokens.append(Token("NEWLINE", text, line, column))
            line += 1
            line_start = match.end()
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "MISMATCH":
            raise ParseError(f"unexpected character {text!r}", line, column)
        if kind == "IDENT" and text in KEYWORDS:
            # Case-sensitive: MAX / KNOWNPUBLISHERS are named constants, not
            # the aggregate keywords max / count.
            tokens.append(Token("KEYWORD", text, line, column))
            continue
        if kind == "OP" and text == "=>":
            # Some renderings of the paper use => for implication.
            tokens.append(Token("KEYWORD", "implies", line, column))
            continue
        tokens.append(Token(kind, text, line, column))
    tokens.append(Token("EOF", "", line, 1))
    return tokens


class TokenStream:
    """A cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self._index += 1
        return token

    def at(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.text in words

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if not self.at(kind, text):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted}, found {token.describe()}", token.line, token.column
            )
        return self.next()

    def skip_newlines(self) -> None:
        while self.at("NEWLINE"):
            self.next()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message + f" (found {token.describe()})", token.line, token.column)
