"""Static analysis over constraint ASTs.

The paper's central judgements — conflict detection (``Omega ⊨ false``) and
entailment between constraints (Section 5.2.1) — are *static* properties of
schemas, yet the engine historically discovered them at run time when a
commit failed.  This module decides them at schema time, as four composable
passes producing :class:`Diagnostic` records:

1. **Lint** (:func:`lint_constraint`) — resolve every attribute path,
   comparison, aggregate, key and function call against the schema.
   Malformed constraints surface as source-located ``error`` diagnostics
   instead of runtime ``EvaluationError``s.

2. **Per-constraint satisfiability** (:func:`check_satisfiability`) — flag
   constraints that are individually UNSAT (always violated — the class can
   never hold an object) or tautological (dead — they can never reject
   anything).  Soundness follows the solver's contract: an UNSAT verdict is
   always correct, even when the formula contains opaque atoms; a SAT verdict
   outside the solver's sound fragment is reported honestly as *unknown*
   (``info``), never as a clean bill of health.

3. **Cross-constraint analysis** (:func:`cross_constraint_diagnostics`) —
   for each class, the conjunction of its effective object constraints is the
   paper's ``Omega``; pairwise and joint contradictions are ``error``
   (``Omega ⊨ false`` before any data exists), and entailment-based
   subsumption (``C1 ⊨ C2`` ⇒ C2 redundant) is ``warn``.

4. **Redundancy pruning** (:func:`prunable_constraints`) — the subset of
   subsumption verdicts that is *safe to act on*: a pruned constraint must be
   entailed by a keeper that is effective on every class the pruned one is,
   triggered by every delta that triggers the pruned one, and the pruned
   formula must be incapable of raising at evaluation time (in-fragment,
   dereference-free, lint-clean).  Under those conditions removing it from
   the incremental hot path cannot change any accept/reject verdict:
   whenever it would have rejected an object, the keeper rejects the same
   object in the same pass.  Audits and full revalidation never prune.

The update-pattern simplification dispatch (Martinenghi-style) lives with the
dependency index in :mod:`repro.engine.incremental` — it is semantics-
preserving and always on; this module supplies only the *pruning* refinement,
which is gated behind ``ObjectStore(analyze=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Mapping
from typing import TYPE_CHECKING

from repro.constraints.ast import (
    Aggregate,
    BinaryOp,
    Comparison,
    FunctionCall,
    KeyConstraint,
    Literal,
    Membership,
    NamedConstant,
    Node,
    Path,
    Quantified,
    SetLiteral,
)
from repro.constraints.evaluate import BUILTIN_FUNCTIONS
from repro.constraints.model import Constraint, ConstraintKind
from repro.constraints.normalize import negate
from repro.constraints.solver import Solver, TypeEnvironment
from repro.errors import SolverError
from repro.types.primitives import BoolType, ClassRef, EnumType, SetType, Type

if TYPE_CHECKING:  # pragma: no cover
    from repro.tm.schema import DatabaseSchema

__all__ = [
    "Diagnostic",
    "AnalysisReport",
    "analyze_schema",
    "lint_schema",
    "lint_constraint",
    "check_satisfiability",
    "cross_constraint_diagnostics",
    "pairwise_conflicts",
    "prunable_constraints",
    "in_solver_fragment",
]

#: Severity rank for sorting (most severe first).
_SEVERITY_RANK: dict[str, int] = {"error": 0, "warn": 1, "info": 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyser.

    ``severity`` is ``"error"`` (the constraint is malformed or the schema is
    inconsistent), ``"warn"`` (suspicious but evaluable — redundancy, unbound
    constants, unknown functions), or ``"info"`` (honest reporting: unknown
    satisfiability outside the solver fragment, dead tautologies).
    """

    severity: str
    code: str
    message: str
    constraint: str | None = None
    line: int | None = None
    column: int | None = None

    def location(self) -> str:
        if self.line is None:
            return ""
        if self.column is None:
            return f"line {self.line}"
        return f"line {self.line}, col {self.column}"

    def render(self) -> str:
        where = []
        if self.constraint:
            where.append(self.constraint)
        location = self.location()
        if location:
            where.append(f"({location})")
        prefix = " ".join(where)
        head = f"{self.severity}: {prefix} " if prefix else f"{self.severity}: "
        return f"{head}[{self.code}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
        }
        if self.constraint is not None:
            payload["constraint"] = self.constraint
        if self.line is not None:
            payload["line"] = self.line
        if self.column is not None:
            payload["column"] = self.column
        return payload


@dataclass
class AnalysisReport:
    """The collected diagnostics of one analysis run."""

    schema: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warn"]

    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "info"]

    def exit_code(self) -> int:
        """``2`` on any error, ``1`` on warnings only, ``0`` clean.

        ``info`` diagnostics never affect the exit code — honest "unknown"
        reports must not fail a CI gate.
        """
        if self.errors():
            return 2
        if self.warnings():
            return 1
        return 0

    def sorted(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (
                _SEVERITY_RANK.get(d.severity, 3),
                d.constraint or "",
                d.line or 0,
                d.column or 0,
                d.code,
            ),
        )

    def render_text(self) -> str:
        lines = [d.render() for d in self.sorted()]
        lines.append(
            f"{self.schema}: {len(self.errors())} error(s), "
            f"{len(self.warnings())} warning(s), {len(self.infos())} info(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": self.schema,
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "infos": len(self.infos()),
            "exit_code": self.exit_code(),
        }


# ---------------------------------------------------------------------------
# fragment membership
# ---------------------------------------------------------------------------


def in_solver_fragment(formula: Node) -> bool:
    """Whether the solver's SAT answers are reliable for ``formula``.

    Quantifiers, aggregates, key constraints and function calls are treated
    as *opaque boolean atoms* by the solver: UNSAT verdicts over them remain
    sound (an opaque atom asserted both ways is still a contradiction), but a
    SAT verdict may hide a semantic contradiction the solver cannot see.
    """
    return not any(
        isinstance(node, (Quantified, Aggregate, KeyConstraint, FunctionCall))
        for node in formula.walk()
    )


def _dereference_free(formula: Node) -> bool:
    """No multi-segment paths: evaluation can never chase a dangling
    reference, so (given clean lint) it cannot raise ``EngineError``."""
    return not any(
        isinstance(node, Path) and len(node.parts) > 1 for node in formula.walk()
    )


# ---------------------------------------------------------------------------
# pass 1: type / well-formedness lint
# ---------------------------------------------------------------------------


class _Linter:
    """Walks one constraint formula, mirroring the scoping rules of
    evaluation (:mod:`repro.constraints.evaluate`) and of the read-set
    extractor (:mod:`repro.engine.incremental`), emitting diagnostics instead
    of read sets."""

    def __init__(self, schema: "DatabaseSchema", constraint: Constraint):
        self.schema = schema
        self.constraint = constraint
        self.diagnostics: list[Diagnostic] = []

    def _emit(self, severity: str, code: str, message: str, node: Node) -> None:
        pos = node.position()
        self.diagnostics.append(
            Diagnostic(
                severity,
                code,
                message,
                constraint=self.constraint.qualified_name,
                line=pos[0] if pos else None,
                column=pos[1] if pos else None,
            )
        )

    def run(self) -> list[Diagnostic]:
        self._walk(self.constraint.formula, {})
        return self.diagnostics

    # -- traversal -----------------------------------------------------------

    def _walk(self, node: Node, env: dict[str, str]) -> None:
        if isinstance(node, Quantified):
            if not self.schema.has_class(node.class_name):
                self._emit(
                    "error",
                    "unknown-class",
                    f"quantifier ranges over unknown class {node.class_name!r}",
                    node,
                )
                return
            self._walk(node.body, {**env, node.var: node.class_name})
            return
        if isinstance(node, Aggregate):
            base = (
                self.constraint.owner if node.collection == "self" else node.collection
            )
            if base is None:
                self._emit(
                    "error",
                    "unbound-self",
                    "aggregate over 'self' in a constraint with no owning class",
                    node,
                )
                return
            if not self.schema.has_class(base):
                self._emit(
                    "error",
                    "unknown-class",
                    f"aggregate ranges over unknown class {base!r}",
                    node,
                )
                return
            if (
                node.over is not None
                and node.over not in self.schema.effective_attributes(base)
            ):
                self._emit(
                    "error",
                    "unknown-attribute",
                    f"class {base} has no attribute {node.over!r} "
                    f"(aggregate 'over' target)",
                    node,
                )
            return
        if isinstance(node, KeyConstraint):
            owner = self.constraint.owner
            if owner is None or not self.schema.has_class(owner):
                self._emit(
                    "error",
                    "unbound-self",
                    "key constraint outside a class",
                    node,
                )
                return
            attributes = self.schema.effective_attributes(owner)
            for attr in node.attributes:
                if attr not in attributes:
                    self._emit(
                        "error",
                        "unknown-attribute",
                        f"class {owner} has no attribute {attr!r} (key component)",
                        node,
                    )
            return
        if isinstance(node, Path):
            self._check_path(node, env)
            return
        if isinstance(node, FunctionCall):
            if node.name not in BUILTIN_FUNCTIONS:
                self._emit(
                    "warn",
                    "unknown-function",
                    f"function {node.name!r} is not built in; it must be "
                    f"supplied at evaluation time (EvalContext.functions)",
                    node,
                )
            for arg in node.args:
                self._walk(arg, env)
            return
        if isinstance(node, NamedConstant):
            if node.name not in self.schema.constants:
                self._emit(
                    "warn",
                    "unbound-constant",
                    f"named constant {node.name!r} has no binding in the schema",
                    node,
                )
            return
        if isinstance(node, Comparison):
            self._walk(node.left, env)
            self._walk(node.right, env)
            self._check_comparison(node, env)
            return
        for child in node.children():
            self._walk(child, env)

    # -- paths ---------------------------------------------------------------

    def _check_path(self, path: Path, env: dict[str, str]) -> None:
        if path.parts[0] in env:
            start: str | None = env[path.parts[0]]
            parts = path.parts[1:]
            if not parts:
                return  # a bare quantifier variable (identity comparison)
        else:
            start = self.constraint.owner
            parts = path.parts
            if start is None:
                self._emit(
                    "error",
                    "unbound-path",
                    f"path {path.dotted()!r} is not rooted at a quantified "
                    f"variable, and the constraint has no owning class",
                    path,
                )
                return
        current: str | None = start
        for index, part in enumerate(parts):
            if current is None:
                self._emit(
                    "error",
                    "not-a-reference",
                    f"path {path.dotted()!r} dereferences through "
                    f"{parts[index - 1]!r}, which is not a reference attribute",
                    path,
                )
                return
            if not self.schema.has_class(current):
                self._emit(
                    "error",
                    "unknown-class",
                    f"path {path.dotted()!r} traverses unknown class {current!r}",
                    path,
                )
                return
            attributes = self.schema.effective_attributes(current)
            if part not in attributes:
                self._emit(
                    "error",
                    "unknown-attribute",
                    f"class {current} has no attribute {part!r} "
                    f"(in path {path.dotted()!r})",
                    path,
                )
                return
            tm_type = attributes[part].tm_type
            current = tm_type.class_name if isinstance(tm_type, ClassRef) else None

    # -- comparisons ---------------------------------------------------------

    def _check_comparison(self, node: Comparison, env: dict[str, str]) -> None:
        left = self._type_kind(node.left, env)
        right = self._type_kind(node.right, env)
        if left is None or right is None or left == right:
            return
        if node.op in ("<", "<=", ">", ">="):
            # Python refuses the ordered comparison: guaranteed runtime
            # EvaluationError on every evaluation.
            self._emit(
                "error",
                "incomparable-types",
                f"ordered comparison between {left} and {right} "
                f"always fails at evaluation time",
                node,
            )
        else:
            self._emit(
                "warn",
                "constant-comparison",
                f"comparison between {left} and {right} has a constant verdict",
                node,
            )

    def _type_kind(self, node: Node, env: dict[str, str]) -> str | None:
        """A coarse static kind — ``number`` / ``string`` / ``bool`` — or
        ``None`` when unknown (references, sets, opaque calls)."""
        if isinstance(node, Literal):
            return _kind_of_value(node.value)
        if isinstance(node, NamedConstant):
            bound = self.schema.constants.get(node.name)
            if bound is None or isinstance(bound, (set, frozenset, list, tuple)):
                return None
            return _kind_of_value(bound)
        if isinstance(node, (BinaryOp, Aggregate)):
            return "number"
        if isinstance(node, Path):
            tm_type = self._path_type(node, env)
            return _kind_of_type(tm_type) if tm_type is not None else None
        return None

    def _path_type(self, path: Path, env: dict[str, str]) -> Type | None:
        if path.parts[0] in env:
            current: str | None = env[path.parts[0]]
            parts = path.parts[1:]
        else:
            current = self.constraint.owner
            parts = path.parts
        tm_type: Type | None = None
        for part in parts:
            if current is None or not self.schema.has_class(current):
                return None
            attribute = self.schema.effective_attributes(current).get(part)
            if attribute is None:
                return None
            tm_type = attribute.tm_type
            current = (
                tm_type.class_name if isinstance(tm_type, ClassRef) else None
            )
        return tm_type


def _kind_of_value(value: object) -> str | None:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    return None


def _kind_of_type(tm_type: Type) -> str | None:
    if isinstance(tm_type, (ClassRef, SetType)):
        return None
    if isinstance(tm_type, BoolType):
        return "bool"
    if isinstance(tm_type, EnumType):
        kinds = {_kind_of_value(value) for value in tm_type.values}
        return kinds.pop() if len(kinds) == 1 else None
    if tm_type.is_numeric:
        return "number"
    return "string" if tm_type.describe() == "string" else None


def lint_constraint(schema: "DatabaseSchema", constraint: Constraint) -> list[Diagnostic]:
    """Pass 1 for one constraint: every unresolvable name is a located error."""
    return _Linter(schema, constraint).run()


def lint_schema(schema: "DatabaseSchema") -> list[Diagnostic]:
    """Pass 1 over every constraint of the schema."""
    diagnostics: list[Diagnostic] = []
    for constraint in schema.all_constraints():
        diagnostics.extend(lint_constraint(schema, constraint))
    return diagnostics


# ---------------------------------------------------------------------------
# pass 2: per-constraint satisfiability
# ---------------------------------------------------------------------------


def _environment_for(
    schema: "DatabaseSchema", constraint: Constraint
) -> TypeEnvironment:
    if constraint.owner is not None and schema.has_class(constraint.owner):
        env = schema.type_environment(constraint.owner)
        assert isinstance(env, TypeEnvironment)
        return env
    return TypeEnvironment({}, dict(schema.constants))


def check_satisfiability(
    schema: "DatabaseSchema", constraint: Constraint
) -> list[Diagnostic]:
    """Pass 2 for one constraint: UNSAT / tautology / honest unknown."""
    formula = constraint.formula
    pos = formula.position()
    line, column = (pos if pos else (None, None))
    name = constraint.qualified_name
    solver = Solver(_environment_for(schema, constraint))
    try:
        if solver.is_unsatisfiable(formula):
            return [
                Diagnostic(
                    "error",
                    "unsatisfiable",
                    "constraint is unsatisfiable under the declared types: "
                    "every object (or state) violates it",
                    constraint=name,
                    line=line,
                    column=column,
                )
            ]
        if solver.is_unsatisfiable(negate(formula)):
            return [
                Diagnostic(
                    "info",
                    "tautology",
                    "constraint is a tautology under the declared types: "
                    "it can never reject anything (dead constraint)",
                    constraint=name,
                    line=line,
                    column=column,
                )
            ]
    except SolverError as exc:
        return [
            Diagnostic(
                "info",
                "analysis-skipped",
                f"satisfiability analysis skipped: {exc}",
                constraint=name,
                line=line,
                column=column,
            )
        ]
    if not in_solver_fragment(formula):
        return [
            Diagnostic(
                "info",
                "analysis-unknown",
                "satisfiable as far as the solver can see, but the formula "
                "contains opaque atoms (quantifier/aggregate/key/function) "
                "outside the solver's sound fragment",
                constraint=name,
                line=line,
                column=column,
            )
        ]
    return []


# ---------------------------------------------------------------------------
# pass 3: cross-constraint contradiction and subsumption
# ---------------------------------------------------------------------------


def _object_constraint_sets(
    schema: "DatabaseSchema",
) -> Iterator[tuple[str, list[Constraint]]]:
    """Per concrete class, its effective object constraints (own+inherited)."""
    for class_name in schema.classes:
        constraints = schema.effective_object_constraints(class_name)
        if constraints:
            yield class_name, constraints


def cross_constraint_diagnostics(schema: "DatabaseSchema") -> list[Diagnostic]:
    """Pass 3: the paper's ``Omega ⊨ false`` per class, plus subsumption.

    For each class, ``Omega`` is the conjunction of its effective object
    constraints under that class's typing.  Pairwise contradictions and a
    whole-``Omega`` joint contradiction are errors (conflicts are sound even
    over opaque atoms); ``C1 ⊨ C2`` subsumption is a warning.  Each finding
    is reported once, at the first class where it appears.
    """
    diagnostics: list[Diagnostic] = []
    conflict_seen: set[frozenset[str]] = set()
    subsume_seen: set[tuple[str, str]] = set()
    joint_seen: set[frozenset[str]] = set()
    for class_name, constraints in _object_constraint_sets(schema):
        if len(constraints) < 2:
            continue
        solver = Solver(schema.type_environment(class_name))
        pair_conflict_here = False
        skipped = False
        for i, first in enumerate(constraints):
            for second in constraints[i + 1 :]:
                names = frozenset({first.qualified_name, second.qualified_name})
                try:
                    conflicting = solver.conflicts(first.formula, second.formula)
                except SolverError:
                    skipped = True
                    continue
                if conflicting:
                    pair_conflict_here = True
                    if names not in conflict_seen:
                        conflict_seen.add(names)
                        diagnostics.append(
                            _pair_diagnostic(
                                "error",
                                "contradiction",
                                first,
                                second,
                                f"constraints contradict each other on "
                                f"class {class_name}: no object can "
                                f"satisfy both",
                            )
                        )
                    continue
                for premise, conclusion in ((first, second), (second, first)):
                    key = (premise.qualified_name, conclusion.qualified_name)
                    if key in subsume_seen:
                        continue
                    if premise.formula == conclusion.formula:
                        # Equal formulas subsume both ways; report once.
                        if (key[1], key[0]) in subsume_seen:
                            continue
                    try:
                        entailed = solver.entails(
                            premise.formula, conclusion.formula
                        )
                    except SolverError:
                        skipped = True
                        continue
                    if entailed:
                        subsume_seen.add(key)
                        diagnostics.append(
                            _pair_diagnostic(
                                "warn",
                                "redundant",
                                conclusion,
                                premise,
                                f"constraint is redundant on class "
                                f"{class_name}: implied by "
                                f"{premise.qualified_name}",
                            )
                        )
        if not pair_conflict_here and len(constraints) > 2:
            names = frozenset(c.qualified_name for c in constraints)
            try:
                jointly = names not in joint_seen and solver.conflicts(
                    *[c.formula for c in constraints]
                )
            except SolverError:
                skipped, jointly = True, False
            if jointly:
                joint_seen.add(names)
                diagnostics.append(
                    Diagnostic(
                        "error",
                        "joint-contradiction",
                        f"the effective object constraints of class "
                        f"{class_name} are jointly unsatisfiable: "
                        + ", ".join(sorted(names)),
                    )
                )
        if skipped:
            diagnostics.append(
                Diagnostic(
                    "info",
                    "analysis-skipped",
                    f"some cross-constraint checks were skipped on class "
                    f"{class_name} (formula outside the solver's reach)",
                )
            )
    return diagnostics


def _pair_diagnostic(
    severity: str,
    code: str,
    subject: Constraint,
    other: Constraint,
    message: str,
) -> Diagnostic:
    pos = subject.formula.position()
    return Diagnostic(
        severity,
        code,
        message,
        constraint=subject.qualified_name,
        line=pos[0] if pos else None,
        column=pos[1] if pos else None,
    )


def pairwise_conflicts(
    pairs: Iterable[tuple[Constraint, Constraint]],
    env: TypeEnvironment | None = None,
) -> list[Diagnostic]:
    """Conflict diagnostics for explicit constraint pairs.

    The integration workbench uses this across *merged* schemas: conformed
    local/remote constraints allocated to matched classes are checked for
    ``Omega ⊨ false`` before any data exists.  A conflict verdict is sound
    regardless of fragment (see module docstring)."""
    solver = Solver(env)
    diagnostics: list[Diagnostic] = []
    seen: set[frozenset[str]] = set()
    for left, right in pairs:
        names = frozenset({left.qualified_name, right.qualified_name})
        if len(names) < 2 or names in seen:
            continue
        try:
            conflicting = solver.conflicts(left.formula, right.formula)
        except SolverError:
            continue
        if conflicting:
            seen.add(names)
            diagnostics.append(
                _pair_diagnostic(
                    "error",
                    "contradiction",
                    left,
                    right,
                    f"constraints {left.qualified_name} and "
                    f"{right.qualified_name} cannot both hold: the merged "
                    f"schema is inconsistent before any data exists",
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# pass 4: redundancy pruning (feeds the enforcement hot path)
# ---------------------------------------------------------------------------


def prunable_constraints(schema: "DatabaseSchema") -> dict[Constraint, Constraint]:
    """Map each *safely prunable* object constraint to its keeper.

    A constraint ``C2`` may be skipped by incremental enforcement when some
    keeper ``C1`` guarantees that every rejection ``C2`` would have produced
    is still produced:

    * both are object constraints and ``C1 ⊨ C2`` under the typing of every
      class where ``C2`` is effective (subclasses may redeclare attribute
      types, so entailment is checked per class in the owner closure);
    * ``C1`` is declared on ``C2``'s owner or an ancestor of it, so it is
      effective on (at least) every object ``C2`` is effective on;
    * ``C2``'s read set is contained in ``C1``'s (attrs, foreign reads and
      extents, with ``C2`` not universal), so every delta that schedules a
      ``C2`` check also schedules the ``C1`` check on the same object;
    * ``C2`` cannot raise at evaluation time: in the solver fragment,
      dereference-free, and lint-clean (no errors *or* warnings) — so
      "``C2`` rejects" always means "``C2`` evaluates to false", which by
      entailment means ``C1`` evaluates to false on the same object.

    Keepers are chosen greedily in ``qualified_name`` order; a constraint
    already pruned cannot keep another (so an equivalent pair loses exactly
    one member).
    """
    from repro.engine.incremental import ConstraintDependencyIndex

    index = ConstraintDependencyIndex.for_schema(schema)
    candidates: list[Constraint] = [
        c
        for c in schema.all_constraints()
        if c.kind is ConstraintKind.OBJECT and c.owner is not None
    ]
    candidates.sort(key=lambda c: c.qualified_name)
    lint_clean: dict[Constraint, bool] = {
        c: not lint_constraint(schema, c) for c in candidates
    }
    pruned: dict[Constraint, Constraint] = {}
    for victim in candidates:
        entry = index.entry(victim)
        if (
            entry is None
            or entry.universal
            or not lint_clean[victim]
            or not in_solver_fragment(victim.formula)
            or not _dereference_free(victim.formula)
        ):
            continue
        assert victim.owner is not None
        closure = schema.subclass_closure(victim.owner)
        for keeper in candidates:
            if keeper is victim or keeper in pruned:
                continue
            if keeper.formula == victim.formula and (
                keeper.qualified_name > victim.qualified_name
            ):
                continue  # of an identical pair, the name-ordered first keeps
            assert keeper.owner is not None
            if not schema.is_subclass_of(victim.owner, keeper.owner):
                continue
            keeper_entry = index.entry(keeper)
            if keeper_entry is None:
                continue
            if not (
                entry.attrs <= keeper_entry.attrs
                and entry.foreign <= keeper_entry.foreign
                and entry.extents <= keeper_entry.extents
            ):
                continue
            try:
                entailed = all(
                    Solver(schema.type_environment(cls)).entails(
                        keeper.formula, victim.formula
                    )
                    for cls in closure
                )
            except SolverError:
                continue
            if entailed:
                pruned[victim] = keeper
                break
    return pruned


# ---------------------------------------------------------------------------
# the full pipeline
# ---------------------------------------------------------------------------


def analyze_schema(
    schema: "DatabaseSchema", include_info: bool = True
) -> AnalysisReport:
    """Run every pass over ``schema`` and collect the findings.

    Redundancies that :func:`prunable_constraints` would act on are the same
    subsumption warnings pass 3 reports; this function does not re-derive
    them.  ``include_info=False`` drops info-level diagnostics (tautologies,
    honest unknowns) for terse output; errors and warnings are always kept.
    """
    report = AnalysisReport(schema=schema.name)
    report.extend(lint_schema(schema))
    for constraint in schema.all_constraints():
        report.extend(check_satisfiability(schema, constraint))
    report.extend(cross_constraint_diagnostics(schema))
    if not include_info:
        report.diagnostics = [
            d for d in report.diagnostics if d.severity != "info"
        ]
    return report


def registration_errors(schema: "DatabaseSchema") -> list[Diagnostic]:
    """The error-level findings an ``analyze=True`` store rejects a schema on."""
    report = analyze_schema(schema, include_info=False)
    return report.errors()


def summarize(reports: Mapping[str, AnalysisReport]) -> dict[str, object]:
    """Aggregate multiple per-schema reports (CLI multi-file mode)."""
    return {
        "schemas": {name: report.to_dict() for name, report in reports.items()},
        "exit_code": max(
            (report.exit_code() for report in reports.values()), default=0
        ),
    }
