"""Structural classification of constraint formulas.

The paper distinguishes *object*, *class* and *database* constraints
(Section 2) and notes that design tools supporting proper classification
exist [FKS94].  In TM the classification is given by the specification
section a constraint appears in; this module derives it structurally instead,
which lets the reverse-engineering substrate classify constraints it extracts
from relational schemas, and lets the TM parser validate that a constraint is
declared in the right section.
"""

from __future__ import annotations

from repro.constraints.ast import (
    Aggregate,
    KeyConstraint,
    Node,
    Quantified,
)
from repro.constraints.model import ConstraintKind


def classify_formula(formula: Node) -> ConstraintKind:
    """Classify a formula into the paper's three constraint categories.

    * Quantification over named class extents → ``DATABASE`` (the formula
      relates objects from different classes, or constrains an extent against
      another).
    * ``key`` constraints or aggregates over ``self`` → ``CLASS`` (they
      constrain the extent of a single class).
    * Everything else → ``OBJECT`` (conditions on one object's state,
      implicitly universally quantified).

    An aggregate over a *named* class inside an otherwise object-level
    formula also makes the constraint a database constraint, since its truth
    depends on another class's extent.
    """
    has_class_level = False
    for node in formula.walk():
        if isinstance(node, Quantified):
            return ConstraintKind.DATABASE
        if isinstance(node, Aggregate):
            if node.collection != "self":
                return ConstraintKind.DATABASE
            has_class_level = True
        if isinstance(node, KeyConstraint):
            has_class_level = True
    if has_class_level:
        return ConstraintKind.CLASS
    return ConstraintKind.OBJECT
