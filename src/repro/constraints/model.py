"""The :class:`Constraint` wrapper: a named, classified formula.

A constraint carries the paper's classification (object / class / database),
the class it is declared on (``owner``), and — once the integration analysis
has run — its objectivity status (see :mod:`repro.integration.subjectivity`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.constraints.ast import Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    pass


class ConstraintKind(enum.Enum):
    """The three constraint categories distinguished by the paper.

    * ``OBJECT`` — constrains the state of a single (complex) object; read as
      implicitly universally quantified over the class extent.
    * ``CLASS`` — constrains a set of objects from a single class (aggregates,
      keys).
    * ``DATABASE`` — constrains objects from different classes.
    """

    OBJECT = "object"
    CLASS = "class"
    DATABASE = "database"


@dataclass(frozen=True)
class Constraint:
    """A named integrity constraint attached to a class or database.

    Attributes
    ----------
    name:
        The constraint label from the specification (``"oc1"``, ``"cc2"``,
        ``"db1"``).
    kind:
        Which of the paper's three categories the constraint belongs to.
    owner:
        The class the constraint is declared on; ``None`` for database
        constraints (which belong to the database as a whole).
    formula:
        The constraint body as an AST.
    database:
        The component database the constraint originates from, filled in when
        a schema is loaded.  Needed because objectivity/subjectivity is a
        judgement about a constraint *in the context of its database*.
    """

    name: str
    kind: ConstraintKind
    formula: Node
    owner: str | None = None
    database: str | None = None

    @property
    def qualified_name(self) -> str:
        """``Database.Class.name`` (pieces omitted when unknown)."""
        pieces = [p for p in (self.database, self.owner, self.name) if p]
        return ".".join(pieces)

    def with_formula(self, formula: Node) -> "Constraint":
        """A copy with a different body (used by conformation rewriting)."""
        return replace(self, formula=formula)

    def with_owner(self, owner: str | None) -> "Constraint":
        """A copy allocated to a different class (conformation subtask 1)."""
        return replace(self, owner=owner)

    def renamed(self, name: str) -> "Constraint":
        return replace(self, name=name)
