"""Wire protocol: length-prefixed frames, codecs, and typed error mapping.

Shared by the asyncio server (:mod:`repro.server.service`) and the blocking
client (:mod:`repro.client`), so both ends agree by construction.

**Frame layout.**  A frame is a 4-byte big-endian unsigned payload length
followed by exactly that many payload bytes::

    +----------------+----------------------------------------+
    | length (4B BE) | payload (length bytes, codec-encoded)  |
    +----------------+----------------------------------------+

The payload is one request or response *message* — a string-keyed mapping
— encoded by the connection's codec.  Frames larger than
:data:`MAX_FRAME_BYTES` are refused (:class:`~repro.errors.ProtocolError`)
before any allocation, so a corrupt length prefix cannot balloon memory.

**Codecs.**  ``json`` (always available, the default) or ``msgpack`` (used
only when the optional dependency is importable on *both* ends — the
client requests it in its ``hello`` and the server confirms or falls back
to ``json``).  Values inside object states ride the write-ahead log's
value codec (:func:`repro.engine.wal.encode_value`), so set-typed
attributes survive the wire exactly as they survive the log.

**Messages.**  Requests are ``{"id": n, "op": <OP_*>, ...}``; responses
are ``{"id": n, "ok": true, ...result fields...}`` or ``{"id": n, "ok":
false, "error": {...}}``.  The request id is echoed verbatim (the client
pipelines at most one request per connection today, but the id keeps the
protocol honest about matching).

**Errors.**  :func:`encode_error` / :func:`decode_error` map engine
exceptions to wire dicts and back to the *same exception classes*:
a remote :class:`~repro.errors.ConstraintViolation` re-raises with its
structured ``violations`` (real
:class:`~repro.engine.enforcement.Violation` instances, so
``constraint_names`` works identically), its subset-minimal conflict
cores, and its message; :class:`~repro.errors.StorePoisonedError`,
:class:`~repro.errors.SchemaError` and the rest re-raise as themselves.
Unknown kinds degrade to :class:`~repro.errors.ServerError` rather than
losing the failure.
"""

from __future__ import annotations

import json
import socket
import struct
from collections.abc import Mapping
from typing import Any, Protocol

from repro.engine.enforcement import Violation
from repro.engine.objects import DBObject
from repro.engine.wal import decode_state, decode_value, encode_value
from repro.errors import (
    AdmissionError,
    ConnectionLostError,
    ConstraintViolation,
    EngineError,
    EvaluationError,
    ParseError,
    ProtocolError,
    ReproError,
    SchemaError,
    ServerError,
    ShardingError,
    StorePoisonedError,
    TypeSystemError,
    UnknownClassError,
    UnknownObjectError,
)

try:  # optional accelerated codec; the protocol works without it
    import msgpack  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - the container has no msgpack
    msgpack = None

#: Hard ceiling on one frame's payload (checked before allocation).
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Protocol revision, echoed by ``hello`` so clients can detect skew.
PROTOCOL_VERSION = 1

_LENGTH = struct.Struct(">I")

# -- operations -------------------------------------------------------------

OP_HELLO = "hello"
OP_OPEN = "open"
OP_INSERT = "insert"
OP_UPDATE = "update"
OP_DELETE = "delete"
OP_GET = "get"
OP_EXTENT = "extent"
OP_QUERY = "query"
OP_TXN_BEGIN = "txn_begin"
OP_TXN_COMMIT = "txn_commit"
OP_TXN_ABORT = "txn_abort"
OP_SNAPSHOT_OPEN = "snapshot_open"
OP_SNAPSHOT_GET = "snapshot_get"
OP_SNAPSHOT_EXTENT = "snapshot_extent"
OP_SNAPSHOT_CLOSE = "snapshot_close"
OP_AUDIT = "audit"
OP_EXPLAIN = "explain"
OP_SET_CONSTANT = "set_constant"
OP_CHECKPOINT = "checkpoint"
OP_STATS = "stats"
OP_CLOSE = "close"


# -- codecs -----------------------------------------------------------------


def available_codecs() -> tuple[str, ...]:
    """Codec names this process can speak, preference-ordered."""
    if msgpack is not None:  # pragma: no cover - container has no msgpack
        return ("msgpack", "json")
    return ("json",)


def negotiate_codec(requested: str | None) -> str:
    """The codec the server answers a ``hello`` with: the requested one
    when this process speaks it, ``json`` otherwise (every peer must)."""
    if requested in available_codecs():
        return str(requested)
    return "json"


def encode_payload(message: Mapping[str, Any], codec: str) -> bytes:
    if codec == "json":
        return json.dumps(message, separators=(",", ":")).encode("utf-8")
    if codec == "msgpack" and msgpack is not None:  # pragma: no cover
        return bytes(msgpack.packb(message, use_bin_type=True))
    raise ProtocolError(f"unknown frame codec {codec!r}")


def decode_payload(payload: bytes, codec: str) -> dict[str, Any]:
    try:
        if codec == "json":
            message = json.loads(payload.decode("utf-8"))
        elif codec == "msgpack" and msgpack is not None:  # pragma: no cover
            message = msgpack.unpackb(payload, raw=False)
        else:
            raise ProtocolError(f"unknown frame codec {codec!r}")
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"undecodable {codec} frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a mapping, got {type(message).__name__}"
        )
    return message


# -- framing ----------------------------------------------------------------


def pack_frame(message: Mapping[str, Any], codec: str = "json") -> bytes:
    """One full wire frame: length prefix + encoded payload."""
    payload = encode_payload(message, codec)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def frame_length(prefix: bytes) -> int:
    """Payload length behind a 4-byte prefix, bounds-checked."""
    if len(prefix) != _LENGTH.size:
        raise ProtocolError(f"truncated frame length prefix ({len(prefix)}B)")
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return int(length)


def recv_frame(sock: socket.socket, codec: str = "json") -> dict[str, Any]:
    """Read one frame from a blocking socket (the client's read half).

    Raises :class:`~repro.errors.ConnectionLostError` on EOF at a frame
    boundary or mid-frame.
    """
    prefix = _recv_exact(sock, _LENGTH.size)
    return decode_payload(_recv_exact(sock, frame_length(prefix)), codec)


def send_frame(
    sock: socket.socket, message: Mapping[str, Any], codec: str = "json"
) -> None:
    """Write one frame to a blocking socket (the client's write half)."""
    try:
        sock.sendall(pack_frame(message, codec))
    except OSError as exc:
        raise ConnectionLostError(f"connection lost while sending: {exc}") from exc


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        try:
            chunk = sock.recv(count - len(chunks))
        except OSError as exc:
            raise ConnectionLostError(
                f"connection lost while receiving: {exc}"
            ) from exc
        if not chunk:
            raise ConnectionLostError(
                "connection closed by peer mid-frame"
                if chunks
                else "connection closed by peer"
            )
        chunks.extend(chunk)
    return bytes(chunks)


# -- object / violation / core codecs ---------------------------------------


def encode_object(obj: Any) -> dict[str, Any]:
    """A stored object (live or snapshot) as a wire dict."""
    return {
        "oid": obj.oid,
        "class": obj.class_name,
        "state": {
            name: encode_value(value) for name, value in obj.state.items()
        },
    }


def decode_object(payload: Mapping[str, Any]) -> DBObject:
    """The wire dict back as a :class:`DBObject` (the engine's own object
    shape, so remote results quack exactly like embedded ones)."""
    return DBObject(
        str(payload["oid"]),
        str(payload["class"]),
        decode_state(dict(payload["state"])),
    )


def encode_violation(violation: Any) -> dict[str, Any]:
    return {
        "constraint_name": violation.constraint_name,
        "detail": violation.detail,
    }


def decode_violation(payload: Mapping[str, Any]) -> Violation:
    return Violation(
        constraint_name=str(payload["constraint_name"]),
        detail=str(payload["detail"]),
    )


def encode_core(core: Any) -> dict[str, Any]:
    """A :class:`repro.engine.explain.ConflictCore` as a wire dict.  The
    evaluator-only fields (``trace``, ``constants``, ``constraint``) stay
    server-side; everything that participates in core equality crosses."""
    return {
        "constraint_name": core.constraint_name,
        "kind": core.kind,
        "members": [
            {
                "oid": member.oid,
                "class": member.class_name,
                "bindings": [list(binding) for binding in member.bindings],
                "reads": list(member.reads),
            }
            for member in core.members
        ],
        "verdict": core.verdict,
        "minimal": bool(core.minimal),
        "checks": int(core.checks),
    }


def decode_core(payload: Mapping[str, Any]) -> Any:
    """The wire dict back as a *real*
    :class:`repro.engine.explain.ConflictCore` with
    :class:`~repro.engine.explain.CoreMember` members — remote cores
    compare equal (``==``) to the embedded cores they were encoded from,
    and ``oids()`` / ``describe()`` behave identically."""
    from repro.engine.explain import ConflictCore, CoreMember

    return ConflictCore(
        constraint_name=str(payload["constraint_name"]),
        kind=str(payload["kind"]),
        members=tuple(
            CoreMember(
                oid=str(member["oid"]),
                class_name=str(member["class"]),
                bindings=tuple(
                    (str(var), str(oid))
                    for var, oid in member.get("bindings", ())
                ),
                reads=tuple(str(name) for name in member.get("reads", ())),
            )
            for member in payload["members"]
        ),
        verdict=str(payload.get("verdict", "falsy")),
        minimal=bool(payload.get("minimal", True)),
        checks=int(payload.get("checks", 0)),
    )


# -- error mapping ----------------------------------------------------------


class _ExceptionFactory(Protocol):
    def __call__(self, payload: Mapping[str, Any]) -> ReproError: ...


def encode_error(exc: BaseException) -> dict[str, Any]:
    """An exception as a wire dict: ``kind`` selects the class on decode,
    the rest carries the structured payload each kind defines."""
    encoded: dict[str, Any] = {
        "kind": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, ConstraintViolation):
        encoded["constraint_name"] = exc.constraint_name
        encoded["detail"] = exc.detail
        encoded["violations"] = [
            encode_violation(violation) for violation in exc.violations
        ]
        encoded["cores"] = [encode_core(core) for core in exc.cores]
    elif isinstance(exc, AdmissionError):
        encoded["retryable"] = exc.retryable
    elif isinstance(exc, ParseError):
        encoded["line"] = exc.line
        encoded["column"] = exc.column
    return encoded


def _decode_constraint_violation(payload: Mapping[str, Any]) -> ConstraintViolation:
    return ConstraintViolation(
        str(payload.get("constraint_name", "remote")),
        str(payload.get("detail", "")),
        violations=[
            decode_violation(violation)
            for violation in payload.get("violations", ())
        ],
        cores=[decode_core(core) for core in payload.get("cores", ())],
    )


def _decode_admission_error(payload: Mapping[str, Any]) -> AdmissionError:
    return AdmissionError(
        str(payload.get("message", "admission refused")),
        retryable=bool(payload.get("retryable", True)),
    )


def _decode_parse_error(payload: Mapping[str, Any]) -> ParseError:
    line = payload.get("line")
    column = payload.get("column")
    return ParseError(
        str(payload.get("message", "parse error")),
        line=int(line) if line is not None else None,
        column=int(column) if column is not None else None,
    )


def _plain(
    exception_class: type[ReproError],
) -> _ExceptionFactory:
    def build(payload: Mapping[str, Any]) -> ReproError:
        return exception_class(str(payload.get("message", "")))

    return build


_DECODERS: dict[str, _ExceptionFactory] = {
    "ConstraintViolation": _decode_constraint_violation,
    "AdmissionError": _decode_admission_error,
    "ParseError": _decode_parse_error,
    "StorePoisonedError": _plain(StorePoisonedError),
    "SchemaError": _plain(SchemaError),
    "ShardingError": _plain(ShardingError),
    "UnknownClassError": _plain(UnknownClassError),
    "UnknownObjectError": _plain(UnknownObjectError),
    "EvaluationError": _plain(EvaluationError),
    "TypeSystemError": _plain(TypeSystemError),
    "EngineError": _plain(EngineError),
    "ProtocolError": _plain(ProtocolError),
    "ConnectionLostError": _plain(ConnectionLostError),
    "ServerError": _plain(ServerError),
    "ReproError": _plain(ReproError),
}


def decode_error(payload: Mapping[str, Any]) -> ReproError:
    """The exception instance behind an error dict.

    Unknown kinds (a newer server, or a non-``ReproError`` crash mapped by
    the service layer) decode to :class:`~repro.errors.ServerError`
    carrying the kind in the message — the failure always surfaces, typed
    as precisely as this client knows how.
    """
    kind = str(payload.get("kind", "ServerError"))
    decoder = _DECODERS.get(kind)
    if decoder is not None:
        return decoder(payload)
    return ServerError(f"{kind}: {payload.get('message', '')}")


def error_response(request_id: Any, exc: BaseException) -> dict[str, Any]:
    """The response frame for a failed request."""
    return {"id": request_id, "ok": False, "error": encode_error(exc)}


def ok_response(request_id: Any, **fields: Any) -> dict[str, Any]:
    """The response frame for a successful request."""
    response: dict[str, Any] = {"id": request_id, "ok": True}
    response.update(fields)
    return response


def encode_constant(value: Any) -> Any:
    """Constants ride the WAL value codec (sets become ``{"$set": ...}``)."""
    return encode_value(value)


def decode_constant(value: Any) -> Any:
    return decode_value(value)
