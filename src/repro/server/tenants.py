"""Per-tenant stores: registration, leasing, idle eviction, shutdown.

The interoperation workbench becomes multi-tenant here: each tenant
registers its *own* TM schema — its own classes, constants and constraint
namespace — and gets its own store under the server root, fully isolated
from every other tenant's (separate extents, separate write-ahead log,
separate writer lock, separate group-commit batcher).  Tenants never share
schema objects, so one tenant's ``set_constant`` or conformation-style
schema change can never invalidate another's validation baseline.

A :class:`TenantRegistry` owns the mapping.  Connections *lease* a tenant
store (:meth:`TenantRegistry.lease` / :meth:`~TenantRegistry.release`);
the registry refcounts leases so a store stays open while any connection
uses it, and an eviction sweep closes stores that have sat unleased past
the idle timeout (checkpointing durable ones first, so the next open
recovers from a fresh snapshot instead of a long log replay).  Shutdown
checkpoints and closes every open store.

Store flavor per tenant: ``shards=None`` opens a plain
:class:`~repro.engine.store.ObjectStore`, ``shards=N`` a
:class:`~repro.engine.sharding.ShardedStore` — both behind
:class:`~repro.engine.api.StoreAPI`, so the connection layer never cares.
With a server ``root`` directory tenants are durable under
``<root>/<tenant>/``; without one they are in-memory (testing, benches).
"""

from __future__ import annotations

import re
import threading
import time
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.engine.api import StoreAPI
from repro.engine.sharding import ShardedStore
from repro.engine.store import ObjectStore
from repro.errors import EngineError, ProtocolError, SchemaError

#: Tenant ids become directory names: keep them boring and unambiguous.
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


def check_tenant_name(tenant: str) -> str:
    """Validate a tenant id (raises :class:`ProtocolError`); returns it."""
    if not isinstance(tenant, str) or not _TENANT_NAME.match(tenant):
        raise ProtocolError(
            f"invalid tenant id {tenant!r}: expected 1-64 characters from "
            "[A-Za-z0-9_.-], not starting with a separator"
        )
    return tenant


@dataclass
class _TenantRecord:
    store: StoreAPI
    database: str
    flavor: str  # "object" | "sharded"
    leases: int = 0
    #: ``time.monotonic()`` of the last release; meaningful at leases == 0.
    released_at: float = field(default_factory=time.monotonic)


class TenantRegistry:
    """Thread-safe tenant id → open store mapping (see module docstring).

    All methods may be called from the event loop or from connection
    worker threads; one coarse lock serializes registry mutations (store
    *operations* never run under it — only open/close/bookkeeping).
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        sync: bool = False,
        checkpoint_every: int = 10_000,
    ):
        self.root = Path(root) if root is not None else None
        self.sync = sync
        self.checkpoint_every = checkpoint_every
        self._records: dict[str, _TenantRecord] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- leasing -----------------------------------------------------------

    def lease(
        self,
        tenant: str,
        schema_source: str | None = None,
        shards: int | None = None,
        spread: Iterable[str] = (),
    ) -> StoreAPI:
        """Open (or join) the tenant's store and take a lease on it.

        First open registers the tenant: in-memory tenants require
        ``schema_source``; durable tenants recover an existing
        ``<root>/<tenant>/`` directory without one.  Later opens may repeat
        the schema (ignored if it names the same database) but cannot
        re-register a different one — a tenant's constraint namespace is
        fixed by its first registration for as long as the store is open.
        """
        check_tenant_name(tenant)
        with self._lock:
            if self._closed:
                raise EngineError("the tenant registry is shut down")
            record = self._records.get(tenant)
            if record is None:
                record = self._open(tenant, schema_source, shards, spread)
                self._records[tenant] = record
            else:
                self._check_compatible(tenant, record, schema_source, shards)
            record.leases += 1
            return record.store

    def release(self, tenant: str) -> None:
        """Drop one lease; the store stays open for the idle sweep."""
        with self._lock:
            record = self._records.get(tenant)
            if record is None:
                return
            record.leases = max(0, record.leases - 1)
            if record.leases == 0:
                record.released_at = time.monotonic()

    def _open(
        self,
        tenant: str,
        schema_source: str | None,
        shards: int | None,
        spread: Iterable[str],
    ) -> _TenantRecord:
        from repro.tm.parser import parse_database

        schema = (
            parse_database(schema_source) if schema_source is not None else None
        )
        store: StoreAPI
        if self.root is None:
            if schema is None:
                raise SchemaError(
                    f"tenant {tenant!r} is not registered: the first open of "
                    "an in-memory tenant must carry a schema"
                )
            if shards is None:
                store = ObjectStore(schema)
            else:
                store = ShardedStore(schema, shards, spread=spread)
        else:
            directory = self.root / tenant
            if schema is None and not directory.exists():
                raise SchemaError(
                    f"tenant {tenant!r} is not registered: no durable state "
                    f"under {str(directory)!r} and no schema in the open "
                    "request"
                )
            if shards is None:
                store = ObjectStore.open(
                    directory,
                    schema,
                    sync=self.sync,
                    checkpoint_every=self.checkpoint_every,
                )
            else:
                store = ShardedStore.open(
                    directory,
                    schema,
                    shards,
                    spread=spread,
                    sync=self.sync,
                    checkpoint_every=self.checkpoint_every,
                )
        return _TenantRecord(
            store=store,
            database=store.schema.name,  # type: ignore[attr-defined]
            flavor="object" if shards is None else "sharded",
        )

    def _check_compatible(
        self,
        tenant: str,
        record: _TenantRecord,
        schema_source: str | None,
        shards: int | None,
    ) -> None:
        """A re-open may repeat the registration, never change it."""
        if shards is not None and record.flavor != "sharded":
            raise SchemaError(
                f"tenant {tenant!r} is open as a plain store; cannot re-open "
                f"it sharded"
            )
        if schema_source is not None:
            from repro.tm.parser import parse_database

            offered = parse_database(schema_source)
            if offered.name != record.database:
                raise SchemaError(
                    f"tenant {tenant!r} serves database "
                    f"{record.database!r}; cannot re-register it as "
                    f"{offered.name!r} while open"
                )

    # -- lifecycle ---------------------------------------------------------

    def evict_idle(self, idle_timeout: float) -> list[str]:
        """Close stores with no leases that have idled past the timeout.

        Durable stores are checkpointed first (best-effort — a poisoned
        store cannot checkpoint but must still close and evict), so the
        next open recovers from a fresh snapshot.  Returns the evicted
        tenant ids.
        """
        now = time.monotonic()
        evicted: list[str] = []
        with self._lock:
            for tenant, record in list(self._records.items()):
                if record.leases > 0 or now - record.released_at < idle_timeout:
                    continue
                self._checkpoint_and_close(record)
                del self._records[tenant]
                evicted.append(tenant)
        return evicted

    def shutdown(self) -> None:
        """Checkpoint and close every open tenant store (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for record in self._records.values():
                self._checkpoint_and_close(record)
            self._records.clear()

    @staticmethod
    def _checkpoint_and_close(record: _TenantRecord) -> None:
        store = record.store
        if store.durable:
            try:
                store.checkpoint()
            except Exception:
                # Closing must win: a poisoned or mid-fault store cannot
                # checkpoint, but its durable prefix is already safe.
                pass
        try:
            store.close()
        except Exception:
            pass

    # -- observability -----------------------------------------------------

    def open_tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._records)

    def stats(self) -> list[dict[str, Any]]:
        """Per-tenant counters for the ``stats`` op and the CLI."""
        entries: list[dict[str, Any]] = []
        with self._lock:
            records = list(self._records.items())
        for tenant, record in sorted(records):
            entry: dict[str, Any] = {
                "tenant": tenant,
                "database": record.database,
                "flavor": record.flavor,
                "leases": record.leases,
                "objects": len(record.store),
                "durable": record.store.durable,
            }
            entry.update(_wal_stats(record.store))
            entries.append(entry)
        return entries


def _wal_stats(store: StoreAPI) -> dict[str, Any]:
    """Group-commit telemetry summed over the store's write-ahead logs
    (one for a plain store, one per core for a sharded one)."""
    logs = []
    wal = getattr(store, "wal", None)
    if wal is not None:
        logs.append(wal)
    for core in getattr(store, "cores", ()):
        if core.wal is not None:
            logs.append(core.wal)
    if not logs:
        return {}
    fsyncs = sum(log.fsyncs for log in logs)
    commits = sum(log.sync_commits for log in logs)
    return {
        "fsyncs": fsyncs,
        "sync_commits": commits,
        "fsyncs_per_commit": (fsyncs / commits) if commits else 0.0,
    }
