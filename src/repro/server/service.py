"""The asyncio network front-end: ``ReproServer`` and its connections.

**Threading model.**  The stores are blocking, single-writer engines; the
event loop must never run one of their operations directly.  Every
connection therefore gets a *dedicated one-thread executor*: each request
is decoded on the loop, executed on the connection's pinned worker thread,
and answered on the loop.  Pinning buys two properties at once:

* **Transaction affinity.** An interactive transaction holds the store's
  reentrant writer lock, which is owned by the thread that entered it.
  With one immortal worker per connection, every op of a wire transaction
  runs on the thread that opened it — the bracket behaves exactly like an
  embedded ``with store.transaction():`` block.
* **Group-commit funneling.** Concurrent commits from different
  connections run on different threads, so they land in the write-ahead
  log's group-commit window together: one worker pays the fsync, the
  rest ride it (``commit_flush`` tickets / ``wait_durable``).  Serving
  16 connections costs ~the fsync rate of serving one.

**Admission control.**  ``max_connections`` is enforced at accept — the
surplus connection receives a *retryable*
:class:`~repro.errors.AdmissionError` frame and is closed, so clients can
back off and retry rather than hang.  ``max_inflight`` is a global
semaphore bounding concurrently executing store operations; connections
holding an open transaction bypass it (their ops must be able to reach
the worker or the writer lock could never be released — the cap would
deadlock against itself).

**Lifecycle.**  Disconnects roll open transactions back on the
connection's own worker (the lock owner), close its snapshots and release
its tenant lease — the store survives un-poisoned.  Idle tenants are
evicted on a background sweep; :meth:`ReproServer.aclose` stops accepting,
drains connections, and checkpoints + closes every tenant store.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import threading
from collections.abc import AsyncIterator, Callable, Coroutine
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.engine.api import SnapshotAPI, StoreAPI
from repro.errors import AdmissionError, ProtocolError, ReproError
from repro.server import protocol
from repro.server.tenants import TenantRegistry

__all__ = ["ServerConfig", "ReproServer", "ServerThread"]


@dataclass
class ServerConfig:
    """Tuning knobs for :class:`ReproServer`."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read the bound one off ``server.address``.
    port: int = 0
    #: Directory for durable tenant stores; ``None`` keeps tenants in memory.
    root: str | Path | None = None
    #: ``True`` fsyncs every commit; ``False`` uses group commit (default).
    sync: bool = False
    checkpoint_every: int = 10_000
    #: Accept at most this many concurrent connections; the surplus is
    #: rejected with a retryable admission error frame.
    max_connections: int = 64
    #: At most this many store operations execute concurrently (0 = off).
    max_inflight: int = 32
    #: Close tenant stores unleased for this long (0 disables the sweep).
    idle_timeout: float = 300.0


class ReproServer:
    """Asyncio TCP server speaking the :mod:`repro.server.protocol`."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.registry = TenantRegistry(
            self.config.root,
            sync=self.config.sync,
            checkpoint_every=self.config.checkpoint_every,
        )
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[_Connection] = set()
        self._inflight: asyncio.Semaphore | None = None
        self._stop_event: asyncio.Event | None = None
        self._evictor: asyncio.Task[None] | None = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._stop_event = asyncio.Event()
        if self.config.max_inflight > 0:
            self._inflight = asyncio.Semaphore(self.config.max_inflight)
        self._server = await asyncio.start_server(
            self._accept, self.config.host, self.config.port
        )
        if self.config.idle_timeout > 0:
            self._evictor = asyncio.create_task(self._evict_loop())
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server not started")
        sockname = self._server.sockets[0].getsockname()
        return str(sockname[0]), int(sockname[1])

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to return (threadsafe via
        ``loop.call_soon_threadsafe``)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_stop`, then close cleanly."""
        assert self._stop_event is not None, "call start() first"
        try:
            await self._stop_event.wait()
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, drain connections, checkpoint + close tenants."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._evictor is not None:
            self._evictor.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._evictor
        tasks = [conn.task for conn in list(self._connections) if conn.task]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        # Workers have drained their rollback/cleanup queues by the time
        # their tasks finish, so the registry can close stores safely.
        self.registry.shutdown()

    async def _evict_loop(self) -> None:
        interval = max(0.02, self.config.idle_timeout / 5.0)
        while True:
            await asyncio.sleep(interval)
            await asyncio.get_running_loop().run_in_executor(
                None, self.registry.evict_idle, self.config.idle_timeout
            )

    # -- accepting ---------------------------------------------------------

    @property
    def connection_count(self) -> int:
        return len(self._connections)

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._closed or len(self._connections) >= self.config.max_connections:
            reason = (
                "server is shutting down"
                if self._closed
                else (
                    f"server at its {self.config.max_connections}-connection "
                    "limit; retry after backoff"
                )
            )
            with contextlib.suppress(Exception):
                writer.write(
                    protocol.pack_frame(
                        protocol.error_response(
                            None, AdmissionError(reason, retryable=True)
                        )
                    )
                )
                await writer.drain()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            return
        connection = _Connection(self, reader, writer)
        self._connections.add(connection)
        connection.task = asyncio.current_task()
        try:
            await connection.run()
        except asyncio.CancelledError:
            # Shutdown cancels connection tasks; run()'s finally has
            # already rolled back and released — end the task quietly.
            pass
        finally:
            self._connections.discard(connection)


class _ClientAbort(Exception):
    """Sentinel fed to ``Transaction.__exit__`` to force a rollback."""


class _Connection:
    """One client connection: codec state, leased store, worker thread,
    open transaction stack, open snapshots."""

    def __init__(
        self,
        server: ReproServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.task: asyncio.Task[None] | None = None
        self.codec = "json"
        #: Set by ``hello``: the negotiated codec takes effect only after
        #: the hello response itself has gone out in the old one.
        self._pending_codec: str | None = None
        self.tenant: str | None = None
        self.store: StoreAPI | None = None
        self._txns: list[Any] = []
        self._snapshots: dict[str, SnapshotAPI] = {}
        self._next_snapshot = 0
        # One immortal worker thread per connection: transaction affinity
        # plus cross-connection group-commit coalescing (module docstring).
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-conn"
        )

    # -- main loop ---------------------------------------------------------

    async def run(self) -> None:
        try:
            while True:
                try:
                    prefix = await self.reader.readexactly(
                        protocol._LENGTH.size
                    )
                    payload = await self.reader.readexactly(
                        protocol.frame_length(prefix)
                    )
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break  # peer went away; cleanup rolls everything back
                if not await self._serve_one(payload):
                    break
        finally:
            await self._cleanup()

    async def _serve_one(self, payload: bytes) -> bool:
        """Decode, dispatch and answer one frame; False ends the session."""
        request_id: Any = None
        try:
            message = protocol.decode_payload(payload, self.codec)
            request_id = message.get("id")
            op = message.get("op")
            handler = _HANDLERS.get(str(op))
            if handler is None:
                raise ProtocolError(f"unknown operation {op!r}")
            response, keep_going = await handler(self, message)
            await self._send(protocol.ok_response(request_id, **response))
            if self._pending_codec is not None:
                self.codec = self._pending_codec
                self._pending_codec = None
            return keep_going
        except ProtocolError as exc:
            # The frame stream itself is suspect: answer and hang up.
            with contextlib.suppress(Exception):
                await self._send(protocol.error_response(request_id, exc))
            return False
        except ReproError as exc:
            return await self._send_error(request_id, exc)
        except Exception as exc:  # engine invariant failure — stay typed
            return await self._send_error(request_id, exc)

    async def _send(self, message: dict[str, Any]) -> None:
        self.writer.write(protocol.pack_frame(message, self.codec))
        await self.writer.drain()

    async def _send_error(self, request_id: Any, exc: BaseException) -> bool:
        # Build the frame *before* the suppressed send: an exception whose
        # structured payload cannot be encoded must still produce an
        # answer (a swallowed response would hang the client forever).
        try:
            frame = protocol.error_response(request_id, exc)
            protocol.encode_payload(frame, self.codec)
        except Exception as encode_exc:
            frame = protocol.error_response(
                request_id,
                ReproError(
                    f"{type(exc).__name__}: {exc} "
                    f"(structured payload not encodable: {encode_exc})"
                ),
            )
        with contextlib.suppress(Exception):
            await self._send(frame)
        return True

    # -- worker + admission ------------------------------------------------

    async def _run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run a blocking store call on this connection's pinned worker,
        under the global in-flight cap unless a transaction is open."""
        loop = asyncio.get_running_loop()
        call = functools.partial(fn, *args) if args else fn
        async with self._admit():
            return await loop.run_in_executor(self._executor, call)

    @contextlib.asynccontextmanager
    async def _admit(self) -> AsyncIterator[None]:
        inflight = self.server._inflight
        if inflight is None or self._txns:
            # Transaction holders must always reach their worker: their
            # commit releases the writer lock other admitted ops block on.
            yield
            return
        async with inflight:
            yield

    def _require_store(self) -> StoreAPI:
        if self.store is None:
            raise ProtocolError(
                "no tenant opened on this connection (send an 'open' first)"
            )
        return self.store

    # -- cleanup -----------------------------------------------------------

    async def _cleanup(self) -> None:
        """Roll back, release, retire the worker.  Runs on the loop; the
        blocking pieces run as the worker's final jobs so lock affinity
        holds to the very end."""
        future = self._executor.submit(self._cleanup_sync)
        self._executor.shutdown(wait=False)
        with contextlib.suppress(Exception):
            await asyncio.shield(asyncio.wrap_future(future))
        self.writer.close()
        with contextlib.suppress(Exception):
            await self.writer.wait_closed()

    def _cleanup_sync(self) -> None:
        """Final worker job: abort open transactions innermost-first (the
        worker owns the writer lock, so rollback cannot be done anywhere
        else), close snapshots, release the tenant lease."""
        while self._txns:
            txn = self._txns.pop()
            with contextlib.suppress(Exception):
                txn.__exit__(_ClientAbort, _ClientAbort("connection lost"), None)
        for snapshot in self._snapshots.values():
            with contextlib.suppress(Exception):
                snapshot.close()
        self._snapshots.clear()
        if self.tenant is not None:
            self.server.registry.release(self.tenant)
            self.tenant = None
            self.store = None


# -- operation handlers ------------------------------------------------------
#
# Each handler returns ``(response_fields, keep_going)``.  Store access goes
# through ``conn._run`` so it lands on the connection's worker thread.


async def _op_hello(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    codec = protocol.negotiate_codec(message.get("codec"))
    # The hello exchange itself rides the current codec (json on a fresh
    # connection); _serve_one applies the switch after answering.
    conn._pending_codec = codec
    return {
        "server": "repro",
        "version": protocol.PROTOCOL_VERSION,
        "codec": codec,
        "codecs": list(protocol.available_codecs()),
    }, True


async def _op_open(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    if conn._txns:
        raise ProtocolError("cannot switch tenants inside a transaction")
    tenant = str(message.get("tenant", ""))
    schema = message.get("schema")
    shards = message.get("shards")
    spread = tuple(message.get("spread") or ())
    registry = conn.server.registry
    store = await conn._run(
        registry.lease,
        tenant,
        str(schema) if schema is not None else None,
        int(shards) if shards is not None else None,
        spread,
    )
    previous = conn.tenant
    conn.tenant, conn.store = tenant, store
    if previous is not None:
        registry.release(previous)
    return {
        "tenant": tenant,
        "database": store.schema.name,  # type: ignore[attr-defined]
        "durable": store.durable,
        "objects": len(store),
    }, True


async def _op_insert(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    from repro.engine.wal import decode_state

    store = conn._require_store()
    state = decode_state(dict(message.get("state") or {}))
    obj = await conn._run(store.insert, str(message["class"]), state)
    return {"object": protocol.encode_object(obj)}, True


async def _op_update(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    from repro.engine.wal import decode_state

    store = conn._require_store()
    changes = decode_state(dict(message.get("changes") or {}))
    obj = await conn._run(
        functools.partial(store.update, str(message["oid"]), **changes)
    )
    return {"object": protocol.encode_object(obj)}, True


async def _op_delete(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    store = conn._require_store()
    await conn._run(store.delete, str(message["oid"]))
    return {}, True


async def _op_get(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    store = conn._require_store()
    obj = await conn._run(store.get, str(message["oid"]))
    return {"object": protocol.encode_object(obj)}, True


async def _op_extent(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    store = conn._require_store()
    class_name = message.get("class")
    if class_name is None:
        # A null class asks for every object in the store (the client's
        # ``objects()``); order matches the embedded iteration order.
        objects = await conn._run(lambda: list(store.objects()))
    else:
        objects = await conn._run(
            store.extent, str(class_name), bool(message.get("deep", True))
        )
    return {"objects": [protocol.encode_object(obj) for obj in objects]}, True


async def _op_query(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    """Server-side filtered extent: attribute-equality ``where`` plus an
    optional ``limit`` — enough to keep chatty scans off the wire."""
    store = conn._require_store()
    class_name = str(message["class"])
    deep = bool(message.get("deep", True))
    where = {
        str(name): protocol.decode_constant(value)
        for name, value in dict(message.get("where") or {}).items()
    }
    limit = message.get("limit")

    def scan() -> list[Any]:
        matches = []
        for obj in store.extent(class_name, deep):
            if all(obj.state.get(name) == value for name, value in where.items()):
                matches.append(obj)
                if limit is not None and len(matches) >= int(limit):
                    break
        return matches

    objects = await conn._run(scan)
    return {"objects": [protocol.encode_object(obj) for obj in objects]}, True


async def _op_txn_begin(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    store = conn._require_store()
    validate = bool(message.get("validate", True))

    def begin() -> Any:
        txn = store.transaction(validate)
        txn.__enter__()
        return txn

    conn._txns.append(await conn._run(begin))
    return {"depth": len(conn._txns)}, True


async def _op_txn_commit(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    if not conn._txns:
        raise ProtocolError("commit without an open transaction")
    # Pop before committing: the bracket is consumed either way (a failed
    # commit validation has already rolled the transaction back).
    txn = conn._txns.pop()
    await conn._run(txn.__exit__, None, None, None)
    return {"depth": len(conn._txns)}, True


async def _op_txn_abort(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    if not conn._txns:
        raise ProtocolError("abort without an open transaction")
    txn = conn._txns.pop()

    def abort() -> None:
        txn.__exit__(_ClientAbort, _ClientAbort("client abort"), None)

    await conn._run(abort)
    return {"depth": len(conn._txns)}, True


async def _op_snapshot_open(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    store = conn._require_store()
    snapshot = await conn._run(store.snapshot)
    conn._next_snapshot += 1
    handle = f"s{conn._next_snapshot}"
    conn._snapshots[handle] = snapshot
    return {"snapshot": handle, "objects": len(snapshot)}, True


def _snapshot_for(conn: _Connection, message: dict[str, Any]) -> SnapshotAPI:
    handle = str(message.get("snapshot", ""))
    snapshot = conn._snapshots.get(handle)
    if snapshot is None:
        raise ProtocolError(f"unknown snapshot handle {handle!r}")
    return snapshot


async def _op_snapshot_get(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    snapshot = _snapshot_for(conn, message)
    obj = await conn._run(snapshot.get, str(message["oid"]))
    return {"object": protocol.encode_object(obj)}, True


async def _op_snapshot_extent(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    snapshot = _snapshot_for(conn, message)
    class_name = message.get("class")
    if class_name is None:
        objects = await conn._run(lambda: list(snapshot.objects()))
    else:
        objects = await conn._run(
            snapshot.extent,
            str(class_name),
            bool(message.get("deep", True)),
        )
    return {"objects": [protocol.encode_object(obj) for obj in objects]}, True


async def _op_snapshot_close(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    handle = str(message.get("snapshot", ""))
    snapshot = conn._snapshots.pop(handle, None)
    if snapshot is not None:
        await conn._run(snapshot.close)
    return {}, True


async def _op_audit(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    store = conn._require_store()
    violations = await conn._run(store.audit)
    return {
        "violations": [protocol.encode_violation(v) for v in violations]
    }, True


async def _op_explain(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    store = conn._require_store()
    cores = await conn._run(store.explain_violations)
    return {"cores": [protocol.encode_core(core) for core in cores]}, True


async def _op_set_constant(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    store = conn._require_store()
    value = protocol.decode_constant(message.get("value"))
    await conn._run(store.set_constant, str(message["name"]), value)
    return {}, True


async def _op_checkpoint(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    store = conn._require_store()
    await conn._run(store.checkpoint)
    return {}, True


async def _op_stats(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    registry = conn.server.registry
    tenants = await conn._run(registry.stats)
    mine = next(
        (entry for entry in tenants if entry["tenant"] == conn.tenant), None
    )
    return {
        "connections": conn.server.connection_count,
        "max_connections": conn.server.config.max_connections,
        "max_inflight": conn.server.config.max_inflight,
        "tenants": tenants,
        "tenant": mine,
    }, True


async def _op_close(
    conn: _Connection, message: dict[str, Any]
) -> tuple[dict[str, Any], bool]:
    return {}, False


_Handler = Callable[
    [_Connection, dict[str, Any]],
    Coroutine[Any, Any, tuple[dict[str, Any], bool]],
]

_HANDLERS: dict[str, _Handler] = {
    protocol.OP_HELLO: _op_hello,
    protocol.OP_OPEN: _op_open,
    protocol.OP_INSERT: _op_insert,
    protocol.OP_UPDATE: _op_update,
    protocol.OP_DELETE: _op_delete,
    protocol.OP_GET: _op_get,
    protocol.OP_EXTENT: _op_extent,
    protocol.OP_QUERY: _op_query,
    protocol.OP_TXN_BEGIN: _op_txn_begin,
    protocol.OP_TXN_COMMIT: _op_txn_commit,
    protocol.OP_TXN_ABORT: _op_txn_abort,
    protocol.OP_SNAPSHOT_OPEN: _op_snapshot_open,
    protocol.OP_SNAPSHOT_GET: _op_snapshot_get,
    protocol.OP_SNAPSHOT_EXTENT: _op_snapshot_extent,
    protocol.OP_SNAPSHOT_CLOSE: _op_snapshot_close,
    protocol.OP_AUDIT: _op_audit,
    protocol.OP_EXPLAIN: _op_explain,
    protocol.OP_SET_CONSTANT: _op_set_constant,
    protocol.OP_CHECKPOINT: _op_checkpoint,
    protocol.OP_STATS: _op_stats,
    protocol.OP_CLOSE: _op_close,
}


# -- running a server from synchronous code ----------------------------------


class ServerThread:
    """A :class:`ReproServer` on its own event-loop thread.

    The synchronous face the CLI, the tests and the benchmarks use::

        with ServerThread(ServerConfig(root=path)) as address:
            store = repro.client.connect(address)

    ``start()`` returns only once the socket is bound (or raises the
    startup failure); ``stop()`` performs the full clean shutdown —
    connections drained, open transactions rolled back, tenant stores
    checkpointed and closed — and joins the thread.
    """

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.server: ReproServer | None = None
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._main, name="repro-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        assert self.address is not None
        return self.address

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self.server is not None:
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join()
        self._thread = None

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = ReproServer(self.config)
        try:
            self.address = loop.run_until_complete(server.start())
        except BaseException as exc:  # surface bind/config failures
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self.server = server
        self._loop = loop
        self._started.set()
        try:
            loop.run_until_complete(server.serve_forever())
        finally:
            self._loop = None
            loop.close()
