"""The network front-end: serve stores to remote clients over TCP.

* :mod:`~repro.server.protocol` — the wire protocol both ends share:
  length-prefixed frames, json/msgpack codecs, object/violation/conflict-
  core codecs, and the typed error mapping that re-raises engine
  exceptions client-side as their original classes;
* :mod:`~repro.server.tenants` — the multi-tenant registry: per-tenant
  schemas and stores (plain or sharded, in-memory or durable), lease
  refcounting, idle eviction, shutdown checkpoints;
* :mod:`~repro.server.service` — the asyncio server: per-connection
  worker threads (transaction affinity + cross-connection group-commit
  funneling), admission control, and clean lifecycle.

The blocking counterpart is :mod:`repro.client`, whose
:class:`~repro.client.RemoteStore` satisfies the same
:class:`~repro.engine.api.StoreAPI` as the embedded stores.
"""

from repro.server.protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION
from repro.server.service import ReproServer, ServerConfig, ServerThread
from repro.server.tenants import TenantRegistry

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ReproServer",
    "ServerConfig",
    "ServerThread",
    "TenantRegistry",
]
