"""Seeding value-set domains from TM types.

The solver starts every attribute path at the domain its declared type allows
(``rating : 1..5`` starts at the integral interval ``[1, 5]``) and narrows it
as constraint atoms are propagated.
"""

from __future__ import annotations

from repro.domains.discrete import AtomSet
from repro.domains.valueset import (
    DiscreteSet,
    NumericSet,
    TopSet,
    ValueSet,
    boolean_set,
    numeric_range,
)
from repro.types.primitives import (
    BoolType,
    ClassRef,
    EnumType,
    IntType,
    RangeType,
    RealType,
    SetType,
    StringType,
    Type,
)


def type_to_valueset(tm_type: Type | None) -> ValueSet:
    """The full domain of ``tm_type`` as a :class:`ValueSet`.

    Unknown or uninterpreted types (``None``, class references, power sets)
    yield the unconstrained :class:`TopSet`.
    """
    if tm_type is None:
        return TopSet()
    if isinstance(tm_type, RangeType):
        return numeric_range(tm_type.low, tm_type.high, integral=True)
    if isinstance(tm_type, IntType):
        return NumericSet.all(integral=True)
    if isinstance(tm_type, RealType):
        return NumericSet.all()
    if isinstance(tm_type, BoolType):
        return boolean_set()
    if isinstance(tm_type, StringType):
        return DiscreteSet(AtomSet.top())
    if isinstance(tm_type, EnumType):
        if tm_type.is_numeric:
            return NumericSet.points(tm_type.values)
        return DiscreteSet(AtomSet(tm_type.values))
    if isinstance(tm_type, (SetType, ClassRef)):
        return TopSet()
    return TopSet()
