"""Finite and co-finite sets of atomic values.

Strings (publisher names, titles), booleans and other unordered values are
tracked as :class:`AtomSet`: either a finite set of admitted values or the
complement of a finite set over an implicitly infinite universe.  When the
universe is actually finite (booleans, named constant sets), pass it at
construction and complements normalise back to finite sets.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any


class AtomSet:
    """A finite (``complemented=False``) or co-finite set of atoms.

    Instances are immutable.  Unless ``universe`` is given, the universe is
    assumed infinite, so a co-finite set is never empty and never a subset of
    a finite one.
    """

    __slots__ = ("values", "complemented", "universe")

    def __init__(
        self,
        values: Iterable[Any] = (),
        complemented: bool = False,
        universe: frozenset[Any] | None = None,
    ):
        values = frozenset(values)
        if universe is not None:
            if not values <= universe:
                values = values & universe
            if complemented:
                values = universe - values
                complemented = False
        self.values: frozenset[Any] = values
        self.complemented = complemented
        self.universe = universe

    # -- constructors --------------------------------------------------------

    @staticmethod
    def of(*values: Any) -> "AtomSet":
        return AtomSet(values)

    @staticmethod
    def top(universe: frozenset[Any] | None = None) -> "AtomSet":
        """The full universe (co-finite complement of nothing)."""
        return AtomSet((), complemented=True, universe=universe)

    @staticmethod
    def empty() -> "AtomSet":
        return AtomSet(())

    # -- queries ---------------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.complemented and not self.values

    def is_top(self) -> bool:
        if self.complemented:
            return not self.values
        return self.universe is not None and self.values == self.universe

    def contains(self, value: Any) -> bool:
        if self.complemented:
            return value not in self.values
        return value in self.values

    def is_finite(self) -> bool:
        return not self.complemented

    def finite_values(self) -> frozenset[Any] | None:
        return None if self.complemented else self.values

    # -- set algebra -----------------------------------------------------------

    def _merged_universe(self, other: "AtomSet") -> frozenset[Any] | None:
        if self.universe is not None:
            return self.universe
        return other.universe

    def intersect(self, other: "AtomSet") -> "AtomSet":
        universe = self._merged_universe(other)
        if not self.complemented and not other.complemented:
            return AtomSet(self.values & other.values, universe=universe)
        if not self.complemented:
            return AtomSet(self.values - other.values, universe=universe)
        if not other.complemented:
            return AtomSet(other.values - self.values, universe=universe)
        return AtomSet(self.values | other.values, complemented=True, universe=universe)

    def union(self, other: "AtomSet") -> "AtomSet":
        universe = self._merged_universe(other)
        if not self.complemented and not other.complemented:
            return AtomSet(self.values | other.values, universe=universe)
        if self.complemented and other.complemented:
            return AtomSet(self.values & other.values, complemented=True, universe=universe)
        finite, cofinite = (self, other) if not self.complemented else (other, self)
        return AtomSet(cofinite.values - finite.values, complemented=True, universe=universe)

    def complement(self) -> "AtomSet":
        return AtomSet(self.values, complemented=not self.complemented, universe=self.universe)

    def difference(self, other: "AtomSet") -> "AtomSet":
        return self.intersect(other.complement())

    def is_subset(self, other: "AtomSet") -> bool:
        if not self.complemented and not other.complemented:
            return self.values <= other.values
        if not self.complemented and other.complemented:
            return not (self.values & other.values)
        if self.complemented and other.complemented:
            return other.values <= self.values
        # Co-finite (infinite universe) can never fit inside a finite set.
        return False

    # -- dunder ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomSet):
            return NotImplemented
        return self.values == other.values and self.complemented == other.complemented

    def __hash__(self) -> int:
        return hash((self.values, self.complemented))

    def describe(self) -> str:
        rendered = ", ".join(repr(v) for v in sorted(self.values, key=repr))
        if self.complemented:
            return f"¬{{{rendered}}}" if rendered else "⊤"
        return "{" + rendered + "}"

    def __str__(self) -> str:  # pragma: no cover - trivial delegation
        return self.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomSet({self.describe()})"
