"""The unified :class:`ValueSet` facade over numeric and discrete domains.

The solver tracks one :class:`ValueSet` per attribute path.  Three concrete
kinds exist:

* :class:`NumericSet` — an :class:`~repro.domains.interval.IntervalSet` plus
  an integrality flag (integral sets tighten open bounds: ``rating > 3`` over
  ``1..5`` becomes ``rating ∈ [4, 5]``).
* :class:`DiscreteSet` — an :class:`~repro.domains.discrete.AtomSet` for
  strings, booleans and other unordered atoms.
* :class:`TopSet` — the unconstrained domain for values the algebra does not
  interpret (object references, power-set values); it absorbs nothing and
  intersects to the other operand.

Mixing numeric and discrete sets in one operation signals a type error in the
caller and raises :class:`~repro.errors.SolverError`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from repro.domains.discrete import AtomSet
from repro.domains.interval import IntervalSet
from repro.errors import SolverError

#: Enumeration cut-off: domains with more members than this are treated as
#: non-enumerable by derivation (falls back to interval reasoning).
ENUMERATION_LIMIT = 1024


class ValueSet:
    """Abstract base for the three domain kinds."""

    def intersect(self, other: "ValueSet") -> "ValueSet":
        raise NotImplementedError

    def union_with(self, other: "ValueSet") -> "ValueSet":
        raise NotImplementedError

    def complement(self) -> "ValueSet":
        raise NotImplementedError

    def is_empty(self) -> bool:
        raise NotImplementedError

    def contains(self, value: Any) -> bool:
        raise NotImplementedError

    def is_subset_of(self, other: "ValueSet") -> bool:
        raise NotImplementedError

    def enumerate(self, limit: int = ENUMERATION_LIMIT) -> tuple | None:
        """The members as a tuple if finitely enumerable, else ``None``."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - trivial delegation
        return self.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


class TopSet(ValueSet):
    """The unconstrained domain: contains everything, subset of nothing else."""

    _instance: "TopSet | None" = None

    def __new__(cls) -> "TopSet":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def intersect(self, other: ValueSet) -> ValueSet:
        return other

    def union_with(self, other: ValueSet) -> ValueSet:
        return self

    def complement(self) -> ValueSet:
        return BOTTOM

    def is_empty(self) -> bool:
        return False

    def contains(self, value: Any) -> bool:
        return True

    def is_subset_of(self, other: ValueSet) -> bool:
        return isinstance(other, TopSet)

    def enumerate(self, limit: int = ENUMERATION_LIMIT) -> tuple | None:
        return None

    def describe(self) -> str:
        return "⊤"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TopSet)

    def __hash__(self) -> int:
        return hash("TopSet")


class NumericSet(ValueSet):
    """A set of numbers: interval set plus integrality."""

    __slots__ = ("intervals", "integral")

    def __init__(self, intervals: IntervalSet, integral: bool = False):
        if integral:
            intervals = intervals.tighten_integral()
        self.intervals = intervals
        self.integral = integral

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def all(integral: bool = False) -> "NumericSet":
        return NumericSet(IntervalSet.all(), integral)

    @staticmethod
    def empty() -> "NumericSet":
        return NumericSet(IntervalSet.empty())

    @staticmethod
    def points(values: Iterable[float], integral: bool | None = None) -> "NumericSet":
        values = tuple(values)
        if integral is None:
            integral = all(float(v).is_integer() for v in values)
        return NumericSet(IntervalSet.points(values), integral)

    # -- ValueSet API -------------------------------------------------------------

    def intersect(self, other: ValueSet) -> ValueSet:
        if isinstance(other, TopSet):
            return self
        if not isinstance(other, NumericSet):
            raise SolverError(
                f"type clash: numeric set intersected with {type(other).__name__}"
            )
        return NumericSet(
            self.intervals.intersect(other.intervals),
            self.integral or other.integral,
        )

    def union_with(self, other: ValueSet) -> ValueSet:
        if isinstance(other, TopSet):
            return other
        if not isinstance(other, NumericSet):
            raise SolverError(
                f"type clash: numeric set united with {type(other).__name__}"
            )
        return NumericSet(
            self.intervals.union(other.intervals),
            self.integral and other.integral,
        )

    def complement(self) -> ValueSet:
        # The complement of an integral set over the reals is not integral;
        # the caller re-intersects with the path's type domain afterwards.
        return NumericSet(self.intervals.complement(), False)

    def is_empty(self) -> bool:
        return self.intervals.is_empty()

    def contains(self, value: Any) -> bool:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if self.integral and not float(value).is_integer():
            return False
        return self.intervals.contains(value)

    def is_subset_of(self, other: ValueSet) -> bool:
        if isinstance(other, TopSet):
            return True
        if not isinstance(other, NumericSet):
            return False
        if self.integral:
            mine = self.enumerate()
            if mine is not None:
                return all(other.contains(v) for v in mine)
        return self.intervals.is_subset(other.intervals)

    def enumerate(self, limit: int = ENUMERATION_LIMIT) -> tuple | None:
        if self.integral:
            return self.intervals.enumerate_integers(limit)
        values = self.intervals.finite_values()
        if values is not None and len(values) <= limit:
            return values
        return None

    # -- numeric extras --------------------------------------------------------------

    def lower_bound(self) -> tuple[float | None, bool]:
        return self.intervals.lower_bound()

    def upper_bound(self) -> tuple[float | None, bool]:
        return self.intervals.upper_bound()

    def describe(self) -> str:
        suffix = " (int)" if self.integral else ""
        return self.intervals.describe() + suffix

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NumericSet):
            return NotImplemented
        return self.intervals == other.intervals and self.integral == other.integral

    def __hash__(self) -> int:
        return hash((self.intervals, self.integral))


class DiscreteSet(ValueSet):
    """A set of unordered atoms (strings, booleans)."""

    __slots__ = ("atoms",)

    def __init__(self, atoms: AtomSet):
        self.atoms = atoms

    @staticmethod
    def of(*values: Any) -> "DiscreteSet":
        return DiscreteSet(AtomSet(values))

    @staticmethod
    def top() -> "DiscreteSet":
        return DiscreteSet(AtomSet.top())

    def intersect(self, other: ValueSet) -> ValueSet:
        if isinstance(other, TopSet):
            return self
        if not isinstance(other, DiscreteSet):
            raise SolverError(
                f"type clash: discrete set intersected with {type(other).__name__}"
            )
        return DiscreteSet(self.atoms.intersect(other.atoms))

    def union_with(self, other: ValueSet) -> ValueSet:
        if isinstance(other, TopSet):
            return other
        if not isinstance(other, DiscreteSet):
            raise SolverError(
                f"type clash: discrete set united with {type(other).__name__}"
            )
        return DiscreteSet(self.atoms.union(other.atoms))

    def complement(self) -> ValueSet:
        return DiscreteSet(self.atoms.complement())

    def is_empty(self) -> bool:
        return self.atoms.is_empty()

    def contains(self, value: Any) -> bool:
        return self.atoms.contains(value)

    def is_subset_of(self, other: ValueSet) -> bool:
        if isinstance(other, TopSet):
            return True
        if not isinstance(other, DiscreteSet):
            return False
        return self.atoms.is_subset(other.atoms)

    def enumerate(self, limit: int = ENUMERATION_LIMIT) -> tuple | None:
        values = self.atoms.finite_values()
        if values is None or len(values) > limit:
            return None
        return tuple(sorted(values, key=repr))

    def describe(self) -> str:
        return self.atoms.describe()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteSet):
            return NotImplemented
        return self.atoms == other.atoms

    def __hash__(self) -> int:
        return hash(self.atoms)


class _BottomSet(ValueSet):
    """The empty domain of unknown kind (complement of ⊤)."""

    def intersect(self, other: ValueSet) -> ValueSet:
        return self

    def union_with(self, other: ValueSet) -> ValueSet:
        return other

    def complement(self) -> ValueSet:
        return TopSet()

    def is_empty(self) -> bool:
        return True

    def contains(self, value: Any) -> bool:
        return False

    def is_subset_of(self, other: ValueSet) -> bool:
        return True

    def enumerate(self, limit: int = ENUMERATION_LIMIT) -> tuple | None:
        return ()

    def describe(self) -> str:
        return "⊥"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _BottomSet)

    def __hash__(self) -> int:
        return hash("_BottomSet")


#: The canonical empty domain.
BOTTOM = _BottomSet()


def boolean_set(*values: bool) -> DiscreteSet:
    """A boolean domain; with no arguments, the full ``{True, False}``."""
    universe = frozenset({True, False})
    if not values:
        return DiscreteSet(AtomSet(universe, universe=universe))
    return DiscreteSet(AtomSet(values, universe=universe))


def numeric_range(
    low: float | None,
    high: float | None,
    integral: bool = False,
    low_strict: bool = False,
    high_strict: bool = False,
) -> NumericSet:
    """The numeric interval domain ``[low, high]`` (``None`` = unbounded)."""
    from repro.domains.interval import Interval

    return NumericSet(
        IntervalSet((Interval(low, high, low_strict, high_strict),)), integral
    )


def numeric_points(values: Sequence[float]) -> NumericSet:
    """A finite numeric domain, integral iff all members are integers."""
    return NumericSet.points(values)


def from_values(values: Iterable[Any]) -> ValueSet:
    """Build the appropriate domain kind from a collection of literals."""
    values = tuple(values)
    if not values:
        return BOTTOM
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
        return NumericSet.points(values)
    return DiscreteSet(AtomSet(values))
