"""Abstract value-set domains.

The symbolic machinery of the reproduction — constraint satisfiability,
entailment (``⊨``), and the derivation of global constraints through decision
functions — all reduces to computations on *sets of possible values* for
attribute paths.  This package provides that algebra:

* :class:`~repro.domains.interval.Interval` /
  :class:`~repro.domains.interval.IntervalSet` — unions of disjoint intervals
  over the reals, with open/closed bounds and optional integrality.
* :class:`~repro.domains.discrete.AtomSet` — finite or co-finite sets of
  atomic values (strings, booleans, publisher names, ...).
* :class:`~repro.domains.valueset.ValueSet` — the unified facade with
  ``intersect`` / ``union_with`` / ``complement`` / ``is_empty`` /
  ``is_subset_of`` and bounded enumeration.
* :mod:`~repro.domains.combine` — pointwise combination of two value sets
  under a decision function (``avg``, ``max``, ``min``, arithmetic), the
  engine behind the paper's intro example where ``{10, 20}`` and ``{14, 24}``
  combine under ``avg`` into ``{12, 17, 22}``.
* :mod:`~repro.domains.typed` — seeding a value set from a TM type
  (``1..5`` becomes the integral interval ``[1, 5]``).
"""

from repro.domains.interval import Interval, IntervalSet
from repro.domains.discrete import AtomSet
from repro.domains.valueset import (
    BOTTOM,
    NumericSet,
    TopSet,
    ValueSet,
    boolean_set,
    numeric_points,
    numeric_range,
)
from repro.domains.combine import combine_numeric, combine_pointwise
from repro.domains.typed import type_to_valueset

__all__ = [
    "Interval",
    "IntervalSet",
    "AtomSet",
    "ValueSet",
    "NumericSet",
    "TopSet",
    "BOTTOM",
    "boolean_set",
    "numeric_points",
    "numeric_range",
    "combine_numeric",
    "combine_pointwise",
    "type_to_valueset",
]
