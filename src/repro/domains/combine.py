"""Pointwise combination of value sets under decision functions.

This module answers the question at the heart of the paper's intro example:
*given that the local value lies in D and the remote value lies in D', where
does the global value ``df(local, remote)`` lie?*

For ``avg`` on ``{10, 20}`` and ``{14, 24}`` the answer is ``{12, 17, 22}``
(the paper's derived global constraint for ``trav-reimb``).  When either side
is not finitely enumerable the combination falls back to sound interval
reasoning on the bounds.

Only *numeric* combination lives here; the ``union`` decision function on
power-set values is handled structurally in
:mod:`repro.integration.derivation` because its "domains" are sets of sets.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.domains.interval import Interval, IntervalSet
from repro.domains.valueset import (
    ENUMERATION_LIMIT,
    BOTTOM,
    NumericSet,
    TopSet,
    ValueSet,
)
from repro.errors import SolverError

#: Pointwise semantics of the supported numeric combinators.
POINT_FUNCTIONS: dict[str, Callable[[float, float], float]] = {
    "avg": lambda a, b: (a + b) / 2,
    "max": max,
    "min": min,
    "sum": lambda a, b: a + b,
    "diff": lambda a, b: a - b,
    "first": lambda a, b: a,
    "second": lambda a, b: b,
}


def combine_numeric(left: NumericSet, right: NumericSet, op: str) -> NumericSet:
    """The image ``{ op(a, b) : a ∈ left, b ∈ right }`` (or a sound superset).

    Finite × finite domains are combined exactly, pointwise.  Otherwise each
    pair of intervals is combined through monotone bound arithmetic, which is
    exact for ``avg``/``sum``/``diff`` and for ``max``/``min`` (both are
    monotone in each argument), though the union of the per-pair images may
    merge into a coarser interval set.
    """
    if op not in POINT_FUNCTIONS:
        raise SolverError(f"unknown numeric combinator {op!r}")
    if left.is_empty() or right.is_empty():
        return NumericSet.empty()

    fn = POINT_FUNCTIONS[op]
    left_values = left.enumerate(ENUMERATION_LIMIT)
    right_values = right.enumerate(ENUMERATION_LIMIT)
    if (
        left_values is not None
        and right_values is not None
        and len(left_values) * len(right_values) <= ENUMERATION_LIMIT * 4
    ):
        combined = sorted({fn(a, b) for a in left_values for b in right_values})
        return NumericSet.points(combined)

    pieces = []
    for a in left.intervals.intervals:
        for b in right.intervals.intervals:
            pieces.append(_combine_intervals(a, b, op))
    integral = _result_integral(left, right, op)
    return NumericSet(IntervalSet(pieces), integral)


def combine_pointwise(left: ValueSet, right: ValueSet, op: str) -> ValueSet:
    """Dispatching wrapper around :func:`combine_numeric`.

    ``first``/``second`` projections work for any domain kind (they model
    conflict-settling functions whose winner is known); other combinators
    require numeric operands.
    """
    if op == "first":
        return left
    if op == "second":
        return right
    if isinstance(left, TopSet) or isinstance(right, TopSet):
        return TopSet()
    if left.is_empty() or right.is_empty():
        return BOTTOM
    if isinstance(left, NumericSet) and isinstance(right, NumericSet):
        return combine_numeric(left, right, op)
    if op in ("max", "min"):
        # Settling functions pick one of the two values, so the union is a
        # sound result set even for non-numeric (but ordered) atom domains.
        return left.union_with(right)
    raise SolverError(
        f"combinator {op!r} requires numeric domains, got "
        f"{type(left).__name__} and {type(right).__name__}"
    )


def _result_integral(left: NumericSet, right: NumericSet, op: str) -> bool:
    if op in ("max", "min"):
        return left.integral and right.integral
    if op in ("sum", "diff"):
        return left.integral and right.integral
    # avg of two integers need not be an integer.
    return False


def _bound_add(a: float | None, b: float | None) -> float | None:
    if a is None or b is None:
        return None
    return a + b


def _combine_intervals(a: Interval, b: Interval, op: str) -> Interval:
    if op == "avg":
        low = _bound_add(a.low, b.low)
        high = _bound_add(a.high, b.high)
        return Interval(
            None if low is None else low / 2,
            None if high is None else high / 2,
            a.low_open or b.low_open,
            a.high_open or b.high_open,
        )
    if op == "sum":
        return Interval(
            _bound_add(a.low, b.low),
            _bound_add(a.high, b.high),
            a.low_open or b.low_open,
            a.high_open or b.high_open,
        )
    if op == "diff":
        low = None if a.low is None or b.high is None else a.low - b.high
        high = None if a.high is None or b.low is None else a.high - b.low
        return Interval(low, high, a.low_open or b.high_open, a.high_open or b.low_open)
    if op == "max":
        # max(x, y): infimum is max of the lows, supremum is max of the highs.
        low, low_open = _pick_larger((a.low, a.low_open), (b.low, b.low_open), none_is="-inf")
        high, high_open = _pick_larger((a.high, a.high_open), (b.high, b.high_open), none_is="+inf")
        return Interval(low, high, low_open, high_open)
    if op == "min":
        low, low_open = _pick_smaller((a.low, a.low_open), (b.low, b.low_open), none_is="-inf")
        high, high_open = _pick_smaller((a.high, a.high_open), (b.high, b.high_open), none_is="+inf")
        return Interval(low, high, low_open, high_open)
    if op == "first":
        return a
    if op == "second":
        return b
    raise SolverError(f"unknown numeric combinator {op!r}")


def _pick_larger(x: tuple, y: tuple, none_is: str) -> tuple:
    """The larger of two bounds; ``None`` reads as -inf or +inf per kind."""
    (vx, ox), (vy, oy) = x, y
    if vx is None and vy is None:
        return None, False
    if vx is None:
        return (vy, oy) if none_is == "-inf" else (None, False)
    if vy is None:
        return (vx, ox) if none_is == "-inf" else (None, False)
    if vx > vy:
        return vx, ox
    if vy > vx:
        return vy, oy
    return vx, ox and oy


def _pick_smaller(x: tuple, y: tuple, none_is: str) -> tuple:
    """The smaller of two bounds; ``None`` reads as -inf or +inf per kind."""
    (vx, ox), (vy, oy) = x, y
    if vx is None and vy is None:
        return None, False
    if vx is None:
        return (None, False) if none_is == "-inf" else (vy, oy)
    if vy is None:
        return (None, False) if none_is == "-inf" else (vx, ox)
    if vx < vy:
        return vx, ox
    if vy < vx:
        return vy, oy
    return vx, ox and oy
