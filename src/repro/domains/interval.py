"""Intervals and normalised unions of intervals over the reals.

``None`` bounds denote (minus/plus) infinity.  An :class:`IntervalSet` is kept
in a canonical form — sorted, pairwise disjoint, non-adjacent intervals — so
structural equality coincides with set equality, which the solver relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence


@dataclass(frozen=True)
class Interval:
    """A real interval with independently open/closed endpoints.

    ``Interval(1, 5)`` is the closed interval ``[1, 5]``;
    ``Interval(1, 5, low_open=True)`` is ``(1, 5]``;
    ``Interval(None, 5)`` is ``(-inf, 5]``.
    """

    low: float | None = None
    high: float | None = None
    low_open: bool = False
    high_open: bool = False

    def is_empty(self) -> bool:
        """Whether the interval contains no points."""
        if self.low is None or self.high is None:
            return False
        if self.low > self.high:
            return True
        return self.low == self.high and (self.low_open or self.high_open)

    def is_point(self) -> bool:
        """Whether the interval is a single value ``[v, v]``."""
        return (
            self.low is not None
            and self.low == self.high
            and not self.low_open
            and not self.high_open
        )

    def contains(self, value: float) -> bool:
        if self.low is not None:
            if value < self.low or (value == self.low and self.low_open):
                return False
        if self.high is not None:
            if value > self.high or (value == self.high and self.high_open):
                return False
        return True

    def intersect(self, other: "Interval") -> "Interval":
        low, low_open = _tighter_low(
            (self.low, self.low_open), (other.low, other.low_open)
        )
        high, high_open = _tighter_high(
            (self.high, self.high_open), (other.high, other.high_open)
        )
        return Interval(low, high, low_open, high_open)

    def _touches(self, other: "Interval") -> bool:
        """Whether ``self ∪ other`` is itself an interval (overlap/adjacency)."""
        first, second = (self, other) if _low_key(self) <= _low_key(other) else (other, self)
        if first.high is None:
            return True
        if second.low is None:
            return True
        if second.low < first.high:
            return True
        if second.low == first.high:
            # Adjacent at a shared endpoint: the union is connected unless the
            # point is excluded on both sides, e.g. (1,2) ∪ (2,3).
            return not (first.high_open and second.low_open)
        return False

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (only valid when they touch)."""
        low, low_open = _looser_low(
            (self.low, self.low_open), (other.low, other.low_open)
        )
        high, high_open = _looser_high(
            (self.high, self.high_open), (other.high, other.high_open)
        )
        return Interval(low, high, low_open, high_open)

    def describe(self) -> str:
        left = "(" if self.low_open or self.low is None else "["
        right = ")" if self.high_open or self.high is None else "]"
        low = "-inf" if self.low is None else _fmt(self.low)
        high = "+inf" if self.high is None else _fmt(self.high)
        if self.is_point():
            return "{" + _fmt(self.low) + "}"
        return f"{left}{low}, {high}{right}"

    def __str__(self) -> str:  # pragma: no cover - trivial delegation
        return self.describe()


def _fmt(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _low_key(interval: Interval) -> tuple:
    if interval.low is None:
        return (-math.inf, 0)
    return (interval.low, 1 if interval.low_open else 0)


def _tighter_low(a: tuple, b: tuple) -> tuple:
    """The larger (more restrictive) of two lower bounds."""
    (la, oa), (lb, ob) = a, b
    if la is None:
        return lb, ob
    if lb is None:
        return la, oa
    if la > lb:
        return la, oa
    if lb > la:
        return lb, ob
    return la, oa or ob


def _tighter_high(a: tuple, b: tuple) -> tuple:
    """The smaller (more restrictive) of two upper bounds."""
    (ha, oa), (hb, ob) = a, b
    if ha is None:
        return hb, ob
    if hb is None:
        return ha, oa
    if ha < hb:
        return ha, oa
    if hb < ha:
        return hb, ob
    return ha, oa or ob


def _looser_low(a: tuple, b: tuple) -> tuple:
    """The smaller (more permissive) of two lower bounds."""
    (la, oa), (lb, ob) = a, b
    if la is None or lb is None:
        return None, False
    if la < lb:
        return la, oa
    if lb < la:
        return lb, ob
    return la, oa and ob


def _looser_high(a: tuple, b: tuple) -> tuple:
    """The larger (more permissive) of two upper bounds."""
    (ha, oa), (hb, ob) = a, b
    if ha is None or hb is None:
        return None, False
    if ha > hb:
        return ha, oa
    if hb > ha:
        return hb, ob
    return ha, oa and ob


class IntervalSet:
    """A canonical union of disjoint intervals.

    Instances are immutable; all operations return new sets.  The canonical
    form (sorted, merged) makes ``==`` semantic set equality.
    """

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self.intervals: tuple[Interval, ...] = _normalise(intervals)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def all() -> "IntervalSet":
        """The whole real line."""
        return IntervalSet((Interval(),))

    @staticmethod
    def empty() -> "IntervalSet":
        return IntervalSet(())

    @staticmethod
    def point(value: float) -> "IntervalSet":
        return IntervalSet((Interval(value, value),))

    @staticmethod
    def points(values: Iterable[float]) -> "IntervalSet":
        return IntervalSet(Interval(v, v) for v in values)

    @staticmethod
    def at_least(value: float, strict: bool = False) -> "IntervalSet":
        return IntervalSet((Interval(value, None, low_open=strict),))

    @staticmethod
    def at_most(value: float, strict: bool = False) -> "IntervalSet":
        return IntervalSet((Interval(None, value, high_open=strict),))

    @staticmethod
    def closed(low: float, high: float) -> "IntervalSet":
        return IntervalSet((Interval(low, high),))

    # -- queries -----------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.intervals

    def is_all(self) -> bool:
        return self.intervals == (Interval(),)

    def contains(self, value: float) -> bool:
        return any(interval.contains(value) for interval in self.intervals)

    def lower_bound(self) -> tuple[float | None, bool]:
        """The set's infimum as ``(value, strict)``; ``(None, False)`` = -inf."""
        if not self.intervals:
            return None, True
        first = self.intervals[0]
        return first.low, first.low_open

    def upper_bound(self) -> tuple[float | None, bool]:
        """The set's supremum as ``(value, strict)``; ``(None, False)`` = +inf."""
        if not self.intervals:
            return None, True
        last = self.intervals[-1]
        return last.high, last.high_open

    def is_finite(self) -> bool:
        """Whether the set is a finite collection of points."""
        return all(interval.is_point() for interval in self.intervals)

    def finite_values(self) -> tuple[float, ...] | None:
        """The members, if the set is a finite collection of points."""
        if not self.is_finite():
            return None
        return tuple(interval.low for interval in self.intervals)  # type: ignore[misc]

    # -- set algebra ---------------------------------------------------------

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        pieces = []
        for a in self.intervals:
            for b in other.intervals:
                piece = a.intersect(b)
                if not piece.is_empty():
                    pieces.append(piece)
        return IntervalSet(pieces)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self.intervals + other.intervals)

    def complement(self) -> "IntervalSet":
        """The complement with respect to the real line."""
        result = [Interval()]
        for interval in self.intervals:
            next_result = []
            for piece in result:
                next_result.extend(_subtract(piece, interval))
            result = next_result
        return IntervalSet(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersect(other.complement())

    def is_subset(self, other: "IntervalSet") -> bool:
        return self.difference(other).is_empty()

    # -- transformations -----------------------------------------------------

    def map_monotone(self, fn: Callable[[float], float], increasing: bool = True) -> "IntervalSet":
        """Image under a monotone function (applied to bounds).

        Used by conversion functions such as ``multiply(2)`` to rewrite the
        value sets appearing in constraints.
        """
        mapped = []
        for interval in self.intervals:
            low = None if interval.low is None else fn(interval.low)
            high = None if interval.high is None else fn(interval.high)
            if increasing:
                mapped.append(Interval(low, high, interval.low_open, interval.high_open))
            else:
                mapped.append(Interval(high, low, interval.high_open, interval.low_open))
        return IntervalSet(mapped)

    def scale(self, factor: float) -> "IntervalSet":
        if factor == 0:
            return IntervalSet.point(0) if not self.is_empty() else self
        return self.map_monotone(lambda v: v * factor, increasing=factor > 0)

    def shift(self, offset: float) -> "IntervalSet":
        return self.map_monotone(lambda v: v + offset)

    def tighten_integral(self) -> "IntervalSet":
        """Shrink to the tightest interval set with the same integer members.

        ``(1, 5)`` over the integers becomes ``[2, 4]``; intervals containing
        no integer vanish.  Finite points that are not integers vanish too.
        """
        tightened = []
        for interval in self.intervals:
            low = interval.low
            high = interval.high
            if low is not None:
                # Smallest integer strictly above (open) / at-or-above (closed).
                low = math.floor(low) + 1 if interval.low_open else math.ceil(low)
            if high is not None:
                # Largest integer strictly below (open) / at-or-below (closed).
                high = math.ceil(high) - 1 if interval.high_open else math.floor(high)
            candidate = Interval(low, high)
            if not candidate.is_empty():
                tightened.append(candidate)
        return IntervalSet(tightened)

    def enumerate_integers(self, limit: int = 1024) -> tuple[int, ...] | None:
        """All integer members, if the set is bounded and small enough."""
        values: list[int] = []
        for interval in self.intervals:
            if interval.low is None or interval.high is None:
                return None
            start = math.ceil(interval.low)
            if interval.low_open and start == interval.low:
                start += 1
            stop = math.floor(interval.high)
            if interval.high_open and stop == interval.high:
                stop -= 1
            span = stop - start + 1
            if span > limit - len(values):
                return None
            values.extend(range(start, stop + 1))
        return tuple(sorted(set(values)))

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def describe(self) -> str:
        if not self.intervals:
            return "{}"
        points = self.finite_values()
        if points is not None:
            return "{" + ", ".join(_fmt(p) for p in points) + "}"
        return " ∪ ".join(interval.describe() for interval in self.intervals)

    def __str__(self) -> str:  # pragma: no cover - trivial delegation
        return self.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalSet({self.describe()})"


def _normalise(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    live = [interval for interval in intervals if not interval.is_empty()]
    live.sort(key=_low_key)
    merged: list[Interval] = []
    for interval in live:
        if merged and merged[-1]._touches(interval):
            merged[-1] = merged[-1].hull(interval)
        else:
            merged.append(interval)
    return tuple(merged)


def _subtract(piece: Interval, cut: Interval) -> Sequence[Interval]:
    """``piece \\ cut`` as up to two intervals.

    Implemented as ``piece ∩ complement(cut)``: the complement of the cut is
    the (possibly empty) half-lines on either side of it.
    """
    results = []
    if cut.low is not None:
        left = piece.intersect(Interval(None, cut.low, high_open=not cut.low_open))
        if not left.is_empty():
            results.append(left)
    if cut.high is not None:
        right = piece.intersect(Interval(cut.high, None, low_open=not cut.high_open))
        if not right.is_empty():
            results.append(right)
    return results
