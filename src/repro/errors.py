"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures with a single ``except`` clause.  The hierarchy
mirrors the major subsystems: the specification languages (parsing), the type
system, the database engine (enforcement), and the integration machinery.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParseError(ReproError):
    """A specification (TM schema or constraint expression) failed to parse.

    Attributes
    ----------
    message:
        Human-readable description of the problem.
    line, column:
        1-based position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        position = ""
        if line is not None:
            position = f" at line {line}"
            if column is not None:
                position += f", column {column}"
        super().__init__(f"{message}{position}")


class TypeSystemError(ReproError):
    """A value or expression does not conform to its declared TM type."""


class SchemaError(ReproError):
    """A TM schema is structurally invalid (bad inheritance, unknown types...)."""


class EngineError(ReproError):
    """Base class for errors raised by the in-memory object database engine."""


class UnknownClassError(EngineError):
    """An operation referenced a class that is not part of the schema."""


class UnknownObjectError(EngineError):
    """An operation referenced an object identifier that does not exist."""


class StorePoisonedError(EngineError):
    """The durable store degraded to read-only after an unrecoverable IO
    failure at a commit point.

    Raised on every mutation attempt once the write-ahead log has poisoned
    itself — a failed commit-point fsync (which must never be retried: the
    kernel may have dropped the dirty pages while marking them clean, so a
    succeeding retry proves nothing about the lost writes), or an append
    whose bytes may sit partially in a userspace buffer.  Snapshot reads
    keep working; reopening the directory recovers the durable prefix.
    """


class ShardingError(EngineError):
    """The shard layout is unusable: a schema whose reference edges would
    span shards, a manifest that disagrees with the directories on disk,
    a spread class that carries references, or an unknown class in the
    requested placement (see :mod:`repro.engine.sharding`)."""


class ConstraintViolation(EngineError):
    """A database operation would leave the store violating a constraint.

    Attributes
    ----------
    constraint_name:
        The label of the violated constraint (e.g. ``"Publication.oc1"``),
        or a phase label (``"transaction"``, ``"full revalidation"``) when
        several constraints failed together.
    detail:
        Explanation of the violation, including the offending object(s).
    violations:
        The structured per-constraint findings behind a multi-constraint
        failure (objects with ``constraint_name``/``detail`` attributes —
        see :class:`repro.engine.enforcement.Violation`); empty when the
        exception names a single constraint directly.
    trace:
        The reason graph of the failing check, when the raising store had
        explanations enabled: a
        :class:`repro.constraints.evaluate.ReasonTrace` recording the
        attribute reads, constant reads, index probes and quantifier
        bindings that determined the verdict.  ``None`` otherwise.
    cores:
        Subset-minimal conflict cores
        (:class:`repro.engine.explain.ConflictCore`) extracted for the
        failure, when the raising path could afford to compute them —
        commit-time multi-constraint failures compute cores *before*
        rolling the transaction back, since the violating state is gone
        afterwards.  Empty otherwise; ``store.explain_violations()``
        recomputes cores for any standing violation.
    """

    def __init__(
        self,
        constraint_name: str,
        detail: str = "",
        violations: "tuple | list | None" = None,
        trace: "object | None" = None,
        cores: "tuple | list | None" = None,
    ):
        self.constraint_name = constraint_name
        self.detail = detail
        self.violations = tuple(violations) if violations is not None else ()
        self.trace = trace
        self.cores = tuple(cores) if cores is not None else ()
        message = f"constraint {constraint_name} violated"
        if detail:
            message += f": {detail}"
        super().__init__(message)

    @property
    def constraint_names(self) -> tuple[str, ...]:
        """Names of every constraint this failure implicates, deduplicated.

        Reads the structured ``violations`` when present, so commit-time
        failures (raised under the ``"transaction"`` label) still attribute
        each violated constraint by name.
        """
        if self.violations:
            names = [
                getattr(violation, "constraint_name", None) or str(violation)
                for violation in self.violations
            ]
            return tuple(dict.fromkeys(names))
        return (self.constraint_name,)


class ServerError(ReproError):
    """Base class for errors raised by the network server and client
    (:mod:`repro.server`, :mod:`repro.client`).

    Engine errors crossing the wire do **not** arrive as ``ServerError`` —
    the protocol maps them back to their original classes
    (:class:`ConstraintViolation` with structured violations and conflict
    cores, :class:`StorePoisonedError`, :class:`SchemaError`, ...), so
    remote callers catch exactly what embedded callers catch.  This branch
    covers what only exists over a wire: framing damage, admission
    rejections, connection loss.
    """


class ProtocolError(ServerError):
    """A wire frame was malformed: oversized, truncated, undecodable, an
    unknown operation, or a reference to server-side state (transaction,
    snapshot, tenant) the connection does not hold."""


class AdmissionError(ServerError):
    """The server refused the request to protect itself (connection limit,
    in-flight cap, draining for shutdown).

    ``retryable`` distinguishes back-off-and-retry rejections (the limit
    is transient — another client may disconnect) from permanent ones.
    """

    def __init__(self, message: str, retryable: bool = True):
        self.retryable = retryable
        super().__init__(message)


class ConnectionLostError(ServerError):
    """The transport died mid-conversation: the peer closed the socket (or
    the frame stream tore) before a response arrived.  Any in-flight
    operation's outcome is unknown to the client; the server side rolls
    open transactions back and releases the connection's leases."""


class IntegrationError(ReproError):
    """Base class for errors raised by the integration machinery."""


class SpecificationError(IntegrationError):
    """An integration specification is malformed (unknown classes/properties,
    a decision function violating ``df(a, a) = a``, ...)."""


class ConformationError(IntegrationError):
    """The conformation phase could not bring the databases into a common
    semantic context (e.g. a constraint mentions a hidden property)."""


class DerivationError(IntegrationError):
    """Global-constraint derivation was attempted in a situation the paper's
    necessary conditions rule out."""


class SolverError(ReproError):
    """The symbolic solver met a formula outside the decidable fragment."""


class EvaluationError(ReproError):
    """A constraint could not be evaluated against an object state (missing
    attribute, unknown function, unresolvable reference...).

    ``bindings`` carries the quantifier bindings in scope when the failure
    happened, as ``((var, oid), ...)`` — so a scan-fallback failure deep in
    a quantifier body keeps its originating binding context and reason
    traces can report *which* object the evaluation died on.
    """

    def __init__(self, message: str, bindings: "tuple | list" = ()):
        self.bindings = tuple(bindings)
        super().__init__(message)
