"""Parser for the TM schema surface syntax of Figure 1.

The accepted grammar (case of section keywords follows the paper):

.. code-block:: text

    database      := 'Database' IDENT constants? class* db_constraints?
    constants     := 'constants' (IDENT '=' constant_value)*
    class         := 'Class' IDENT ('isa' IDENT)?
                     ('attributes' attribute+)?
                     ('object' 'constraints' labelled+)?
                     ('class' 'constraints' labelled+)?
                     'end' IDENT
    attribute     := IDENT ':' type_tokens NEWLINE
    labelled      := IDENT ':' formula_tokens
    db_constraints:= 'Database' 'constraints' labelled+

Attribute types are collected as token spans and re-parsed with
:func:`repro.types.parse_type`; constraint formulas are collected as *token
slices* and parsed with :func:`repro.constraints.parser.parse_tokens`, so
their AST positions are true file coordinates.  A constraint continues onto
the following line whenever that line does not start a new labelled
constraint, section, or class (Figure 1 wraps ``cc2`` and ``db1`` across
lines).
"""

from __future__ import annotations

from typing import Any

from repro.constraints.classify import classify_formula
from repro.constraints.lexer import Token, TokenStream, tokenize
from repro.constraints.model import Constraint, ConstraintKind
from repro.constraints.parser import parse_tokens
from repro.errors import ParseError, SchemaError
from repro.tm.schema import ClassDef, DatabaseSchema
from repro.types.primitives import parse_type

_SECTION_STARTERS = {
    "attributes",
    "object",
    "class",
    "constraints",
    "end",
    "database",
    "constants",
}


def parse_database(
    source: str,
    constants: dict[str, Any] | None = None,
    validate_sections: bool = True,
) -> DatabaseSchema:
    """Parse a TM database specification.

    ``constants`` supplies bindings for named constants the spec references
    but does not declare (the paper leaves ``KNOWNPUBLISHERS`` and ``MAX``
    implicit).  When ``validate_sections`` is true, a constraint declared in
    an ``object constraints`` section must structurally *be* an object
    constraint, and likewise for the other sections.
    """
    stream = TokenStream(tokenize(source, keep_newlines=True))
    parser = _SchemaParser(stream, validate_sections)
    schema = parser.parse()
    if constants:
        for name, value in constants.items():
            schema.set_constant(name, value)
    return schema


class _SchemaParser:
    def __init__(self, stream: TokenStream, validate_sections: bool):
        self.stream = stream
        self.validate_sections = validate_sections

    # -- entry ---------------------------------------------------------------

    def parse(self) -> DatabaseSchema:
        stream = self.stream
        stream.skip_newlines()
        self._expect_word("Database")
        name = stream.expect("IDENT").text
        schema = DatabaseSchema(name)
        stream.skip_newlines()
        while not stream.at("EOF"):
            if self._at_word("constants"):
                self._parse_constants(schema)
            elif self._at_word("Class"):
                self._parse_class(schema)
            elif self._at_word("Database"):
                self._parse_database_constraints(schema)
            else:
                raise stream.error("expected 'Class', 'constants' or 'Database constraints'")
            stream.skip_newlines()
        return schema

    # -- word helpers (section keywords are plain identifiers to the lexer) ----

    def _at_word(self, word: str) -> bool:
        token = self.stream.peek()
        return token.kind in ("IDENT", "KEYWORD") and token.text == word

    def _expect_word(self, word: str) -> Token:
        if not self._at_word(word):
            raise self.stream.error(f"expected {word!r}")
        return self.stream.next()

    # -- sections -----------------------------------------------------------------

    def _parse_constants(self, schema: DatabaseSchema) -> None:
        stream = self.stream
        self._expect_word("constants")
        stream.skip_newlines()
        while stream.at("IDENT") and stream.peek(1).kind == "OP" and stream.peek(1).text == "=":
            name = stream.expect("IDENT").text
            stream.expect("OP", "=")
            schema.set_constant(name, self._constant_value())
            stream.skip_newlines()

    def _constant_value(self) -> Any:
        stream = self.stream
        if stream.at("LBRACE"):
            stream.next()
            values = []
            while not stream.at("RBRACE"):
                values.append(self._scalar())
                stream.accept("COMMA")
            stream.expect("RBRACE")
            return frozenset(values)
        return self._scalar()

    def _scalar(self) -> Any:
        stream = self.stream
        token = stream.peek()
        if token.kind == "NUMBER":
            stream.next()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "STRING":
            stream.next()
            return token.text[1:-1]
        if token.kind == "MINUS":
            stream.next()
            inner = stream.expect("NUMBER")
            return -(float(inner.text) if "." in inner.text else int(inner.text))
        if stream.at_keyword("true"):
            stream.next()
            return True
        if stream.at_keyword("false"):
            stream.next()
            return False
        raise stream.error("expected a constant value")

    def _parse_class(self, schema: DatabaseSchema) -> None:
        stream = self.stream
        self._expect_word("Class")
        name = stream.expect("IDENT").text
        parent = None
        if self._at_word("isa"):
            stream.next()
            parent = stream.expect("IDENT").text
        class_def = ClassDef(name, parent)
        stream.skip_newlines()

        if self._at_word("attributes"):
            stream.next()
            stream.skip_newlines()
            self._parse_attributes(class_def)
        while True:
            stream.skip_newlines()
            if self._at_word("object") and self.stream.peek(1).text == "constraints":
                stream.next()
                stream.next()
                self._parse_labelled_constraints(
                    class_def, schema, ConstraintKind.OBJECT
                )
            elif self._at_word("class") and self.stream.peek(1).text == "constraints":
                stream.next()
                stream.next()
                self._parse_labelled_constraints(
                    class_def, schema, ConstraintKind.CLASS
                )
            else:
                break
        self._expect_word("end")
        end_name = stream.expect("IDENT").text
        if end_name != name:
            raise ParseError(
                f"'end {end_name}' does not match 'Class {name}'",
                stream.peek().line,
            )
        schema.add_class(class_def)

    def _parse_attributes(self, class_def: ClassDef) -> None:
        stream = self.stream
        while stream.at("IDENT") and stream.peek(1).kind == "COLON":
            name = stream.expect("IDENT").text
            stream.expect("COLON")
            type_text = self._collect_until_newline()
            try:
                tm_type = parse_type(type_text)
            except Exception as exc:
                raise ParseError(
                    f"bad type {type_text!r} for attribute {name}: {exc}",
                    stream.peek().line,
                ) from exc
            class_def.add_attribute(name, tm_type)
            stream.skip_newlines()
            # Figure 1 puts some attribute types on the following line
            # (Publisher's 'name' / 'location'); tolerate a dangling colon.
            if stream.at("COLON"):
                raise stream.error("attribute type missing before ':'")

    def _collect_until_newline(self) -> str:
        stream = self.stream
        pieces: list[str] = []
        while not stream.at("NEWLINE") and not stream.at("EOF"):
            pieces.append(stream.next().text)
        return " ".join(pieces)

    def _parse_labelled_constraints(
        self,
        class_def: ClassDef | None,
        schema: DatabaseSchema,
        expected_kind: ConstraintKind,
    ) -> None:
        stream = self.stream
        stream.skip_newlines()
        while stream.at("IDENT") and stream.peek(1).kind == "COLON":
            label = stream.expect("IDENT").text
            stream.expect("COLON")
            formula_tokens = self._collect_formula_tokens()
            formula_text = " ".join(token.text for token in formula_tokens[:-1])
            try:
                formula = parse_tokens(formula_tokens, constants=schema.constants)
            except ParseError as exc:
                raise ParseError(
                    f"bad constraint {label}: {exc.message} in {formula_text!r}",
                    exc.line,
                    exc.column,
                ) from exc
            kind = classify_formula(formula)
            if self.validate_sections and kind is not expected_kind:
                raise SchemaError(
                    f"constraint {label} is declared as a {expected_kind.value} "
                    f"constraint but is structurally a {kind.value} constraint: "
                    f"{formula_text!r}"
                )
            constraint = Constraint(
                label, expected_kind, formula, database=schema.name
            )
            if class_def is not None:
                class_def.add_constraint(constraint)
            else:
                schema.add_database_constraint(constraint)
            stream.skip_newlines()

    def _collect_formula_tokens(self) -> list[Token]:
        """Consume the constraint body, following line continuations.

        Returns the original token slice (terminated with a synthetic EOF) so
        the formula re-parse keeps true file positions — diagnostics on a
        ``.tm``-declared constraint cite the line/column in that file.
        """
        stream = self.stream
        pieces: list[Token] = []
        while True:
            while not stream.at("NEWLINE") and not stream.at("EOF"):
                pieces.append(stream.next())
            if stream.at("EOF"):
                break
            # Decide whether the next line continues this constraint.
            offset = 1
            while stream.peek(offset).kind == "NEWLINE":
                offset += 1
            follow = stream.peek(offset)
            after = stream.peek(offset + 1)
            if follow.kind == "EOF":
                break
            if follow.kind == "IDENT" and after.kind == "COLON":
                break  # next labelled constraint
            if follow.text in _SECTION_STARTERS or follow.text in ("Class", "Database"):
                break
            stream.next()  # consume the newline; keep collecting
        tail = pieces[-1] if pieces else stream.peek()
        pieces.append(Token("EOF", "", tail.line, tail.column + len(tail.text)))
        return pieces

    def _parse_database_constraints(self, schema: DatabaseSchema) -> None:
        self._expect_word("Database")
        self._expect_word("constraints")
        self._parse_labelled_constraints(None, schema, ConstraintKind.DATABASE)
