"""Structural validation of TM schemas.

Checks the properties the integration machinery relies on:

* the inheritance graph is acyclic and parents exist;
* reference attribute types point at declared classes;
* constraint formulas only mention resolvable attribute paths and declared
  named constants;
* every constraint's structural classification matches the section it was
  declared in.

Problems are collected (not raised one-by-one) so a design tool can show all
of them at once; :func:`validate_schema` raises :class:`SchemaError` only
when asked to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.ast import (
    Aggregate,
    NamedConstant,
    Node,
    Path,
    Quantified,
)
from repro.constraints.classify import classify_formula
from repro.constraints.model import Constraint
from repro.errors import SchemaError
from repro.tm.schema import DatabaseSchema
from repro.types.primitives import ClassRef


@dataclass(frozen=True)
class ValidationIssue:
    """A single schema problem with enough context to locate it."""

    location: str  # "CSLibrary.Publication.oc2"
    message: str

    def describe(self) -> str:
        return f"{self.location}: {self.message}"


def validate_schema(schema: DatabaseSchema, raise_on_error: bool = False) -> list[ValidationIssue]:
    """All structural problems found in ``schema`` (empty list = valid)."""
    issues: list[ValidationIssue] = []
    _check_inheritance(schema, issues)
    _check_attribute_types(schema, issues)
    _check_constraints(schema, issues)
    if issues and raise_on_error:
        summary = "; ".join(issue.describe() for issue in issues)
        raise SchemaError(f"schema {schema.name} is invalid: {summary}")
    return issues


def _check_inheritance(schema: DatabaseSchema, issues: list[ValidationIssue]) -> None:
    for class_def in schema.classes.values():
        if class_def.parent is None:
            continue
        if not schema.has_class(class_def.parent):
            issues.append(
                ValidationIssue(
                    f"{schema.name}.{class_def.name}",
                    f"parent class {class_def.parent!r} is not declared",
                )
            )
            continue
        try:
            list(schema.ancestors(class_def.name))
        except SchemaError as exc:
            issues.append(
                ValidationIssue(f"{schema.name}.{class_def.name}", str(exc))
            )


def _check_attribute_types(schema: DatabaseSchema, issues: list[ValidationIssue]) -> None:
    for class_def in schema.classes.values():
        for attribute in class_def.attributes.values():
            tm_type = attribute.tm_type
            if isinstance(tm_type, ClassRef) and not schema.has_class(tm_type.class_name):
                issues.append(
                    ValidationIssue(
                        f"{schema.name}.{class_def.name}.{attribute.name}",
                        f"references undeclared class {tm_type.class_name!r}",
                    )
                )


def _check_constraints(schema: DatabaseSchema, issues: list[ValidationIssue]) -> None:
    for class_def in schema.classes.values():
        try:
            attributes = schema.effective_attributes(class_def.name)
        except SchemaError:
            continue  # broken ancestry already reported by _check_inheritance
        for constraint in class_def.constraints:
            location = f"{schema.name}.{class_def.name}.{constraint.name}"
            _check_classification(constraint, location, issues)
            _check_paths(schema, constraint.formula, attributes, location, issues)
            _check_key_attributes(constraint, attributes, location, issues)
    for constraint in schema.database_constraints:
        location = f"{schema.name}.{constraint.name}"
        _check_classification(constraint, location, issues)
        _check_quantified_classes(schema, constraint.formula, location, issues)


def _check_classification(
    constraint: Constraint, location: str, issues: list[ValidationIssue]
) -> None:
    actual = classify_formula(constraint.formula)
    if actual is not constraint.kind:
        issues.append(
            ValidationIssue(
                location,
                f"declared as a {constraint.kind.value} constraint but is "
                f"structurally a {actual.value} constraint",
            )
        )


def _check_paths(
    schema: DatabaseSchema,
    formula: Node,
    attributes: dict,
    location: str,
    issues: list[ValidationIssue],
    bound_vars: frozenset = frozenset(),
) -> None:
    for node in formula.walk():
        if isinstance(node, Quantified):
            bound_vars = bound_vars | {node.var}
        if isinstance(node, NamedConstant):
            if node.name not in schema.constants:
                issues.append(
                    ValidationIssue(
                        location,
                        f"references undeclared constant {node.name!r}",
                    )
                )
        if isinstance(node, Path):
            first = node.parts[0]
            if first in bound_vars or first in ("O", "O'", "self"):
                continue
            if first not in attributes:
                issues.append(
                    ValidationIssue(
                        location,
                        f"references unknown attribute {first!r}",
                    )
                )
                continue
            _check_dotted_tail(schema, node, attributes, location, issues)


def _check_dotted_tail(
    schema: DatabaseSchema,
    path: Path,
    attributes: dict,
    location: str,
    issues: list[ValidationIssue],
) -> None:
    current_attrs = attributes
    for index, part in enumerate(path.parts):
        if part not in current_attrs:
            issues.append(
                ValidationIssue(
                    location,
                    f"path {path.dotted()!r} breaks at segment {part!r}",
                )
            )
            return
        tm_type = current_attrs[part].tm_type
        is_last = index == len(path.parts) - 1
        if is_last:
            return
        if isinstance(tm_type, ClassRef) and schema.has_class(tm_type.class_name):
            current_attrs = schema.effective_attributes(tm_type.class_name)
        else:
            issues.append(
                ValidationIssue(
                    location,
                    f"path {path.dotted()!r} dereferences non-reference "
                    f"attribute {part!r}",
                )
            )
            return


def _check_key_attributes(
    constraint: Constraint,
    attributes: dict,
    location: str,
    issues: list[ValidationIssue],
) -> None:
    from repro.constraints.ast import KeyConstraint

    for node in constraint.formula.walk():
        if isinstance(node, KeyConstraint):
            for name in node.attributes:
                if name not in attributes:
                    issues.append(
                        ValidationIssue(
                            location, f"key attribute {name!r} is not declared"
                        )
                    )


def _check_quantified_classes(
    schema: DatabaseSchema,
    formula: Node,
    location: str,
    issues: list[ValidationIssue],
) -> None:
    for node in formula.walk():
        if isinstance(node, Quantified) and not schema.has_class(node.class_name):
            issues.append(
                ValidationIssue(
                    location,
                    f"quantifies over undeclared class {node.class_name!r}",
                )
            )
        if isinstance(node, Aggregate) and node.collection != "self":
            if not schema.has_class(node.collection):
                issues.append(
                    ValidationIssue(
                        location,
                        f"aggregates over undeclared class {node.collection!r}",
                    )
                )
