"""Schema object model for the TM fragment.

A :class:`DatabaseSchema` owns a set of :class:`ClassDef` objects with single
inheritance plus database-level constraints and named constants.  All lookups
that the rest of the system needs — effective attributes, *inheritable*
constraints (object constraints inherit, class constraints do not; see
Section 5.2.2 of the paper), subclass queries, solver type environments — live
here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Any

from repro.constraints.model import Constraint, ConstraintKind
from repro.errors import SchemaError
from repro.types.primitives import ClassRef, Type


@dataclass(frozen=True)
class Attribute:
    """A typed attribute declaration (``rating : 1..5``)."""

    name: str
    tm_type: Type

    def describe(self) -> str:
        return f"{self.name} : {self.tm_type.describe()}"


@dataclass
class ClassDef:
    """A TM class: attributes, a single optional parent, own constraints."""

    name: str
    parent: str | None = None
    attributes: dict[str, Attribute] = field(default_factory=dict)
    constraints: list[Constraint] = field(default_factory=list)
    #: True for classes synthesised during integration (virtual classes).
    virtual: bool = False

    def add_attribute(self, name: str, tm_type: Type) -> None:
        if name in self.attributes:
            raise SchemaError(f"duplicate attribute {name!r} in class {self.name}")
        self.attributes[name] = Attribute(name, tm_type)

    def add_constraint(self, constraint: Constraint) -> None:
        if any(c.name == constraint.name for c in self.constraints):
            raise SchemaError(
                f"duplicate constraint label {constraint.name!r} in class {self.name}"
            )
        self.constraints.append(constraint.with_owner(self.name))

    def own_object_constraints(self) -> list[Constraint]:
        return [c for c in self.constraints if c.kind is ConstraintKind.OBJECT]

    def own_class_constraints(self) -> list[Constraint]:
        return [c for c in self.constraints if c.kind is ConstraintKind.CLASS]


class DatabaseSchema:
    """A component database schema: classes + database constraints + constants."""

    def __init__(self, name: str):
        self.name = name
        self.classes: dict[str, ClassDef] = {}
        self.database_constraints: list[Constraint] = []
        self.constants: dict[str, Any] = {}
        self._version = 0
        self._fingerprint_cache: tuple[tuple, int] | None = None
        #: Per-token cache of derived lookups (ancestry chains, subclass
        #: closures, effective attribute maps).  These sit on the mutation
        #: hot path — every insert maintains the deep-extent index of each
        #: ancestor class — so they are memoised behind the same validity
        #: token the fingerprint cache uses and dropped wholesale when the
        #: schema changes.
        self._derived_cache: tuple[tuple, dict[str, dict]] | None = None

    # -- construction -----------------------------------------------------------

    def add_class(self, class_def: ClassDef) -> ClassDef:
        if class_def.name in self.classes:
            raise SchemaError(f"duplicate class {class_def.name!r} in {self.name}")
        self.classes[class_def.name] = class_def
        self._version += 1
        return class_def

    def new_class(self, name: str, parent: str | None = None, virtual: bool = False) -> ClassDef:
        return self.add_class(ClassDef(name, parent, virtual=virtual))

    def add_database_constraint(self, constraint: Constraint) -> None:
        self.database_constraints.append(constraint)
        self._version += 1

    def set_constant(self, name: str, value: Any) -> None:
        self.constants[name] = value
        self._version += 1

    # -- lookups ------------------------------------------------------------------

    def class_named(self, name: str) -> ClassDef:
        if name not in self.classes:
            raise SchemaError(f"unknown class {name!r} in database {self.name}")
        return self.classes[name]

    def has_class(self, name: str) -> bool:
        return name in self.classes

    def ancestors(self, class_name: str) -> Iterator[ClassDef]:
        """The inheritance chain starting at ``class_name`` (inclusive)."""
        seen: set[str] = set()
        current: str | None = class_name
        while current is not None:
            if current in seen:
                raise SchemaError(f"inheritance cycle through class {current!r}")
            seen.add(current)
            class_def = self.class_named(current)
            yield class_def
            current = class_def.parent

    def is_subclass_of(self, child: str, ancestor: str) -> bool:
        return any(cls.name == ancestor for cls in self.ancestors(child))

    def subclasses_of(self, class_name: str) -> list[str]:
        """All classes (transitively) below ``class_name``, excluding itself."""
        return [
            name
            for name in self.classes
            if name != class_name and self.is_subclass_of(name, class_name)
        ]

    def _derived(self, kind: str) -> dict:
        """The memo dict for one family of derived lookups; see
        ``_derived_cache``.  Returned dicts (and the values cached in them)
        must be treated as immutable by callers.

        Each lookup rebuilds the O(|classes|) validity token; that cost was
        already on the per-mutation path (the enforcement staleness probe
        calls :meth:`fingerprint` per operation), so this only raises its
        constant, and the token cannot be keyed on ``_version`` alone —
        :class:`ClassDef`-level additions bypass the schema's mutators."""
        token = self._validity_token()
        if self._derived_cache is None or self._derived_cache[0] != token:
            self._derived_cache = (token, {})
        return self._derived_cache[1].setdefault(kind, {})

    def ancestry(self, class_name: str) -> tuple[str, ...]:
        """Cached name-only inheritance chain (``class_name`` first)."""
        cache = self._derived("ancestry")
        chain = cache.get(class_name)
        if chain is None:
            chain = tuple(cls.name for cls in self.ancestors(class_name))
            cache[class_name] = chain
        return chain

    def subclass_closure(self, class_name: str) -> tuple[str, ...]:
        """Cached ``class_name`` plus all transitive subclasses — the classes
        whose objects populate the deep extent of ``class_name``."""
        cache = self._derived("closure")
        closure = cache.get(class_name)
        if closure is None:
            closure = (class_name, *self.subclasses_of(class_name))
            cache[class_name] = closure
        return closure

    def effective_attributes(self, class_name: str) -> dict[str, Attribute]:
        """Own plus inherited attributes (nearest declaration wins).

        The merged mapping is cached per schema state and shared between
        callers; treat it as read-only.
        """
        cache = self._derived("attributes")
        merged = cache.get(class_name)
        if merged is None:
            merged = {}
            for class_def in self.ancestors(class_name):
                for name, attribute in class_def.attributes.items():
                    merged.setdefault(name, attribute)
            cache[class_name] = merged
        return merged

    def effective_object_constraints(self, class_name: str) -> list[Constraint]:
        """Own plus inherited object constraints.

        The paper relies on object-constraint inheritance: a Proceedings
        object must satisfy the inherited ``oc1`` of Item.  Class constraints
        are *not* inheritable (Section 5.2.2) and are excluded here.
        """
        constraints: list[Constraint] = []
        for class_def in self.ancestors(class_name):
            constraints.extend(class_def.own_object_constraints())
        return constraints

    def class_constraints(self, class_name: str) -> list[Constraint]:
        """The class constraints declared on exactly this class."""
        return self.class_named(class_name).own_class_constraints()

    def attribute_type(self, class_name: str, attribute: str) -> Type:
        attributes = self.effective_attributes(class_name)
        if attribute not in attributes:
            raise SchemaError(
                f"class {class_name} has no attribute {attribute!r}"
            )
        return attributes[attribute].tm_type

    def reference_target(self, class_name: str, attribute: str) -> str | None:
        """The class a reference attribute points at, or ``None`` when the
        attribute is missing or not reference-typed.

        Used by the dependency extractor to type referential quantifier
        patterns (``exists i in Item | i.publisher = p``): a reference-count
        index is only maintainable when the attribute uniformly dereferences
        into one declared class.
        """
        attr = self.effective_attributes(class_name).get(attribute)
        if attr is None or not isinstance(attr.tm_type, ClassRef):
            return None
        return attr.tm_type.class_name

    # -- solver support ---------------------------------------------------------------

    def type_environment(self, class_name: str, max_depth: int = 3):
        """A solver :class:`~repro.constraints.solver.TypeEnvironment` for
        object constraints of ``class_name``.

        Dotted paths through reference attributes are expanded up to
        ``max_depth`` levels (``publisher.name`` resolves to the ``name``
        attribute of the referenced ``Publisher`` class).
        """
        from repro.constraints.solver import TypeEnvironment

        attribute_types: dict[str, Type] = {}
        self._collect_paths(class_name, "", attribute_types, max_depth)
        return TypeEnvironment(attribute_types, dict(self.constants))

    def _collect_paths(
        self,
        class_name: str,
        prefix: str,
        into: dict[str, Type],
        depth: int,
    ) -> None:
        if depth == 0 or not self.has_class(class_name):
            return
        for name, attribute in self.effective_attributes(class_name).items():
            path = f"{prefix}{name}"
            if path in into:
                continue
            into[path] = attribute.tm_type
            if isinstance(attribute.tm_type, ClassRef):
                self._collect_paths(
                    attribute.tm_type.class_name, f"{path}.", into, depth - 1
                )

    # -- change detection --------------------------------------------------------------

    def _validity_token(self) -> tuple:
        """A cheap token that changes whenever the schema structure can have
        changed: the schema-level mutation counter plus per-class
        attribute/constraint counts (which catch :class:`ClassDef`-level
        additions that bypass the schema's mutators).  Guards both the
        fingerprint cache and the derived-lookup caches."""
        return (
            self._version,
            len(self.database_constraints),
            len(self.constants),
            tuple(
                (name, len(cls.attributes), len(cls.constraints))
                for name, cls in self.classes.items()
            ),
        )

    def fingerprint(self) -> int:
        """A structural hash of everything constraint enforcement depends on.

        The incremental enforcement layer (:mod:`repro.engine.incremental`)
        caches a constraint-dependency index per schema and must notice when
        the schema changes underneath it — classes or attributes added,
        constraints attached, constants rebound (``set_constant`` is used by
        tests and the conformation pipeline to retune e.g. ``MAX``).

        Called on every mutation (staleness probe), so the full structural
        hash is cached behind a cheap validity token: the schema-level
        mutation counter plus per-class attribute/constraint counts.  The
        counts catch :class:`ClassDef`-level additions, which bypass the
        schema's mutators; replacing a constraint formula *in place* while
        keeping the same label count is not detected — nothing in the
        codebase does that (constraint lists are append-only, conformation
        rewrites into fresh schemas).
        """
        token = self._validity_token()
        if self._fingerprint_cache is not None:
            cached_token, cached_value = self._fingerprint_cache
            if cached_token == token:
                return cached_value
        pieces: list[Any] = [self.name]
        for name in sorted(self.classes):
            class_def = self.classes[name]
            pieces.append(
                (
                    name,
                    class_def.parent,
                    tuple(sorted(class_def.attributes)),
                    tuple(
                        (c.qualified_name, c.kind.value, hash(c.formula))
                        for c in class_def.constraints
                    ),
                )
            )
        pieces.append(
            tuple(
                (c.qualified_name, hash(c.formula))
                for c in self.database_constraints
            )
        )
        pieces.append(
            tuple(
                (name, _hashable(self.constants[name]))
                for name in sorted(self.constants)
            )
        )
        value = hash(tuple(pieces))
        self._fingerprint_cache = (token, value)
        return value

    # -- misc ----------------------------------------------------------------------------

    def all_constraints(self) -> Iterator[Constraint]:
        for class_def in self.classes.values():
            yield from class_def.constraints
        yield from self.database_constraints

    def root_classes(self) -> list[str]:
        return [name for name, cls in self.classes.items() if cls.parent is None]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatabaseSchema({self.name!r}, {len(self.classes)} classes)"


def _hashable(value: Any) -> Any:
    """Constants are numbers, strings or (frozen)sets of those."""
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(value, key=repr))
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    return value
