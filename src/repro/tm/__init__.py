"""The TM specification-language fragment used by the paper.

The paper expresses component databases in TM [BBZ93], "an object-oriented
specification language which allows for the expression of first-order
constraints on an object-oriented database".  This package implements the
fragment appearing in the paper: databases of classes with single
inheritance (``isa``), typed attributes, named constants, and the three
constraint sections (``object constraints`` / ``class constraints`` /
``Database constraints``).

* :mod:`~repro.tm.schema` — the schema object model with inheritance-aware
  lookups and solver type environments;
* :mod:`~repro.tm.parser` — parses the Figure 1 surface syntax;
* :mod:`~repro.tm.printer` — renders schemas back to that syntax;
* :mod:`~repro.tm.validate` — structural well-formedness checking.
"""

from repro.tm.schema import Attribute, ClassDef, DatabaseSchema
from repro.tm.parser import parse_database
from repro.tm.printer import schema_to_source
from repro.tm.validate import validate_schema

__all__ = [
    "Attribute",
    "ClassDef",
    "DatabaseSchema",
    "parse_database",
    "schema_to_source",
    "validate_schema",
]
