"""Rendering of schemas back to TM surface syntax (Figure 1 style)."""

from __future__ import annotations

from repro.constraints.printer import to_source
from repro.tm.schema import ClassDef, DatabaseSchema


def schema_to_source(schema: DatabaseSchema, include_constants: bool = True) -> str:
    """Render ``schema`` as parseable TM source.

    ``parse_database(schema_to_source(s))`` reproduces ``s`` up to constraint
    formula formatting — the round-trip property is covered by tests.
    """
    lines: list[str] = [f"Database {schema.name}", ""]
    if include_constants and schema.constants:
        lines.append("constants")
        for name, value in sorted(schema.constants.items()):
            lines.append(f"  {name} = {_constant(value)}")
        lines.append("")
    for class_def in schema.classes.values():
        lines.extend(_class_lines(class_def))
        lines.append("")
    if schema.database_constraints:
        lines.append("Database constraints")
        for constraint in schema.database_constraints:
            lines.append(f"  {constraint.name}: {to_source(constraint.formula)}")
        lines.append("")
    return "\n".join(lines)


def _class_lines(class_def: ClassDef) -> list[str]:
    header = f"Class {class_def.name}"
    if class_def.parent:
        header += f" isa {class_def.parent}"
    lines = [header]
    if class_def.attributes:
        lines.append("attributes")
        width = max(len(name) for name in class_def.attributes)
        for attribute in class_def.attributes.values():
            lines.append(
                f"  {attribute.name.ljust(width)} : {attribute.tm_type.describe()}"
            )
    object_constraints = class_def.own_object_constraints()
    if object_constraints:
        lines.append("object constraints")
        for constraint in object_constraints:
            lines.append(f"  {constraint.name}: {to_source(constraint.formula)}")
    class_constraints = class_def.own_class_constraints()
    if class_constraints:
        lines.append("class constraints")
        for constraint in class_constraints:
            lines.append(f"  {constraint.name}: {to_source(constraint.formula)}")
    lines.append(f"end {class_def.name}")
    return lines


def _constant(value) -> str:
    if isinstance(value, frozenset):
        rendered = ", ".join(_constant(v) for v in sorted(value, key=repr))
        return "{" + rendered + "}"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)
