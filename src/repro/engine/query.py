"""Predicate queries over class extents.

A thin query facility: filter a (deep) class extent by a constraint-language
predicate.  Used by the examples and by the integration layer's rule matcher.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.constraints.ast import Node
from repro.constraints.evaluate import evaluate
from repro.constraints.parser import parse_expression

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.objects import DBObject
    from repro.engine.store import ObjectStore


def select(
    store: "ObjectStore",
    class_name: str,
    predicate: "str | Node | Callable[[DBObject], bool] | None" = None,
    deep: bool = True,
) -> "list[DBObject]":
    """The objects of ``class_name`` satisfying ``predicate``.

    ``predicate`` may be constraint-language source (``"rating >= 4"``), a
    parsed formula, a Python callable, or ``None`` (whole extent).
    """
    extent = store.extent(class_name, deep=deep)
    if predicate is None:
        return extent
    if isinstance(predicate, str):
        predicate = parse_expression(predicate, constants=store.schema.constants)
    if isinstance(predicate, Node):
        formula = predicate
        return [
            obj
            for obj in extent
            if evaluate(formula, store.eval_context(current=obj))
        ]
    return [obj for obj in extent if predicate(obj)]
