"""Snapshot-free transactions with deferred, delta-driven checking.

Multi-object updates (e.g. inserting a Publisher and the Item referencing it
under the referential database constraint ``db1``) need constraint checking
deferred to commit time; a :class:`Transaction` disables per-operation
enforcement, and validates at exit, rolling back on failure.

Both sides of the transaction are proportional to what it *touched*, not to
the store size:

* Rollback uses an **undo log** kept by the store (oid → pre-image, recorded
  on first touch) instead of a whole-store snapshot, so entering a
  transaction is O(1) and rolling back is O(touched objects).

* Commit-time validation is **delta-driven** on incremental stores: the
  store accumulates a :class:`~repro.engine.incremental.MutationDelta`
  across the transaction's operations, and only the constraints whose read
  set (per the cached
  :class:`~repro.engine.incremental.ConstraintDependencyIndex`) intersects
  the delta are re-checked.  The transaction falls back to full revalidation
  when the schema changed since the store's last validated state (detected
  by fingerprint comparison — whether the change happened before or during
  the transaction), or when the store was created with
  ``incremental=False``.

Transactions nest: an inner transaction inside an already-deferred store
keeps deferring to the *outermost* commit, which validates everything.  An
inner commit merges its undo log into the outer one (first-touch pre-images
win — insert pre-images are ``None`` entries and merge like any other, so
an object inserted in an inner transaction is removed again when the outer
transaction rolls back); an inner rollback restores the state and dirty set
captured at the inner entry, so reverted operations neither leak into nor
hide from the outer commit.

On durable stores each transaction also brackets the write-ahead log:
``begin`` at entry (written lazily with the first logged operation),
``commit`` or ``abort`` at exit.  Recovery applies an operation only once
every enclosing bracket committed, mirroring the undo-log merge exactly
(:mod:`repro.engine.wal`).

Concurrency: a transaction holds the store's coarse writer lock for its
whole extent (entry to exit), so there is exactly one writer at a time and
no reader of the *live* store can interleave with a half-applied
transaction.  Concurrent readers go through ``store.snapshot()`` instead,
which never takes the lock; the outermost commit publishes its touched set
to the snapshot history before releasing.  On ``sync=True`` durable stores
the commit's fsync is awaited *after* the lock is released, so concurrent
committers coalesce into one fsync (group commit).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConstraintViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.store import ObjectStore


class Transaction:
    """Context manager: ``with store.transaction(): ...``"""

    def __init__(self, store: "ObjectStore", validate: bool = True):
        self.store = store
        #: Commit-time validation switch.  ``False`` hands consistency to
        #: the caller — the commit router validates shard-core brackets
        #: against the merged cross-shard state itself.
        self.validate = validate
        self._was_deferred = False
        self._outer_undo: dict | None = None
        self._outer_delta = None
        self._delta_mark = None
        #: Undo log captured by :meth:`prepare_commit` for the 2PC decision
        #: (:meth:`finish_prepared` publishes or rolls it back).
        self._prepared_undo: dict | None = None
        #: Durability ticket of this transaction's abort marker, when an
        #: exit path raised after flushing one; redeemed best-effort.
        self._abort_ticket: "int | None" = None

    def __enter__(self) -> "Transaction":
        store = self.store
        # The writer lock is held from here until __exit__ returns: the
        # transaction IS the writer for its whole extent.
        store._lock.acquire()
        try:
            self._was_deferred = store._deferred
            store._deferred = True
            self._outer_undo = store._undo
            store._undo = {}
            store._undo_stack.append(store._undo)
            if store._wal is not None:
                # Open a log bracket; the marker itself is written lazily,
                # with the transaction's first logged operation.
                store._wal.begin()
            if self._was_deferred:
                # Nested: keep accumulating into the outer delta, but
                # remember where we came in so a rollback can discard our
                # contribution.
                self._delta_mark = (
                    store._delta.copy() if store._delta is not None else None
                )
            else:
                self._outer_delta = store._delta
                from repro.engine.incremental import MutationDelta

                store._delta = MutationDelta()
        except BaseException:
            store._lock.release()
            raise
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        store = self.store
        ticket = None
        try:
            ticket = self._exit_locked(exc_type)
        finally:
            store._lock.release()
            if self._abort_ticket is not None:
                # A raising exit path (commit-time violation) flushed an
                # abort marker: redeem its ticket best-effort — recovery
                # discards open and aborted brackets alike, so a failed
                # fsync here must not mask the propagating violation.
                try:
                    store._await_durability(self._abort_ticket)
                except Exception:
                    pass
        # The fsync wait happens with the writer lock released, so other
        # committers can append behind us and share one fsync.
        store._await_durability(ticket)
        return False

    def _exit_locked(self, exc_type) -> "int | None":
        store = self.store
        store._deferred = self._was_deferred
        store._undo_stack.pop()
        if exc_type is not None:
            self._rollback()
            if store._wal is not None:
                return store._wal.abort_transaction()
            return None
        undo = store._undo
        if self._was_deferred:
            # Inner commit: the outermost transaction validates.  Merge the
            # undo log outward; the outer transaction's earlier pre-images
            # take precedence over ours.
            if self._outer_undo is not None:
                for oid, entry in undo.items():
                    self._outer_undo.setdefault(oid, entry)
            store._undo = self._outer_undo
            if store._wal is not None:
                # Close the log bracket; recovery merges our operations
                # into the enclosing transaction's buffer the same way.
                store._wal.commit_transaction()
            return None
        store._undo = self._outer_undo
        delta = store._delta
        store._delta = self._outer_delta
        if store.enforce and self.validate:
            violations = self._validate(delta)
            if violations:
                # Conflict cores must be extracted before the undo below:
                # rollback destroys the violating state they explain.
                cores = store._cores_for(violations)
                self._apply_undo(undo)
                if store._wal is not None:
                    self._abort_ticket = store._wal.abort_transaction()
                raise ConstraintViolation(
                    "transaction",
                    "; ".join(
                        violation.describe() for violation in violations
                    ),
                    violations=violations,
                    cores=cores,
                )
        ticket = None
        if store._wal is not None:
            try:
                ticket = store._wal.commit_transaction()
            except BaseException:
                # The commit marker (or its flush) failed: the bracket may
                # be open in the durable log, so recovery will discard the
                # transaction — memory must drop it too, or it would run
                # ahead of the durable prefix.  The log poisoned itself;
                # undo everything touched and propagate.
                self._apply_undo(undo)
                raise
        # Publication happens after the flushed commit marker: snapshots
        # only ever show transactions the durable prefix can replay.  The
        # checkpoint policy runs after publication — its failure abandons
        # the unredeemed ticket (so close() cannot wait on it forever) but
        # the accepted commit stands.
        self._publish(undo)
        if store._wal is not None:
            try:
                if store._wal.should_checkpoint():
                    store.checkpoint()
            except BaseException:
                store._wal.abandon_ticket(ticket)
                raise
        return ticket

    # -- two-phase commit (router-driven) -----------------------------------------
    #
    # A cross-shard transaction cannot use the normal __exit__ commit: each
    # shard core's WAL bracket must close with a *prepare* marker, stay
    # undecided until every participant prepared, and only then learn its
    # fate (see repro.engine.sharding).  The router drives that split
    # life-cycle through the two methods below instead of __exit__; they are
    # only valid on an outermost transaction of their store.

    def prepare_commit(self, gid: str) -> "int | None":
        """2PC phase 1: close this store's WAL bracket with a ``prepare``
        marker for global transaction ``gid`` and flush it.

        Transaction bookkeeping (deferred flag, undo stack, dirty set) is
        unwound as on a normal commit, but the in-memory mutations stay
        applied, nothing is published to snapshots, and the writer lock
        stays held — :meth:`finish_prepared` completes or reverts once the
        coordinator decides.  Validation is the router's job (these
        transactions are created with ``validate=False``).  Returns the
        group-commit ticket of the prepare flush, if any; if the flush
        raises, the caller must still call ``finish_prepared(False)`` to
        roll the memory image back and release the lock.
        """
        store = self.store
        store._deferred = self._was_deferred
        store._undo_stack.pop()
        self._prepared_undo = store._undo
        store._undo = self._outer_undo
        store._delta = self._outer_delta
        if store._wal is not None:
            return store._wal.prepare_transaction(gid)
        return None

    def finish_prepared(self, ok: bool) -> None:
        """2PC phase 3: apply the coordinator's decision to this store.

        ``ok=True`` publishes the prepared mutations to the snapshot
        history (they are already applied in memory and durably prepared);
        ``ok=False`` rolls them back.  Releases the writer lock taken at
        ``__enter__`` either way — the transaction is finished.  The
        ``resolve`` WAL marker is the router's to write (it owns the
        ordering against the coordinator's ``decide`` record).
        """
        store = self.store
        try:
            undo = self._prepared_undo
            if undo is not None:
                if ok:
                    self._publish(undo)
                else:
                    self._apply_undo(undo)
        finally:
            self._prepared_undo = None
            store._lock.release()

    def _publish(self, undo: dict) -> None:
        """Thread the committed touched set into the snapshot history: the
        post-state of every object the transaction touched (tombstones for
        deletions), read off the live store under the still-held lock."""
        store = self.store
        if not store._concurrency.active or not undo:
            return
        changes = []
        for oid, entry in undo.items():
            obj = store._objects.get(oid)
            if obj is not None:
                changes.append((oid, obj.class_name, obj.state))
            elif entry is not None:
                changes.append((oid, entry[0].class_name, None))
            # entry None + object gone: inserted and deleted inside the
            # transaction — no committed version ever existed.
        store._publish_commit(changes)

    def _validate(self, delta) -> list:
        """Commit-time validation: delta-driven when possible, full otherwise.

        Returns structured :class:`~repro.engine.enforcement.Violation`
        objects, so a failing commit can name every violated constraint on
        the raised exception.  Full revalidation runs when the store was
        created with ``incremental=False`` or when the schema fingerprint
        differs from the one the store last validated under — whether the
        change happened mid-transaction or before it (a rebound constant
        can invalidate constraints with no data delta)."""
        store = self.store
        use_full = (
            not store.incremental
            or delta is None
            or store._schema_changed_since_validation()
        )
        if use_full:
            return store.audit()
        from repro.engine.incremental import delta_violations

        return delta_violations(store, delta)

    def _rollback(self) -> None:
        store = self.store
        undo = store._undo
        store._undo = self._outer_undo
        if undo:
            self._apply_undo(undo)
        # Restore the dirty set too: reverted operations must not force
        # (or worse, mask) re-checks at the outer commit.
        if self._was_deferred:
            store._delta = self._delta_mark
        else:
            store._delta = self._outer_delta

    def _apply_undo(self, undo: dict) -> None:
        """Restore every touched object to its logged pre-image.

        Pre-images keep object identity: an updated object gets its old
        state dict back in place, and a deleted object is re-registered as
        the *same* :class:`DBObject` instance, so references held outside
        the store stay valid across a rollback.

        Maintained indexes roll back alongside, via the *inverse* mutation
        hook per touched object — an insert is undone as a delete, a delete
        as an insert, an update as the reverse state transition — keeping
        rollback O(touched), index maintenance included.  Reference-count
        indexes participate through the same hooks: a resurrected object
        re-joins the referenced side (its referrers stop dangling) and
        re-counts its own reference slots, in whichever order the undo log
        replays the touched objects.
        """
        store = self.store
        indexes = store._indexes
        resurrected = False
        for oid, entry in undo.items():
            if entry is None:
                obj = store._objects.pop(oid, None)
                if obj is not None:
                    store._direct_extents[obj.class_name].discard(oid)
                    if indexes is not None:
                        indexes.on_delete(obj)
            else:
                obj, state = entry
                if oid in store._objects:
                    if indexes is not None and obj.state is not state:
                        indexes.on_update(obj, obj.state, state)
                    obj.state = state
                else:
                    obj.state = state
                    resurrected = True
                    store._objects[oid] = obj
                    store._direct_extents[obj.class_name].add(oid)
                    if indexes is not None:
                        indexes.on_insert(obj)
        if resurrected:
            store._restore_object_order()
