"""Snapshot transactions with deferred constraint checking.

Multi-object updates (e.g. inserting a Publisher and the Item referencing it
under the referential database constraint ``db1``) need constraint checking
deferred to commit time; a :class:`Transaction` snapshots the store, disables
per-operation enforcement, and validates everything at exit, rolling back on
failure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConstraintViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.store import ObjectStore


class Transaction:
    """Context manager: ``with store.transaction(): ...``"""

    def __init__(self, store: "ObjectStore"):
        self.store = store
        self._snapshot_objects: dict | None = None
        self._snapshot_extents: dict | None = None
        self._was_deferred = False

    def __enter__(self) -> "Transaction":
        store = self.store
        self._snapshot_objects = {
            oid: (obj.class_name, dict(obj.state))
            for oid, obj in store._objects.items()
        }
        self._snapshot_extents = {
            name: set(oids) for name, oids in store._direct_extents.items()
        }
        self._was_deferred = store._deferred
        store._deferred = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        store = self.store
        store._deferred = self._was_deferred
        if exc_type is not None:
            self._rollback()
            return False
        if store.enforce and not store._deferred:
            violations = store.check_all()
            if violations:
                self._rollback()
                raise ConstraintViolation(
                    "transaction", "; ".join(violations)
                )
        return False

    def _rollback(self) -> None:
        from repro.engine.objects import DBObject

        store = self.store
        assert self._snapshot_objects is not None
        assert self._snapshot_extents is not None
        survivors: dict[str, DBObject] = {}
        for oid, (class_name, state) in self._snapshot_objects.items():
            existing = store._objects.get(oid)
            if existing is not None:
                existing.state = state
                survivors[oid] = existing
            else:
                survivors[oid] = DBObject(oid, class_name, state)
        store._objects = survivors
        store._direct_extents = {
            name: set(oids) for name, oids in self._snapshot_extents.items()
        }
