"""Explainable violations: reason traces and subset-minimal conflict cores.

A :class:`~repro.constraints.evaluate.ReasonTrace` says which reads forced a
verdict; this module turns a failing check into a *conflict core* — a
subset-minimal set of objects that, together with the constraint, still
conflicts when everything else is masked out.  The construction is the
deletion-based MUS (minimal unsatisfiable subset) extraction of the SAT
explanation literature, transplanted to integrity constraints in the spirit
of abductive repair analysis (Arieli et al.) and integrity checking for
knowledge bases (Cruz-Filipe et al.; see PAPERS.md):

1. *Seed*: re-evaluate the already-compiled closure with scan semantics
   (``indexes=None``) and a trace attached; the trace's support set is every
   object the verdict read.
2. *Shrink*: repeatedly re-evaluate with candidate objects masked out of the
   store view (their extents membership removed, references to them failing),
   dropping whole chunks while the conflict persists — a ddmin-flavoured
   pass — then singleton passes to a fixpoint.
3. *Certify*: the result is subset-minimal **in isolation**: the masked view
   containing exactly the core still violates the constraint, and removing
   any single member resolves it.  (MUSes are not unique; deletion finds
   *one* minimal core, not the smallest.)

Conflict is judged on the masked view: a falsy verdict for cores born from a
falsy verdict, an evaluation error for cores born from an evaluation error
(``verdict="error"``).  Masking an object a kept member still references
raises inside evaluation; for falsy-born cores that counts as *resolved* —
which is exactly what keeps, say, the referenced Publisher inside the core
of a dangling-reference violation.

Complexity: with ``s = |support|`` and ``k = |core|``, the chunked pass does
O(k·log s) conflict tests and the fixpoint pass O(k²) in the worst case;
every test is one evaluation over a view of ≤ s objects.  Quantifier tracing
records only decisive iterations, so ``s`` is usually far below the extent
size (a dangling reference seeds 1–2 objects at any store size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Mapping
from typing import Any, TYPE_CHECKING

from repro.constraints.evaluate import (
    EvalContext,
    ReasonTrace,
    compiled,
)
from repro.constraints.model import Constraint, ConstraintKind
from repro.errors import EngineError, EvaluationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.store import ObjectStore

#: Same widened catch as enforcement: evaluation failures count as verdicts,
#: not crashes (``ConstraintViolation`` is never raised by ``evaluate``).
_EVAL_FAILURES = (EvaluationError, EngineError)

#: Safety valve on shrink work: conflict tests per core.  Generously above
#: anything a traced support set produces (decisive tracing keeps supports
#: small); a core that hits it is returned as-is with ``minimal=False``.
MAX_SHRINK_CHECKS = 4096


# ---------------------------------------------------------------------------
# detection-time traces
# ---------------------------------------------------------------------------


def failure_trace(
    store: "ObjectStore",
    constraint: Constraint,
    current: Any = None,
    self_extent_class: str | None = None,
) -> ReasonTrace | None:
    """The reason trace of one failing check, re-run exactly as detected.

    Uses the store's own evaluation context — *including its index probes* —
    so the cost matches the detection cost (an O(1) probe stays an O(1)
    probe; this is what keeps traced failure latency within a small factor
    of untraced).  Scan-level object support for core extraction is computed
    separately by :func:`extract_core`, which forces scan semantics.

    Returns ``None`` when the store has explanations disabled.
    """
    if not getattr(store, "explain", True):
        return None
    trace = ReasonTrace()
    ctx = store.eval_context(
        current=current, self_extent_class=self_extent_class
    )
    ctx.trace = trace
    try:
        compiled(constraint.formula)(ctx)
    except _EVAL_FAILURES as exc:
        trace.record("error", str(exc), env=getattr(exc, "bindings", ()))
    return trace


# ---------------------------------------------------------------------------
# masked evaluation
# ---------------------------------------------------------------------------


class _MaskedExtents(Mapping):
    """Class name → extent restricted to a visible-oid set (lazy per class)."""

    def __init__(self, store: "ObjectStore", visible: frozenset):
        self._store = store
        self._visible = visible

    def __getitem__(self, class_name: str) -> list:
        if not self._store.schema.has_class(class_name):
            raise KeyError(class_name)
        return [
            obj
            for obj in self._store.extent(class_name)
            if obj.oid in self._visible
        ]

    def __contains__(self, class_name: object) -> bool:
        return isinstance(class_name, str) and self._store.schema.has_class(
            class_name
        )

    def __iter__(self):
        return iter(self._store.schema.classes)

    def __len__(self) -> int:
        return len(self._store.schema.classes)


def masked_context(
    store: "ObjectStore",
    visible: frozenset,
    current: Any = None,
    self_extent_class: str | None = None,
    trace: ReasonTrace | None = None,
) -> EvalContext:
    """An evaluation context over the sub-store of ``visible`` oids.

    Scan semantics (``indexes=None`` — the maintained indexes describe the
    *full* store, not the masked view).  Extents drop masked objects;
    dereferencing an attribute that resolves to a masked object raises
    ``EngineError``, exactly as if the object had been deleted.
    """

    def get_attr(obj: Any, name: str) -> Any:
        value = store.get_attr(obj, name)
        oid = getattr(value, "oid", None)
        if isinstance(oid, str) and oid not in visible:
            raise EngineError(
                f"reference {name!r} of {getattr(obj, 'oid', obj)!r} "
                f"resolves to masked object {oid!r}"
            )
        return value

    extents = _MaskedExtents(store, visible)
    self_extent: Iterable[Any] = ()
    if self_extent_class is not None:
        self_extent = extents[self_extent_class]
    return EvalContext(
        current=current,
        extents=extents,
        self_extent=self_extent,
        self_extent_class=self_extent_class,
        constants=store.schema.constants,
        get_attr=get_attr,
        indexes=None,
        trace=trace,
    )


def constraint_conflicts(
    store: "ObjectStore",
    constraint: Constraint,
    visible: frozenset,
    errors_conflict: bool = False,
    trace: ReasonTrace | None = None,
) -> bool:
    """Does ``constraint`` still fail on the sub-store of ``visible`` oids?

    Object constraints are checked on every visible member of the owner's
    deep extent (the core is about *objects*, not about one pre-chosen
    culprit).  ``errors_conflict`` selects the conflict mode: cores born
    from an evaluation error count errors as conflicts; cores born from a
    falsy verdict count them as resolved.
    """
    run = compiled(constraint.formula)
    if constraint.kind is ConstraintKind.OBJECT:
        owner = constraint.owner
        if owner is None or not store.schema.has_class(owner):
            return False
        for obj in store.extent(owner):
            if obj.oid not in visible:
                continue
            try:
                verdict = run(
                    masked_context(store, visible, current=obj, trace=trace)
                )
            except _EVAL_FAILURES as exc:
                if errors_conflict:
                    if trace is not None:
                        trace.record(
                            "error", str(exc), env=getattr(exc, "bindings", ())
                        )
                    return True
                continue
            if not verdict:
                return True
        return False
    owner = (
        constraint.owner if constraint.kind is ConstraintKind.CLASS else None
    )
    ctx = masked_context(store, visible, self_extent_class=owner, trace=trace)
    try:
        verdict = run(ctx)
    except _EVAL_FAILURES as exc:
        if errors_conflict and trace is not None:
            trace.record("error", str(exc), env=getattr(exc, "bindings", ()))
        return errors_conflict
    return not verdict


# ---------------------------------------------------------------------------
# deletion-based shrinking
# ---------------------------------------------------------------------------


def shrink(
    members: Iterable[str],
    conflicts: Callable[[frozenset], bool],
    max_checks: int = MAX_SHRINK_CHECKS,
) -> tuple[list[str], int, bool]:
    """Shrink ``members`` to a subset-minimal set on which ``conflicts``
    still holds; returns ``(core, checks_spent, minimal)``.

    Precondition: ``conflicts(frozenset(members))`` is True.  Chunked
    deletion first (drop half, then quarters, ...), then singleton passes
    repeated to a fixpoint — the fixpoint pass is what certifies
    subset-minimality: a full sweep in which no single member could be
    removed.  ``minimal=False`` only when the check budget ran out.
    """
    current = list(dict.fromkeys(members))
    checks = 0
    chunk = len(current) // 2
    while chunk > 1:
        index = 0
        while index < len(current):
            if checks >= max_checks:
                return current, checks, False
            candidate = current[:index] + current[index + chunk :]
            checks += 1
            if conflicts(frozenset(candidate)):
                current = candidate
            else:
                index += chunk
        chunk //= 2
    while True:
        removed = False
        for member in list(current):
            if checks >= max_checks:
                return current, checks, False
            candidate = [m for m in current if m != member]
            checks += 1
            if conflicts(frozenset(candidate)):
                current = candidate
                removed = True
        if not removed:
            return current, checks, True


# ---------------------------------------------------------------------------
# conflict cores
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoreMember:
    """One object of a conflict core, with its explanation metadata."""

    oid: str
    class_name: str
    #: Binding chain that put the object in scope during the isolated
    #: re-evaluation, as ``((var, oid), ...)``; empty for direct reads.
    bindings: tuple = ()
    #: Attribute names the verdict read from this object.
    reads: tuple = ()

    def describe(self) -> str:
        text = f"{self.oid} ({self.class_name})"
        if self.reads:
            text += f"  reads: {', '.join(self.reads)}"
        if self.bindings:
            chain = " -> ".join(f"{var}={oid}" for var, oid in self.bindings)
            text += f"  via {chain}"
        return text


@dataclass(frozen=True)
class ConflictCore:
    """A subset-minimal set of objects that conflicts with one constraint.

    ``verdict`` records the conflict mode (``"falsy"`` or ``"error"``);
    ``minimal`` is False only when shrinking hit its check budget;
    ``checks`` counts the masked re-evaluations spent.  ``trace`` is the
    reason trace of the *isolated* core (evaluated on the masked view
    containing exactly the members), and ``constants`` the schema constants
    that verdict read — both excluded from equality so differential tests
    can compare cores structurally.
    """

    constraint_name: str
    kind: str
    members: tuple
    verdict: str = "falsy"
    minimal: bool = True
    checks: int = 0
    trace: ReasonTrace | None = field(default=None, compare=False, repr=False)
    constants: tuple = field(default=(), compare=False, repr=False)
    constraint: Constraint | None = field(
        default=None, compare=False, repr=False
    )

    def oids(self) -> tuple[str, ...]:
        return tuple(member.oid for member in self.members)

    def describe(self) -> str:
        mode = "minimal" if self.minimal else "shrunk (budget hit)"
        lines = [
            f"{self.constraint_name} ({self.kind} constraint, verdict "
            f"{self.verdict}): {len(self.members)} object(s), {mode}"
        ]
        if self.members:
            lines.append("  removing any one member resolves the conflict:")
            lines.extend(f"    - {member.describe()}" for member in self.members)
        else:
            lines.append(
                "  conflict persists on the empty view: no deletion repairs "
                "it (the constraint demands objects that do not exist)"
            )
        if self.constants:
            lines.append(f"  constants read: {', '.join(self.constants)}")
        return "\n".join(lines)


def extract_core(
    store: "ObjectStore",
    constraint: Constraint,
    oid: str | None = None,
    max_checks: int = MAX_SHRINK_CHECKS,
) -> ConflictCore | None:
    """The conflict core of ``constraint`` on the store's current state.

    ``oid`` anchors object-constraint extraction to a known culprit (the
    audit's finding); it is folded into the seed support.  Returns ``None``
    when the constraint does not actually conflict on the full store (e.g.
    the violation was repaired since it was reported).
    """
    visible_all = frozenset(store._objects)
    run = compiled(constraint.formula)
    seed_trace = ReasonTrace()
    verdict_mode: str | None = None
    anchor: str | None = None

    # Seed: scan-semantics traced evaluation of the full store (the
    # maintained indexes answer probes about the *full* store, so masking
    # must use scan semantics throughout — seed included, for agreement).
    if constraint.kind is ConstraintKind.OBJECT:
        owner = constraint.owner
        if owner is None or not store.schema.has_class(owner):
            return None
        candidates = store.extent(owner)
        if oid is not None:
            # The audit's culprit first, so its trace seeds the core.
            candidates = sorted(candidates, key=lambda o: o.oid != oid)
        for obj in candidates:
            trace = ReasonTrace()
            ctx = masked_context(store, visible_all, current=obj, trace=trace)
            try:
                verdict = run(ctx)
            except _EVAL_FAILURES as exc:
                trace.record(
                    "error", str(exc), env=getattr(exc, "bindings", ())
                )
                verdict_mode, seed_trace, anchor = "error", trace, obj.oid
                break
            if not verdict:
                verdict_mode, seed_trace, anchor = "falsy", trace, obj.oid
                break
    else:
        self_extent_class = (
            constraint.owner
            if constraint.kind is ConstraintKind.CLASS
            else None
        )
        ctx = masked_context(
            store,
            visible_all,
            self_extent_class=self_extent_class,
            trace=seed_trace,
        )
        try:
            if not run(ctx):
                verdict_mode = "falsy"
        except _EVAL_FAILURES as exc:
            seed_trace.record(
                "error", str(exc), env=getattr(exc, "bindings", ())
            )
            verdict_mode = "error"
    if verdict_mode is None:
        return None

    errors_conflict = verdict_mode == "error"

    def conflicts(visible: frozenset) -> bool:
        return constraint_conflicts(store, constraint, visible, errors_conflict)

    # Support from the trace, widened to the whole store if the decisive
    # subset alone does not conflict (conservative, rarely taken).
    support = [o for o in seed_trace.support() if o in visible_all]
    if anchor is not None and anchor not in support:
        support.insert(0, anchor)
    if not conflicts(frozenset(support)):
        if not conflicts(visible_all):
            return None
        support = sorted(visible_all)

    core_oids, checks, minimal = shrink(support, conflicts, max_checks)

    # Certify + explain the isolated core: one traced evaluation on the
    # masked view containing exactly the members.
    iso_trace = ReasonTrace()
    constraint_conflicts(
        store,
        constraint,
        frozenset(core_oids),
        errors_conflict,
        trace=iso_trace,
    )
    members = tuple(
        CoreMember(
            oid=member,
            class_name=store.get(member).class_name,
            bindings=iso_trace.chain_of(member),
            reads=iso_trace.reads_of(member),
        )
        for member in sorted(core_oids)
    )
    return ConflictCore(
        constraint_name=constraint.qualified_name,
        kind=constraint.kind.value,
        members=members,
        verdict=verdict_mode or "falsy",
        minimal=minimal,
        checks=checks,
        trace=iso_trace,
        constants=iso_trace.constants_read(),
        constraint=constraint,
    )


def explain_violations(
    store: "ObjectStore", violations: Iterable[Any] | None = None
) -> list[ConflictCore]:
    """Conflict cores for the store's standing violations.

    ``violations`` defaults to a fresh ``store.audit()``.  Findings that
    carry a ``constraint`` (the audit's do) are explained directly; bare
    names are resolved against the schema.  Cores are deduplicated on
    ``(constraint, member set)`` — several findings of one class constraint
    collapse into the one core that explains them.
    """
    if violations is None:
        violations = store.audit()
    cores: list[ConflictCore] = []
    seen: set = set()
    for violation in violations:
        constraint = getattr(violation, "constraint", None)
        if constraint is None:
            name = getattr(violation, "constraint_name", None) or str(violation)
            constraint = _constraint_named(store, name)
        if constraint is None:
            continue
        core = extract_core(
            store, constraint, oid=getattr(violation, "oid", None)
        )
        if core is None:
            continue
        key = (core.constraint_name, frozenset(core.oids()))
        if key not in seen:
            seen.add(key)
            cores.append(core)
    return cores


def _constraint_named(store: "ObjectStore", name: str) -> Constraint | None:
    for constraint in _all_constraints(store):
        if constraint.qualified_name == name or constraint.name == name:
            return constraint
    return None


def _all_constraints(store: "ObjectStore") -> Iterable[Constraint]:
    for class_def in store.schema.classes.values():
        yield from class_def.own_object_constraints()
        yield from class_def.own_class_constraints()
    yield from store.schema.database_constraints
