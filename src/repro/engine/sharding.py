"""Shard-partitioned stores: shard cores behind a constraint-aware router.

An :class:`~repro.engine.store.ObjectStore` already factors cleanly into a
*shard core* — extents, maintained indexes, undo logs, a write-ahead log and
one writer lock, with no knowledge of any store beyond itself.  This module
adds the missing half: a :class:`ShardedStore` that partitions a schema's
classes over ``N`` independent cores and routes every operation to the
smallest set of shards that can decide it.

**Placement** (:func:`plan_placement`).  Classes are grouped by the edges a
constraint check may traverse without leaving its store: inheritance (an
object of a subclass is a member of every ancestor's extent) and reference
attributes (dereferencing must find the target in the same core).  Each
connected group is pinned whole to one shard, round-robin.  A class may
instead be *spread* — its extent distributed over every shard for write
scaling — but only when it is structurally alone: no inheritance relatives,
no reference attributes, never referenced.  The layout is persisted in a
``shards.json`` manifest so reopening reuses it verbatim.

**Constraint routing** (:func:`~repro.engine.incremental.classify_constraints`).
Every constraint is classified from its statically extracted read set:

* *shard-local* — all reads land in one core; that core enforces it alone
  through its ``constraint_scope`` and the router never sees it.
* *mergeable* — reads span shards but are covered by maintained index
  summaries: the router's merged probe sums per-shard ``sum``/``count``
  partials, takes min/max of per-shard candidates, and totals per-shard
  live/dangling reference counts instead of scanning.
* *global* — reads span shards with no covering summary; the router
  evaluates against the merged multi-shard view.

The router itself duck-types the store interface the enforcement layers
consume (``get``/``extent``/``eval_context``/``dependency_index``/...), so
:mod:`repro.engine.enforcement` and :mod:`repro.engine.incremental` run
unmodified against the merged state.

**Commit protocol.**  Single-shard operations whose affected constraints are
all in the target core's scope commit exactly like a standalone store — one
core lock, one WAL bracket, one group-commit fsync; the router adds a dict
lookup.  Operations affecting cross-shard constraints quiesce every core and
validate against the merged view before the touching core's bracket closes.
Transactions that *wrote* to two or more durable shards commit via
two-phase-commit brackets across the shard WALs (see
:mod:`repro.engine.wal`): every participant flushes a ``prepare`` marker,
the lowest-numbered participant durably logs the ``decide`` record, and each
participant settles with a ``resolve`` marker.  Recovery feeds every shard's
decided outcomes back to the others (presumed abort for gids no log
decided), so a crash between markers never commits a transaction on one
shard and discards it on another.  On ``sync=False`` stores this atomicity
is exactly as best-effort as single-store durability: the ordering of
cross-file OS writeback is not controlled, only the marker ordering within
each log.
"""

from __future__ import annotations

import json
import threading
import uuid
from collections.abc import Iterable, Mapping
from pathlib import Path
from typing import Any

from repro.constraints.evaluate import INDEX_MISS, VACUOUS, EvalContext
from repro.engine.indexes import oid_shard, oid_sort_key
from repro.engine.objects import DBObject
from repro.engine.store import ObjectStore, _ExtentView, _LazyExtent
from repro.engine.wal import load_image
from repro.errors import (
    ConstraintViolation,
    EngineError,
    SchemaError,
    ShardingError,
    UnknownClassError,
    UnknownObjectError,
)
from repro.tm.schema import DatabaseSchema
from repro.types.primitives import ClassRef

#: Name of the shard-layout manifest inside a sharded store root.
MANIFEST_NAME = "shards.json"
_MANIFEST_FORMAT = 1


def shard_directory(root: "str | Path", shard: int) -> Path:
    """The durable directory of one shard core under a sharded store root."""
    return Path(root) / f"shard-{int(shard)}"


# ---------------------------------------------------------------------------
# placement planning
# ---------------------------------------------------------------------------


def plan_placement(
    schema: DatabaseSchema,
    shard_count: int,
    spread: "Iterable[str]" = (),
    existing: "Mapping[str, int] | None" = None,
) -> dict[str, int]:
    """Assign every class of ``schema`` to a home shard.

    Classes connected by inheritance or reference attributes must co-locate
    (a shard core's constraint checks dereference and walk extents inside
    its own store), so the unit of placement is the connected group, not the
    class.  Groups are assigned round-robin in schema declaration order —
    deterministic, so every reopen of the same schema plans the same layout.

    ``spread`` classes are excluded from the returned placement: their
    extents are distributed across all shards by the router's insert cursor.
    A spread class must be structurally alone — no parent, no subclasses,
    no reference attributes, and never the target of one; anything else
    would make the *core-local* checks of other classes read across shards.

    ``existing`` seeds group assignments (the persisted manifest of a
    reopened store, possibly missing classes added since): every group with
    a previously placed member keeps that shard, and the whole mapping is
    re-validated against the current schema.  Raises :class:`ShardingError`
    when the seed splits a connected group across shards or names a shard
    outside ``range(shard_count)``.
    """
    shard_count = int(shard_count)
    if shard_count < 1:
        raise ShardingError(f"shard count must be at least 1, got {shard_count}")
    spread = frozenset(spread)
    for name in sorted(spread):
        if name not in schema.classes:
            raise ShardingError(
                f"cannot spread unknown class {name!r} "
                f"(database {schema.name})"
            )

    parent_of = {name: name for name in schema.classes}

    def find(name: str) -> str:
        root = name
        while parent_of[root] != root:
            root = parent_of[root]
        while parent_of[name] != root:  # path compression
            parent_of[name], name = root, parent_of[name]
        return root

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent_of[root_b] = root_a

    referenced: set[str] = set()
    has_references: set[str] = set()
    for name, class_def in schema.classes.items():
        if class_def.parent is not None and class_def.parent in parent_of:
            union(name, class_def.parent)
        for attr_name in schema.effective_attributes(name):
            target = schema.reference_target(name, attr_name)
            if target is not None:
                has_references.add(name)
                if target in parent_of:
                    referenced.add(target)
                    union(name, target)

    group_sizes: dict[str, int] = {}
    for name in schema.classes:
        root = find(name)
        group_sizes[root] = group_sizes.get(root, 0) + 1

    for name in sorted(spread):
        problems = []
        if group_sizes[find(name)] > 1:
            problems.append("is connected to other classes by inheritance or references")
        if name in has_references:
            problems.append("declares reference attributes")
        if name in referenced:
            problems.append("is the target of reference attributes")
        if problems:
            raise ShardingError(
                f"class {name!r} cannot be spread across shards: it "
                + " and ".join(problems)
                + " — cross-shard checks of its neighbours would have to "
                "read a distributed extent"
            )

    group_shard: dict[str, int] = {}
    if existing:
        for name, shard in existing.items():
            if name not in parent_of or name in spread:
                continue  # class gone from the schema, or re-declared spread
            shard = int(shard)
            if not 0 <= shard < shard_count:
                raise ShardingError(
                    f"manifest places class {name!r} on shard {shard}, but "
                    f"the store has {shard_count} shard(s)"
                )
            root = find(name)
            prior = group_shard.setdefault(root, shard)
            if prior != shard:
                raise ShardingError(
                    f"placement splits connected classes across shards: "
                    f"{name!r} on shard {shard} is connected to classes on "
                    f"shard {prior}"
                )

    placement: dict[str, int] = {}
    fresh_groups = 0
    for name in schema.classes:
        if name in spread:
            continue
        root = find(name)
        if root not in group_shard:
            group_shard[root] = fresh_groups % shard_count
            fresh_groups += 1
        placement[name] = group_shard[root]
    return placement


# ---------------------------------------------------------------------------
# merged evaluation over all cores
# ---------------------------------------------------------------------------


class _MergedProbe:
    """The router's index probe: cross-shard answers from per-shard partials.

    Mirrors the :class:`~repro.engine.indexes.IndexManager` probe interface
    the evaluator consults (``aggregate_value`` / ``key_unique`` /
    ``reference_count`` / ``referential_verdict``), answering from the
    *merge* of every core's maintained summaries.  ``sum``/``count``
    combine additively, min/max as the extreme of per-shard candidates,
    referential verdicts from summed live/dangling totals.  ``avg`` (whose
    maintained form is already a quotient) and anything any core cannot
    answer degrade to :data:`INDEX_MISS` — the evaluator falls back to
    scanning the merged extent, exactly like an invalidated index.
    """

    __slots__ = ("_router", "_probes")

    def __init__(self, router: "ShardedStore"):
        self._router = router
        self._probes = [
            core._indexes.probe()
            for core in router.cores
            if core._indexes is not None
        ]

    def _complete(self) -> bool:
        return len(self._probes) == len(self._router.cores)

    def aggregate_value(self, func: str, class_name: str, over: str | None) -> Any:
        if not self._complete():
            return INDEX_MISS
        if func in ("count", "sum"):
            total = 0
            for probe in self._probes:
                value = probe.aggregate_value(func, class_name, over)
                if value is INDEX_MISS:
                    return INDEX_MISS
                if value is VACUOUS:
                    continue
                total += value
            return total
        if func in ("min", "max"):
            pick = min if func == "min" else max
            best: Any = VACUOUS
            for probe in self._probes:
                value = probe.aggregate_value(func, class_name, over)
                if value is INDEX_MISS:
                    return INDEX_MISS
                if value is VACUOUS:
                    continue
                best = value if best is VACUOUS else pick(best, value)
            return best
        # avg: the maintained value is sum/count already divided per shard;
        # recombining quotients would introduce rounding the plain store
        # never sees.  Miss instead — the scan fallback is exact.
        return INDEX_MISS

    def key_unique(self, class_name: str, attributes: Iterable[str]) -> bool | None:
        router = self._router
        if not self._complete():
            return None
        shard = router.placement.get(class_name)
        if shard is None:
            # Spread (or unplanned) extent: no single core sees every
            # member, so no core's key index can vouch for uniqueness.
            return None
        # Pinned classes keep their whole deep extent (subclasses
        # co-locate), so the home core's verdict is the global verdict.
        return self._probes[shard].key_unique(class_name, attributes)

    def reference_count(self, referrer_class: str, attribute: str, oid: str) -> Any:
        if not self._complete():
            return INDEX_MISS
        total = 0
        for probe in self._probes:
            value = probe.reference_count(referrer_class, attribute, oid)
            if value is INDEX_MISS:
                return INDEX_MISS
            total += value
        return total

    def referential_verdict(
        self,
        mode: str,
        referenced_class: str,
        referrer_class: str,
        attribute: str,
    ) -> Any:
        if not self._complete():
            return INDEX_MISS
        live = 0
        for probe in self._probes:
            totals = probe.reference_totals(
                referrer_class, attribute, referenced_class
            )
            if totals is INDEX_MISS:
                return INDEX_MISS
            live_with_ref, dangling = totals
            if dangling:
                # Dangling references must surface through the scan path's
                # dereference error, exactly like a single core's verdict.
                return INDEX_MISS
            live += live_with_ref
        size = self.aggregate_value("count", referenced_class, None)
        if size is INDEX_MISS:
            return INDEX_MISS
        if mode == "all":
            return live == size
        if mode == "any":
            return live > 0
        if mode == "none":
            return live == 0
        return INDEX_MISS


# ---------------------------------------------------------------------------
# the commit router
# ---------------------------------------------------------------------------


class ShardedStore:
    """``N`` independent shard cores behind one constraint-aware router.

    Presents the :class:`~repro.engine.store.ObjectStore` surface (insert /
    update / delete / get / extent / transaction / audit / ...) while
    partitioning the contents by class — and, for *spread* classes, by a
    round-robin insert cursor — over ``shards`` cores, each a full
    standalone store with its own extents, indexes, undo log, write-ahead
    log and writer lock.

    Each core enforces exactly the constraints classified shard-local to it
    (its ``constraint_scope``); the router enforces the cross-shard rest
    against the merged view, using per-shard index summaries as mergeable
    partials where they cover the reads.  Operations whose affected
    constraints are all core-local take the *fast path* — routed straight
    to one core, no router lock, no cross-shard coordination — so disjoint
    shards accept writers concurrently and a single-shard workload keeps
    the standalone store's cost profile.  With ``shards=1`` every
    constraint is local to the only core and every operation takes the
    fast path: the router degenerates to a dict lookup in front of a plain
    store.

    Cross-shard *transactions* that wrote to several durable shards commit
    atomically via two-phase-commit brackets across the shard WALs; see the
    module docstring for the protocol and its ``sync=False`` caveat.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        shards: int = 1,
        *,
        spread: "Iterable[str]" = (),
        enforce: bool = True,
        incremental: bool = True,
        indexed: bool = True,
        explain: bool = True,
        analyze: bool = False,
        placement: "Mapping[str, int] | None" = None,
        _cores: "list[ObjectStore] | None" = None,
    ):
        self.schema = schema
        self.shards = int(shards)
        #: The N=1 degeneration: with one core there is nothing to route —
        #: every constraint is core-local (scopes collapse to ``None``) and
        #: the core's own incremental fallback already handles schema
        #: staleness exactly as a plain store would, so single-core routers
        #: skip the per-operation readiness probe entirely.
        self._single = self.shards == 1
        self.spread = frozenset(spread)
        self.enforce = enforce
        self.incremental = incremental
        self.indexed = indexed
        self.explain = explain
        self.analyze = analyze
        #: The router checks every constraint the cores do not (and, on its
        #: merged view, re-checking a local one is merely redundant): no
        #: scope filter.  Present so enforcement treats the router and a
        #: plain store uniformly.
        self.constraint_scope: "frozenset | None" = None
        self.placement = plan_placement(
            schema, self.shards, self.spread, existing=placement
        )
        if _cores is not None:
            if len(_cores) != self.shards:
                raise ShardingError(
                    f"expected {self.shards} shard cores, got {len(_cores)}"
                )
            self.cores = list(_cores)
        else:
            self.cores = [
                ObjectStore(
                    schema,
                    enforce=enforce,
                    incremental=incremental,
                    indexed=indexed,
                    wal=None,
                    explain=explain,
                    analyze=analyze,
                    oid_namespace=shard,
                )
                for shard in range(self.shards)
            ]
        #: Router lock: serializes cross-shard (global) operations, routing
        #: rebuilds and transactions.  Fast-path operations never take it.
        self._lock = threading.RLock()
        self._txn_depth = 0
        self._txn_owner: int | None = None
        self._spread_lock = threading.Lock()
        #: Per-spread-class insert cursor (next shard, round-robin).
        self._spread_seq: dict[str, int] = {}
        self._attr_types: dict[tuple[str, str], Any] = {}
        #: Schema fingerprint of the last clean full validation of the
        #: *merged* store; mirrors the plain store's incremental baseline.
        self._validated_fingerprint: int | None = None
        self._routing_fingerprint: int | None = None
        #: class → every affected constraint is local to the class's home
        #: core(s); insert/delete may skip the router.
        self._class_fast: dict[str, bool] = {}
        #: (class, attr) → ditto for single-attribute updates.
        self._attr_fast: dict[tuple[str, str], bool] = {}
        self._plans: list = []
        #: Operation counters (observability; the stress harness reports
        #: them alongside per-shard group-commit stats).
        self.fast_path_ops = 0
        self.routed_global_ops = 0
        self.two_phase_commits = 0
        self._rebuild_routing()

    # -- routing -------------------------------------------------------------

    def _rebuild_routing(self) -> None:
        """(Re)derive constraint scopes and fast-path tables from the
        current schema.  Called under the router lock (or from ``__init__``
        before the store is shared)."""
        from repro.engine.incremental import classify_constraints, shard_scopes

        self.placement = plan_placement(
            self.schema, self.shards, self.spread, existing=self.placement
        )
        index = self.dependency_index()
        plans = classify_constraints(index, self.placement, self.spread)
        scopes = shard_scopes(plans, self.shards)
        total = len(index._by_constraint)
        for core, scope in zip(self.cores, scopes):
            # A scope covering every constraint filters nothing: drop it so
            # the core's hot path pays no membership tests (always the case
            # at shards=1).
            core.constraint_scope = None if len(scope) == total else scope
        entries = (
            *index.object_constraints,
            *index.class_constraints,
            *index.database_constraints,
        )
        class_fast: dict[str, bool] = {}
        attr_fast: dict[tuple[str, str], bool] = {}
        for class_name in self.schema.classes:
            if class_name in self.spread:
                # A spread object may land on any core, so every affected
                # constraint must be in *every* core's scope.
                allowed: frozenset = (
                    frozenset.intersection(*scopes) if scopes else frozenset()
                )
            else:
                allowed = scopes[self.placement.get(class_name, 0)]
            # Constraints any insert/delete of this class can affect: its
            # own effective object constraints, plus everything reading the
            # class's extent or attributes from outside (foreign reads,
            # aggregates, referential quantifiers), plus universal ones.
            touched = {
                entry.constraint
                for entry in entries
                if entry.universal
                or class_name in entry.extents
                or any(cls == class_name for cls, _attr in entry.attrs)
            }
            for entry in index.insert_checks.get(class_name, ()):
                touched.add(entry.constraint)
            class_fast[class_name] = touched <= allowed
            for attr in self.schema.effective_attributes(class_name):
                affected = {
                    entry.constraint
                    for entry in entries
                    if entry.universal or (class_name, attr) in entry.attrs
                }
                attr_fast[(class_name, attr)] = affected <= allowed
        self._plans = plans
        self._class_fast = class_fast
        self._attr_fast = attr_fast
        self._routing_fingerprint = self.schema.fingerprint()

    def constraint_plans(self) -> list:
        """The current constraint classification
        (:class:`~repro.engine.incremental.ConstraintShardPlan` per
        constraint), as derived at the last routing rebuild."""
        return list(self._plans)

    def _fast_ready(self) -> bool:
        """Whether the fast path may run: the routing tables were built for
        the current schema *and* the merged store holds a clean validation
        baseline under it.  A stale baseline (first ever mutation, or a
        schema/constant change since) forces one routed operation, which
        fully revalidates and re-baselines — mirroring the plain store's
        incremental fallback."""
        fingerprint = self.schema.fingerprint()
        return (
            fingerprint == self._routing_fingerprint
            and fingerprint == self._validated_fingerprint
        )

    def _in_transaction(self) -> bool:
        return self._txn_depth > 0 and self._txn_owner == threading.get_ident()

    def _core_for_insert(self, class_name: str) -> ObjectStore:
        if class_name in self.spread:
            with self._spread_lock:
                seq = self._spread_seq.get(class_name, 0)
                self._spread_seq[class_name] = seq + 1
            return self.cores[seq % self.shards]
        return self.cores[self.placement.get(class_name, 0)]

    def _locate(self, oid: str) -> ObjectStore:
        """The core holding ``oid``.  Sharded oids (``Class#S.N``) name
        their core directly; plain or foreign oids fall back to probing
        every core."""
        shard = oid_shard(oid)
        if shard is not None and 0 <= shard < self.shards:
            core = self.cores[shard]
            if oid in core:
                return core
        for core in self.cores:
            if oid in core:
                return core
        raise UnknownObjectError(f"no object with identifier {oid!r}")

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(core) for core in self.cores)

    def __contains__(self, oid: str) -> bool:
        shard = oid_shard(oid)
        if shard is not None and 0 <= shard < self.shards:
            if oid in self.cores[shard]:
                return True
        return any(oid in core for core in self.cores)

    def get(self, oid: str) -> DBObject:
        return self._locate(oid).get(oid)

    @property
    def _objects(self) -> dict[str, DBObject]:
        """The merged oid → object mapping, in global insertion order.
        Materialized per call — meant for audits and explanation passes,
        not hot paths."""
        merged: dict[str, DBObject] = {}
        for core in self.cores:
            merged.update(core._objects)
        return dict(sorted(merged.items(), key=lambda item: oid_sort_key(item[0])))

    def objects(self) -> "Iterable[DBObject]":
        return list(self._objects.values())

    def extent(self, class_name: str, deep: bool = True) -> list[DBObject]:
        """See :meth:`ObjectStore.extent`.  Pinned classes answer from their
        home core (their whole deep extent co-locates); spread classes merge
        per-core extents in oid order — the global insertion-attempt order,
        since the insert cursor and per-core sequences both only grow."""
        home = self.placement.get(class_name)
        if home is not None:
            return self.cores[home].extent(class_name, deep)
        if not self.schema.has_class(class_name):
            raise UnknownClassError(
                f"no class {class_name!r} in database {self.schema.name}"
            )
        merged = [
            obj for core in self.cores for obj in core.extent(class_name, deep)
        ]
        merged.sort(key=lambda obj: oid_sort_key(obj.oid))
        return merged

    def get_attr(self, obj: Any, name: str) -> Any:
        """See :meth:`ObjectStore.get_attr`; dereferences resolve through
        the router, so cross-core references (foreign oids inserted as
        plain strings) still traverse."""
        if isinstance(obj, DBObject):
            if name not in obj.state:
                raise EngineError(
                    f"{obj.class_name} object {obj.oid} has no attribute {name!r}"
                )
            value = obj.state[name]
            key = (obj.class_name, name)
            if key in self._attr_types:
                tm_type = self._attr_types[key]
            else:
                try:
                    tm_type = self.schema.attribute_type(obj.class_name, name)
                except SchemaError:
                    tm_type = None
                self._attr_types[key] = tm_type
            if isinstance(tm_type, ClassRef) and isinstance(value, str):
                return self.get(value)
            return value
        if isinstance(obj, Mapping):
            value = obj[name]
            if isinstance(value, str) and value in self:
                return self.get(value)
            return value
        raise EngineError(f"cannot read attribute {name!r} from {obj!r}")

    def eval_context(
        self,
        current: Any = None,
        self_extent_class: str | None = None,
        bindings: dict[str, Any] | None = None,
    ) -> EvalContext:
        """An evaluation context over the *merged* store: lazy merged
        extents, router-wide dereferencing, and the merged index probe
        (cross-shard aggregates answered from per-shard partials)."""
        return EvalContext(
            current=current,
            bindings=bindings or {},
            extents=_ExtentView(self),
            self_extent=(
                _LazyExtent(self, self_extent_class) if self_extent_class else ()
            ),
            self_extent_class=self_extent_class,
            constants=self.schema.constants,
            get_attr=self.get_attr,
            indexes=_MergedProbe(self) if self.indexed else None,
        )

    # -- enforcement plumbing (duck-typed store surface) ---------------------

    def dependency_index(self):
        from repro.engine.incremental import ConstraintDependencyIndex

        return ConstraintDependencyIndex.for_schema(self.schema)

    def _schema_changed_since_validation(self) -> bool:
        return (
            self._validated_fingerprint is None
            or self.schema.fingerprint() != self._validated_fingerprint
        )

    def audit(self) -> list:
        """Validate the merged store; a clean pass re-baselines the router
        *and* every core (each local scope holds on its core whenever the
        whole holds on the merge)."""
        from repro.engine.enforcement import all_violations

        found = all_violations(self)
        if not found:
            fingerprint = self.schema.fingerprint()
            self._validated_fingerprint = fingerprint
            for core in self.cores:
                core._validated_fingerprint = fingerprint
        return found

    def check_all(self) -> list[str]:
        return [violation.describe() for violation in self.audit()]

    def explain_violations(self, violations=None) -> list:
        from repro.engine.explain import explain_violations

        return explain_violations(self, violations)

    def _cores_for(self, violations) -> tuple:
        if not self.explain:
            return ()
        from repro.engine.explain import explain_violations

        try:
            return tuple(explain_violations(self, violations))
        except Exception:  # pragma: no cover - defensive, see ObjectStore
            return ()

    def _revalidate_fully(self) -> None:
        violations = self.audit()
        if violations:
            raise ConstraintViolation(
                "full revalidation",
                "; ".join(violation.describe() for violation in violations),
                violations=violations,
                cores=self._cores_for(violations),
            )

    # -- mutation ------------------------------------------------------------

    def insert(
        self,
        class_name: str,
        state: "Mapping[str, Any] | None" = None,
        **kwargs: Any,
    ) -> DBObject:
        core = self._core_for_insert(class_name)
        if self._in_transaction():
            return core.insert(class_name, state, **kwargs)
        if self._single or (
            self._fast_ready() and self._class_fast.get(class_name, False)
        ):
            self.fast_path_ops += 1
            return core.insert(class_name, state, **kwargs)
        return self._global_op(
            core,
            lambda: core.insert(class_name, state, **kwargs),
            exhaustive=self._exhaustive_upsert_check,
        )

    def update(self, target: "DBObject | str", **changes: Any) -> DBObject:
        oid = target.oid if isinstance(target, DBObject) else target
        core = self._locate(oid)
        if self._in_transaction():
            return core.update(target, **changes)
        if self._single:
            self.fast_path_ops += 1
            return core.update(target, **changes)
        if self._fast_ready():
            class_name = core.get(oid).class_name
            if all(
                self._attr_fast.get((class_name, attr), False) for attr in changes
            ):
                self.fast_path_ops += 1
                return core.update(target, **changes)
        return self._global_op(
            core,
            lambda: core.update(target, **changes),
            exhaustive=self._exhaustive_upsert_check,
        )

    def delete(self, target: "DBObject | str") -> None:
        oid = target.oid if isinstance(target, DBObject) else target
        core = self._locate(oid)
        if self._in_transaction():
            return core.delete(target)
        if self._single:
            self.fast_path_ops += 1
            return core.delete(target)
        if self._fast_ready():
            class_name = core.get(oid).class_name
            if self._class_fast.get(class_name, False):
                self.fast_path_ops += 1
                return core.delete(target)
        return self._global_op(
            core,
            lambda: core.delete(target),
            exhaustive=self._exhaustive_delete_check,
        )

    def _exhaustive_upsert_check(self, result: Any) -> None:
        from repro.engine.enforcement import (
            check_class_constraints,
            check_database_constraints,
            check_object_constraints,
        )

        check_object_constraints(self, result)
        check_class_constraints(self, result.class_name)
        check_database_constraints(self)

    def _exhaustive_delete_check(self, result: Any) -> None:
        from repro.engine.enforcement import check_database_constraints

        check_database_constraints(self)

    def _global_op(self, core: ObjectStore, op, exhaustive) -> Any:
        """Run one operation on ``core`` under full cross-shard validation.

        Quiesces every core (router lock + all core locks, in shard order —
        the one global acquisition order, so no interleaving with fast-path
        writers can deadlock), applies the operation inside an unvalidated
        core bracket, then checks the merged view: the delta-driven check
        when a clean incremental baseline exists, the exhaustive sweep (or
        a full revalidation) otherwise.  A failed check rolls the core
        bracket back and propagates with the plain store's exception
        shapes."""
        with self._lock:
            if self.schema.fingerprint() != self._routing_fingerprint:
                self._rebuild_routing()
            self.routed_global_ops += 1
            held: list[ObjectStore] = []
            try:
                for other in self.cores:
                    other._lock.acquire()
                    held.append(other)
                txn = core.transaction(validate=False)
                txn.__enter__()
                try:
                    result = op()
                    if self.enforce:
                        if self.incremental:
                            if self._schema_changed_since_validation():
                                self._revalidate_fully()
                            else:
                                from repro.engine.incremental import check_delta

                                check_delta(self, core._delta)
                        else:
                            exhaustive(result)
                except BaseException as exc:
                    txn.__exit__(type(exc), exc, exc.__traceback__)
                    raise
                txn.__exit__(None, None, None)
                return result
            finally:
                for other in reversed(held):
                    other._lock.release()

    def set_constant(self, name: str, value: Any) -> None:
        """Rebind a schema constant through every core: the shared schema
        is set once (idempotently re-set per core) and each durable core
        logs its own schema-change record, so any single shard's log
        replays the binding.  Invalidates the merged validation baseline —
        the next routed operation fully revalidates, as on a plain store."""
        with self._lock:
            if self._txn_depth:
                raise EngineError(
                    "cannot rebind a schema constant inside a transaction"
                )
            for core in self.cores:
                core.set_constant(name, value)

    # -- transactions ---------------------------------------------------------

    def transaction(self, validate: bool = True) -> "_ShardedTransaction":
        """A deferred-validation transaction spanning all shards.

        Opens an unvalidated bracket on every core (empty brackets cost
        nothing — begin markers are written lazily with a bracket's first
        operation); operations inside route by placement with no per-op
        enforcement.  At exit the router validates the merged delta and
        either rolls every bracket back or commits — atomically across the
        durable shards that were written, via two-phase commit when there
        is more than one.  Nested transactions nest per core, exactly like
        the plain store's."""
        return _ShardedTransaction(self, validate=validate)

    # -- durability -----------------------------------------------------------

    @classmethod
    def open(
        cls,
        root: "str | Path",
        schema: DatabaseSchema | None = None,
        shards: int | None = None,
        *,
        spread: "Iterable[str]" = (),
        enforce: bool = True,
        incremental: bool = True,
        indexed: bool = True,
        explain: bool = True,
        analyze: bool = False,
        sync: bool = False,
        checkpoint_every: int = 10_000,
        verify: bool = True,
        faults: Any = None,
    ) -> "ShardedStore":
        """Open (or create) the sharded durable store rooted at ``root``.

        A sharded root holds a ``shards.json`` manifest plus one
        ``shard-<i>`` directory per core.  When the manifest exists, the
        persisted shard count, spread set and class placement are reused
        verbatim (``shards`` may be omitted, and must match when given);
        otherwise ``schema`` and ``shards`` create a fresh layout.

        Recovery first loads every shard's log image to pool the decided
        outcomes of two-phase commits, then recovers each core with that
        pool as its in-doubt ``resolutions`` — a bracket prepared on one
        shard commits iff *some* shard's log holds its durable ``decide``,
        and is discarded otherwise (presumed abort).  The schema is parsed
        once (from shard 0's image) and shared by every core.  With
        ``verify`` the merged store is audited after recovery.

        ``faults`` is a single :class:`~repro.engine.faults.FaultInjector`
        shared by every shard, or a mapping of shard index to injector for
        targeting one shard's files (testing only).
        """
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        spread = frozenset(spread)
        placement: "dict[str, int] | None" = None
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text("utf-8"))
                manifest_shards = int(manifest["shards"])
                placement = {
                    str(name): int(shard)
                    for name, shard in dict(manifest["placement"]).items()
                }
                manifest_spread = frozenset(
                    str(name) for name in manifest.get("spread", ())
                )
            except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
                raise ShardingError(
                    f"unreadable shard manifest at {str(manifest_path)!r}: {exc}"
                ) from exc
            if shards is not None and int(shards) != manifest_shards:
                raise ShardingError(
                    f"store at {str(root)!r} has {manifest_shards} shard(s); "
                    f"requested {int(shards)}"
                )
            shards = manifest_shards
            spread = spread | manifest_spread
        elif shards is None:
            shards = 1

        def injector_for(shard: int) -> Any:
            if isinstance(faults, Mapping):
                return faults.get(shard)
            return faults

        shard_count = int(shards)
        if shard_count < 1:
            raise ShardingError(f"shard count must be at least 1, got {shard_count}")
        directories = [shard_directory(root, shard) for shard in range(shard_count)]
        images = [load_image(directory) for directory in directories]
        outcomes: dict[str, bool] = {}
        for image in images:
            if image is not None:
                outcomes.update(image.decisions)
        if schema is None:
            seed = next((image for image in images if image is not None), None)
            if seed is None:
                raise EngineError(
                    f"no durable store at {str(root)!r}; pass a schema to "
                    "create one"
                )
            from repro.tm.parser import parse_database

            schema = parse_database(seed.schema_source)
            for name, value in seed.constants:
                schema.set_constant(name, value)
        placement = plan_placement(schema, shard_count, spread, existing=placement)
        root.mkdir(parents=True, exist_ok=True)
        manifest_path.write_text(
            json.dumps(
                {
                    "format": _MANIFEST_FORMAT,
                    "database": schema.name,
                    "shards": shard_count,
                    "spread": sorted(spread),
                    "placement": placement,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            "utf-8",
        )
        cores = [
            ObjectStore.open(
                directory,
                schema,
                enforce=enforce,
                incremental=incremental,
                indexed=indexed,
                sync=sync,
                checkpoint_every=checkpoint_every,
                verify=False,
                faults=injector_for(shard),
                analyze=analyze and shard == 0,
                oid_namespace=shard,
                resolutions=outcomes,
            )
            for shard, directory in enumerate(directories)
        ]
        store = cls(
            schema,
            shard_count,
            spread=spread,
            enforce=enforce,
            incremental=incremental,
            indexed=indexed,
            explain=explain,
            analyze=analyze,
            placement=placement,
            _cores=cores,
        )
        # Recover each spread class's insert cursor: total size keeps the
        # round-robin balanced; the exact phase only affects fairness.
        for name in store.spread:
            store._spread_seq[name] = len(store.extent(name))
        if verify:
            violations = store.audit()
            if violations:
                raise ConstraintViolation(
                    "recovery",
                    "; ".join(violation.describe() for violation in violations),
                    violations=violations,
                    cores=store._cores_for(violations),
                )
        return store

    @property
    def durable(self) -> bool:
        """Whether any shard core writes through to a write-ahead log.
        Cores are homogeneous (all durable or none), so this mirrors
        :attr:`ObjectStore.durable` exactly."""
        return any(core.wal is not None for core in self.cores)

    def checkpoint(self) -> None:
        """Checkpoint every durable core (snapshot + log compaction).

        Raises :class:`~repro.errors.EngineError` on a fully in-memory
        sharded store and inside a transaction — the same contract as
        :meth:`ObjectStore.checkpoint`, so :class:`StoreAPI` callers see
        one behaviour whichever flavor they hold."""
        if not self.durable:
            raise EngineError("store has no write-ahead log attached")
        if self._txn_depth:
            raise EngineError("cannot checkpoint inside a transaction")
        for core in self.cores:
            if core.wal is not None:
                core.checkpoint()

    def close(self) -> None:
        for core in self.cores:
            core.close()

    def snapshot(self) -> "MergedSnapshot":
        """An immutable point-in-time view of the *merged* committed store.

        A cut that is consistent across cores requires quiescing them:
        the router briefly acquires every core's writer lock (in shard
        order, the global acquisition order), takes one per-core snapshot
        under each, and releases.  Acquisition is therefore O(shards) lock
        hops — heavier than a single core's O(1) snapshot, but still
        non-blocking for readers once taken, and it never waits on fsyncs
        (commits release their writer lock before redeeming group-commit
        tickets).  Per-shard readers that do not need a cross-shard cut
        should prefer :meth:`snapshots`."""
        taken: list = []
        held: "list[ObjectStore]" = []
        with self._lock:
            try:
                for core in self.cores:
                    core._lock.acquire()
                    held.append(core)
                for core in self.cores:
                    taken.append(core.snapshot())
            finally:
                for core in reversed(held):
                    core._lock.release()
        return MergedSnapshot(taken)

    def snapshots(self) -> list:
        """One immutable point-in-time snapshot per core, taken in shard
        order *without* quiescing the router: each is internally
        consistent, but the cut is not coordinated across cores — what
        per-shard readers (backups, per-shard scans) need.  Use
        :meth:`snapshot` for a consistent cross-shard cut."""
        return [core.snapshot() for core in self.cores]

    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-shard observability: object counts and group-commit telemetry
        (fsyncs, sync commits, fsyncs per commit, mean commits per fsync
        batch) for each core's write-ahead log."""
        stats = []
        for shard, core in enumerate(self.cores):
            entry: dict[str, Any] = {"shard": shard, "objects": len(core)}
            wal = core.wal
            if wal is not None:
                fsyncs = wal.fsyncs
                commits = wal.sync_commits
                entry["fsyncs"] = fsyncs
                entry["sync_commits"] = commits
                entry["fsyncs_per_commit"] = fsyncs / commits if commits else 0.0
                entry["mean_batch"] = commits / fsyncs if fsyncs else 0.0
            stats.append(entry)
        return stats


# ---------------------------------------------------------------------------
# cross-shard transactions
# ---------------------------------------------------------------------------


class _ShardedTransaction:
    """One router-level transaction: per-core unvalidated brackets, merged
    commit-time validation, and two-phase commit across the durable shards
    that were written.  Returned by :meth:`ShardedStore.transaction`."""

    def __init__(self, router: ShardedStore, validate: bool = True):
        self.router = router
        self.validate = validate
        self._core_txns: list = []
        self._outer = False

    def __enter__(self) -> "_ShardedTransaction":
        router = self.router
        router._lock.acquire()
        try:
            self._outer = router._txn_depth == 0
            if self._outer:
                if router.schema.fingerprint() != router._routing_fingerprint:
                    router._rebuild_routing()
                router._txn_owner = threading.get_ident()
            txns: list = []
            try:
                for core in router.cores:
                    txn = core.transaction(validate=False)
                    txn.__enter__()
                    txns.append(txn)
            except BaseException as exc:
                for txn in reversed(txns):
                    txn.__exit__(type(exc), exc, exc.__traceback__)
                raise
            self._core_txns = txns
            router._txn_depth += 1
        except BaseException:
            if router._txn_depth == 0:
                router._txn_owner = None
            router._lock.release()
            raise
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        router = self.router
        try:
            if exc_type is not None:
                self._close_all(exc_type, exc, tb)
                return False
            # Merge the per-core dirty sets *before* closing any bracket
            # (closing resets them).  Inner commits do not validate — the
            # outermost does, exactly like the plain store's transactions.
            if self._outer and self.validate and router.enforce:
                violations = self._validate()
                if violations:
                    # Cores must be extracted before rollback destroys the
                    # violating state they explain.
                    cores = router._cores_for(violations)
                    failure = ConstraintViolation(
                        "transaction",
                        "; ".join(
                            violation.describe() for violation in violations
                        ),
                        violations=violations,
                        cores=cores,
                    )
                    self._close_all(
                        ConstraintViolation, failure, failure.__traceback__
                    )
                    raise failure
            self._commit()
            return False
        finally:
            router._txn_depth -= 1
            if router._txn_depth == 0:
                router._txn_owner = None
            router._lock.release()

    def _validate(self) -> list:
        router = self.router
        if router.incremental and not router._schema_changed_since_validation():
            from repro.engine.incremental import MutationDelta, delta_violations

            merged = MutationDelta()
            for txn in self._core_txns:
                delta = txn.store._delta
                if delta is not None:
                    merged.merge(delta)
            return delta_violations(router, merged)
        return router.audit()

    def _close_all(self, exc_type, exc, tb) -> None:
        """Exit every core bracket with the given exception state."""
        self._close(self._core_txns, exc_type, exc, tb)

    @staticmethod
    def _close(txns, exc_type, exc, tb) -> None:
        """Exit the given core brackets (all of them, even if one exit
        raises — their writer locks must be released either way)."""
        first: BaseException | None = None
        for txn in reversed(txns):
            try:
                txn.__exit__(exc_type, exc, tb)
            except BaseException as failure:  # keep closing the rest
                if first is None:
                    first = failure
        if first is not None:
            raise first

    def _commit(self) -> None:
        router = self.router
        if not self._outer:
            self._close_all(None, None, None)
            return
        durable = [
            txn
            for txn in self._core_txns
            if txn.store._undo and txn.store._wal is not None
        ]
        if len(durable) < 2:
            # Zero or one durable participant: the plain commit path is
            # already atomic (empty brackets close without ever having
            # written a begin marker).
            self._close_all(None, None, None)
            return
        gid = uuid.uuid4().hex
        rest = [txn for txn in self._core_txns if txn not in durable]
        prepared: list = []
        decide_attempted = False
        try:
            tickets = []
            for txn in durable:
                prepared.append(txn)
                tickets.append((txn.store, txn.prepare_commit(gid)))
            # Every prepare marker durable before the decide: a decide
            # record must never outrun a participant's prepared ops.
            for store, ticket in tickets:
                if ticket is not None:
                    store._wal.wait_durable(ticket)
            coordinator = durable[0].store
            decide_attempted = True
            coordinator._wal.log_decide(gid, True)
            ticket = coordinator._wal.commit_flush()
            if ticket is not None:
                coordinator._wal.wait_durable(ticket)
        except BaseException:
            if not decide_attempted:
                # No decide record can exist on any shard yet, so presumed
                # abort is sound: logging resolve(False) merely settles
                # what recovery would conclude from the silence anyway.
                for txn in prepared:
                    try:
                        txn.store._wal.log_resolve(gid, False)
                        txn.store._wal.commit_flush()
                    except BaseException:
                        pass  # presumed abort covers an unlogged resolve
                    txn.finish_prepared(False)
            else:
                # The decide append was issued: its bytes may sit readably
                # in the coordinator's log even though the commit point
                # died, so recovery could legitimately find decide=commit.
                # Durably aborting any participant now would split the
                # transaction's outcome across shards.  The outcome belongs
                # to recovery alone — leave every bracket in-doubt on disk,
                # roll the memory image back, and fail-stop the
                # participating shards so nothing can build on a state the
                # reopen may contradict.
                for txn in prepared:
                    try:
                        txn.store._wal.poison(
                            "two-phase decide outcome unknown; "
                            "bracket is in-doubt until reopen"
                        )
                    except BaseException:
                        pass
                    txn.finish_prepared(False)
            abort = EngineError("two-phase commit aborted")
            # Participants never reached by the prepare loop, plus the
            # non-durable brackets, roll back the ordinary way.
            self._close(
                durable[len(prepared):] + rest, type(abort), abort, None
            )
            raise
        for txn in durable:
            try:
                txn.store._wal.log_resolve(gid, True)
                ticket = txn.store._wal.commit_flush()
                if ticket is not None:
                    # Resolve durability before releasing: once every
                    # participant's resolve is down, any later checkpoint
                    # may safely fold the coordinator's decide away.
                    txn.store._wal.wait_durable(ticket)
            except BaseException:
                pass  # the durable decide already fixes the outcome
            txn.finish_prepared(True)
        router.two_phase_commits += 1
        # Non-durable / untouched brackets commit trivially.  The per-core
        # checkpoint policy is skipped on this path (prepared brackets
        # bypass the normal commit exit); the next single-shard operation
        # on a core triggers its checkpoint as usual.
        self._close(rest, None, None, None)


# ---------------------------------------------------------------------------
# merged snapshots
# ---------------------------------------------------------------------------


class MergedSnapshot:
    """A consistent cross-shard cut: one per-core snapshot per shard, taken
    while :meth:`ShardedStore.snapshot` held every core's writer lock.

    Read accessors mirror :class:`~repro.engine.concurrency.Snapshot`:
    ``get`` routes by the oid's shard namespace (falling back to probing
    every member), ``extent`` merges per-core extents in global
    ``(counter, oid)`` order, and closing releases every member's version
    pin.  Immutable and safe to read from any thread, like its members.
    """

    __slots__ = ("_members",)

    def __init__(self, members: list):
        self._members = list(members)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        for member in self._members:
            member.close()

    def __enter__(self) -> "MergedSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reads -------------------------------------------------------------

    def _member_for(self, oid: str):
        shard = oid_shard(oid)
        if shard is not None and 0 <= shard < len(self._members):
            return self._members[shard]
        return None

    def __contains__(self, oid: object) -> bool:
        if not isinstance(oid, str):
            return False
        member = self._member_for(oid)
        if member is not None and oid in member:
            return True
        return any(oid in candidate for candidate in self._members)

    def get(self, oid: str):
        member = self._member_for(oid)
        if member is not None and oid in member:
            return member.get(oid)
        for candidate in self._members:
            if oid in candidate:
                return candidate.get(oid)
        raise UnknownObjectError(
            f"no object with identifier {oid!r} in the merged snapshot"
        )

    def get_attr(self, obj: Any, name: str) -> Any:
        """Reference-dereferencing attribute read across the cut: the
        member that owns ``obj`` resolves plain values and same-core
        references; a cross-core reference resolves through the merged
        lookup at this cut."""
        member = self._member_for(getattr(obj, "oid", "")) or self._members[0]
        try:
            return member.get_attr(obj, name)
        except UnknownObjectError:
            value = obj.state[name]
            if isinstance(value, str) and value in self:
                return self.get(value)
            raise

    def extent(self, class_name: str, deep: bool = True) -> list:
        merged = [
            obj
            for member in self._members
            for obj in member.extent(class_name, deep)
        ]
        merged.sort(key=lambda obj: oid_sort_key(obj.oid))
        return merged

    def objects(self):
        for member in self._members:
            yield from member.objects()

    def __len__(self) -> int:
        return sum(len(member) for member in self._members)
