"""An in-memory object database engine with integrity enforcement.

The paper's setting is interoperation of *autonomous component databases*
that each enforce their own integrity constraints ("the scope of this paper
is restricted to constraints that are being enforced by the component
databases").  This package provides that substrate: a small OO database
engine that stores typed objects in inheritance-aware class extents and
rejects any operation that would violate an object, class or database
constraint of its TM schema.

* :mod:`~repro.engine.objects` — object identities and states;
* :mod:`~repro.engine.store` — the store: insert/update/delete, extents,
  reference dereferencing, evaluation contexts;
* :mod:`~repro.engine.enforcement` — full (store-wide) constraint checking;
* :mod:`~repro.engine.incremental` — delta-driven constraint checking: the
  constraint-dependency index, mutation dirty sets, and the validators that
  intersect them (the enforcement hot path);
* :mod:`~repro.engine.indexes` — maintained auxiliary state: per-class
  deep-extent indexes, running aggregates and key hash indexes, kept
  transactionally consistent with the store so aggregate/key constraint
  checks and ``extent()`` stop scanning;
* :mod:`~repro.engine.query` — predicate queries over extents;
* :mod:`~repro.engine.transactions` — snapshot transactions with deferred,
  delta-driven constraint checking at commit;
* :mod:`~repro.engine.wal` — durability: the append-only write-ahead log,
  snapshot checkpoints, group commit (batched fsync), schema-change
  records, and crash recovery behind
  :meth:`~repro.engine.store.ObjectStore.open`;
* :mod:`~repro.engine.concurrency` — concurrent serving: immutable
  snapshot reads (multi-version history behind
  :meth:`~repro.engine.store.ObjectStore.snapshot`) beside the store's
  single writer;
* :mod:`~repro.engine.faults` — deterministic fault injection for the
  durability stack (torn writes, failed fsyncs, ENOSPC, bit rot,
  crash-at-rename), the errno classification policy, and the fail-stop
  (poisoned, read-only) degradation the write-ahead log applies when a
  commit point dies;
* :mod:`~repro.engine.sharding` — horizontal scale: shard-partitioned
  stores (:class:`~repro.engine.sharding.ShardedStore`) that route
  operations to independent shard cores behind a constraint-aware commit
  router, with two-phase commit across shard WALs for cross-shard
  transactions;
* :mod:`~repro.engine.api` — the unified :class:`StoreAPI` protocol that
  :class:`~repro.engine.store.ObjectStore`,
  :class:`~repro.engine.sharding.ShardedStore` and the network client's
  :class:`~repro.client.RemoteStore` all
  satisfy (mypy-enforced): the supported public surface, so code written
  against it runs unchanged embedded or remote.
"""

from repro.engine.api import (
    SnapshotAPI,
    StoreAPI,
    StoredObject,
    TransactionAPI,
    ViolationLike,
)
from repro.engine.concurrency import ConcurrencyControl, Snapshot, SnapshotObject
from repro.engine.faults import (
    FaultInjector,
    FaultSpec,
    SimulatedCrash,
    classify_os_error,
    flip_byte,
)
from repro.engine.objects import DBObject
from repro.engine.store import ObjectStore
from repro.engine.query import select
from repro.engine.incremental import (
    ConstraintDependencyIndex,
    MutationDelta,
    check_delta,
    delta_violations,
)
from repro.engine.indexes import IndexManager, KeyIndex, RunningAggregate
from repro.engine.sharding import MergedSnapshot, ShardedStore, plan_placement
from repro.engine.wal import FsckReport, WriteAheadLog, fsck

__all__ = [
    "StoreAPI",
    "TransactionAPI",
    "SnapshotAPI",
    "StoredObject",
    "ViolationLike",
    "MergedSnapshot",
    "ConcurrencyControl",
    "Snapshot",
    "SnapshotObject",
    "DBObject",
    "ObjectStore",
    "select",
    "ConstraintDependencyIndex",
    "MutationDelta",
    "check_delta",
    "delta_violations",
    "IndexManager",
    "KeyIndex",
    "RunningAggregate",
    "ShardedStore",
    "plan_placement",
    "WriteAheadLog",
    "FsckReport",
    "fsck",
    "FaultInjector",
    "FaultSpec",
    "SimulatedCrash",
    "classify_os_error",
    "flip_byte",
]
