"""An in-memory object database engine with integrity enforcement.

The paper's setting is interoperation of *autonomous component databases*
that each enforce their own integrity constraints ("the scope of this paper
is restricted to constraints that are being enforced by the component
databases").  This package provides that substrate: a small OO database
engine that stores typed objects in inheritance-aware class extents and
rejects any operation that would violate an object, class or database
constraint of its TM schema.

* :mod:`~repro.engine.objects` — object identities and states;
* :mod:`~repro.engine.store` — the store: insert/update/delete, extents,
  reference dereferencing, evaluation contexts;
* :mod:`~repro.engine.enforcement` — constraint checking;
* :mod:`~repro.engine.query` — predicate queries over extents;
* :mod:`~repro.engine.transactions` — snapshot transactions with deferred
  constraint checking.
"""

from repro.engine.objects import DBObject
from repro.engine.store import ObjectStore
from repro.engine.query import select

__all__ = ["DBObject", "ObjectStore", "select"]
