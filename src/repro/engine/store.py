"""The object store: extents, mutation, dereferencing, enforcement hooks."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Mapping

from repro.constraints.evaluate import EvalContext
from repro.engine.objects import DBObject
from repro.errors import (
    ConstraintViolation,
    EngineError,
    SchemaError,
    UnknownClassError,
    UnknownObjectError,
)
from repro.tm.schema import DatabaseSchema
from repro.types.primitives import ClassRef
from repro.types.values import check_value, coerce_value


class ObjectStore:
    """An in-memory object database over a TM schema.

    Every mutating operation type-checks the affected state and — unless the
    store is created with ``enforce=False`` or the mutation happens inside a
    deferred transaction — re-checks the constraints that the mutation could
    have invalidated, raising :class:`ConstraintViolation` and leaving the
    store unchanged on failure.
    """

    def __init__(self, schema: DatabaseSchema, enforce: bool = True):
        self.schema = schema
        self.enforce = enforce
        self._objects: dict[str, DBObject] = {}
        self._direct_extents: dict[str, set[str]] = {
            name: set() for name in schema.classes
        }
        self._counter = itertools.count(1)
        self._deferred = False

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, oid: str) -> bool:
        return oid in self._objects

    def get(self, oid: str) -> DBObject:
        if oid not in self._objects:
            raise UnknownObjectError(f"no object with identifier {oid!r}")
        return self._objects[oid]

    def objects(self) -> Iterable[DBObject]:
        return self._objects.values()

    def extent(self, class_name: str, deep: bool = True) -> list[DBObject]:
        """The objects whose most specific class is ``class_name`` (or a
        subclass, when ``deep``).  Order is insertion order."""
        if class_name not in self._direct_extents:
            raise UnknownClassError(
                f"no class {class_name!r} in database {self.schema.name}"
            )
        names = {class_name}
        if deep:
            names.update(self.schema.subclasses_of(class_name))
        return [
            obj
            for obj in self._objects.values()
            if obj.class_name in names
        ]

    # -- mutation -----------------------------------------------------------------

    def insert(self, class_name: str, state: Mapping[str, Any] | None = None, **kwargs: Any) -> DBObject:
        """Create an object of ``class_name`` with the given attribute values.

        All effective attributes must be provided; values are type-checked
        (with safe coercions such as int→real applied).
        """
        if class_name not in self.schema.classes:
            raise UnknownClassError(
                f"no class {class_name!r} in database {self.schema.name}"
            )
        full_state = dict(state or {})
        full_state.update(kwargs)
        checked = self._check_types(class_name, full_state)
        oid = f"{class_name}#{next(self._counter)}"
        obj = DBObject(oid, class_name, checked)
        self._objects[oid] = obj
        self._direct_extents[class_name].add(oid)
        try:
            self._after_mutation(obj)
        except ConstraintViolation:
            del self._objects[oid]
            self._direct_extents[class_name].discard(oid)
            raise
        return obj

    def update(self, target: DBObject | str, **changes: Any) -> DBObject:
        """Change attribute values of an existing object."""
        obj = self.get(target.oid if isinstance(target, DBObject) else target)
        unknown = set(changes) - set(self.schema.effective_attributes(obj.class_name))
        if unknown:
            raise EngineError(
                f"class {obj.class_name} has no attributes {sorted(unknown)}"
            )
        new_state = dict(obj.state)
        new_state.update(changes)
        checked = self._check_types(obj.class_name, new_state)
        old_state = obj.state
        obj.state = checked
        try:
            self._after_mutation(obj)
        except ConstraintViolation:
            obj.state = old_state
            raise
        return obj

    def delete(self, target: DBObject | str) -> None:
        """Remove an object (checking database constraints afterwards)."""
        obj = self.get(target.oid if isinstance(target, DBObject) else target)
        del self._objects[obj.oid]
        self._direct_extents[obj.class_name].discard(obj.oid)
        try:
            if self.enforce and not self._deferred:
                self._check_database_constraints()
        except ConstraintViolation:
            self._objects[obj.oid] = obj
            self._direct_extents[obj.class_name].add(obj.oid)
            raise

    # -- type checking -----------------------------------------------------------------

    def _check_types(self, class_name: str, state: Mapping[str, Any]) -> dict[str, Any]:
        attributes = self.schema.effective_attributes(class_name)
        missing = set(attributes) - set(state)
        if missing:
            raise EngineError(
                f"missing attributes for {class_name}: {sorted(missing)}"
            )
        extra = set(state) - set(attributes)
        if extra:
            raise EngineError(
                f"class {class_name} has no attributes {sorted(extra)}"
            )
        checked: dict[str, Any] = {}
        for name, attribute in attributes.items():
            value = state[name]
            context = f"{class_name}.{name}"
            if isinstance(attribute.tm_type, ClassRef):
                value = value.oid if isinstance(value, DBObject) else value
                if value not in self._objects:
                    raise EngineError(
                        f"{context}: reference to unknown object {value!r}"
                    )
                target = self._objects[value]
                if not self.schema.is_subclass_of(
                    target.class_name, attribute.tm_type.class_name
                ):
                    raise EngineError(
                        f"{context}: object {value!r} is a {target.class_name}, "
                        f"not a {attribute.tm_type.class_name}"
                    )
                checked[name] = value
                continue
            try:
                checked[name] = coerce_value(value, attribute.tm_type)
            except Exception:
                check_value(value, attribute.tm_type, context)
                checked[name] = value
        return checked

    # -- dereferencing & evaluation contexts --------------------------------------------

    def get_attr(self, obj: Any, name: str) -> Any:
        """Attribute accessor for the constraint evaluator.

        Dereferences reference attributes: reading ``publisher`` from an Item
        yields the Publisher *object*, so paths like ``publisher.name``
        traverse the store.
        """
        if isinstance(obj, DBObject):
            if name not in obj.state:
                raise EngineError(
                    f"{obj.class_name} object {obj.oid} has no attribute {name!r}"
                )
            value = obj.state[name]
            try:
                tm_type = self.schema.attribute_type(obj.class_name, name)
            except SchemaError:
                tm_type = None
            if isinstance(tm_type, ClassRef) and isinstance(value, str):
                return self.get(value)
            return value
        if isinstance(obj, Mapping):
            value = obj[name]
            if isinstance(value, str) and value in self._objects:
                return self._objects[value]
            return value
        raise EngineError(f"cannot read attribute {name!r} from {obj!r}")

    def eval_context(
        self,
        current: Any = None,
        self_extent_class: str | None = None,
        bindings: dict[str, Any] | None = None,
    ) -> EvalContext:
        """An :class:`EvalContext` wired to this store's extents/constants."""
        return EvalContext(
            current=current,
            bindings=bindings or {},
            extents=_ExtentView(self),
            self_extent=(
                self.extent(self_extent_class) if self_extent_class else ()
            ),
            constants=self.schema.constants,
            get_attr=self.get_attr,
        )

    # -- enforcement --------------------------------------------------------------------

    def _after_mutation(self, obj: DBObject) -> None:
        if not self.enforce or self._deferred:
            return
        from repro.engine.enforcement import (
            check_class_constraints,
            check_database_constraints,
            check_object_constraints,
        )

        check_object_constraints(self, obj)
        check_class_constraints(self, obj.class_name)
        check_database_constraints(self)

    def _check_database_constraints(self) -> None:
        from repro.engine.enforcement import check_database_constraints

        check_database_constraints(self)

    def check_all(self) -> list[str]:
        """Validate the entire store; returns violation descriptions."""
        from repro.engine.enforcement import all_violations

        return [violation.describe() for violation in all_violations(self)]

    # -- transactions -------------------------------------------------------------------

    def transaction(self):
        """A snapshot transaction with deferred constraint checking.

        Inside the ``with`` block constraints are not enforced; at exit the
        whole store is validated and rolled back (raising
        :class:`ConstraintViolation`) if any constraint is broken.
        """
        from repro.engine.transactions import Transaction

        return Transaction(self)


class _ExtentView(Mapping):
    """Lazy class-name → extent mapping for evaluation contexts."""

    def __init__(self, store: ObjectStore):
        self._store = store

    def __getitem__(self, class_name: str) -> list[DBObject]:
        return self._store.extent(class_name)

    def __iter__(self):
        return iter(self._store.schema.classes)

    def __len__(self) -> int:
        return len(self._store.schema.classes)

    def __contains__(self, class_name: object) -> bool:
        return class_name in self._store.schema.classes
