"""The object store: extents, mutation, dereferencing, enforcement hooks."""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import weakref
from pathlib import Path
from collections.abc import Iterable, Mapping
from typing import Any

from repro.constraints.evaluate import EvalContext
from repro.engine.concurrency import ConcurrencyControl, Snapshot
from repro.engine.faults import FaultInjector
from repro.engine.indexes import IndexManager, oid_sort_key
from repro.engine.objects import DBObject
from repro.engine.wal import RecoveredImage, WriteAheadLog, load_image
from repro.errors import (
    ConstraintViolation,
    EngineError,
    SchemaError,
    UnknownClassError,
    UnknownObjectError,
)
from repro.tm.schema import DatabaseSchema
from repro.types.primitives import ClassRef
from repro.types.values import check_value, coerce_value


class ObjectStore:
    """An in-memory object database over a TM schema.

    Every mutating operation type-checks the affected state and — unless the
    store is created with ``enforce=False`` or the mutation happens inside a
    deferred transaction — re-checks the constraints that the mutation could
    have invalidated, raising :class:`ConstraintViolation` and leaving the
    store unchanged on failure.

    With ``incremental=True`` (the default) enforcement is *delta-driven*:
    each mutation records a :class:`~repro.engine.incremental.MutationDelta`
    and only the constraints whose statically extracted read set intersects
    the delta are re-checked (see :mod:`repro.engine.incremental`).  With
    ``incremental=False`` the store keeps the exhaustive behaviour: full
    revalidation at transaction commit and the fixed
    object/class/database-constraint sweep after every operation.

    With ``indexed=True`` (the default) the store additionally maintains
    auxiliary state through an :class:`~repro.engine.indexes.IndexManager` —
    per-class deep-extent indexes, running aggregates, key hash indexes and
    reference-count indexes — kept transactionally consistent with every
    mutation and rollback, so ``extent()`` is O(|result|) and aggregate/key/
    referential constraint checks answer in O(1) instead of re-scanning
    extents.  ``indexed=False`` preserves the scan-everything behaviour
    (useful as a performance baseline).

    With ``wal`` set (a directory path or a pre-configured
    :class:`~repro.engine.wal.WriteAheadLog`) the store is *durable*: every
    accepted mutation writes through to an append-only log, transactions
    bracket their operations with begin/commit/abort markers, and periodic
    snapshot checkpoints bound the log.  :meth:`ObjectStore.open` recovers
    such a directory after a crash or restart.  ``wal=None`` honours the
    ``REPRO_WAL`` environment toggle (a throwaway log under a temp
    directory, so an unmodified test suite exercises the write-through
    path); ``wal=False`` disables durability unconditionally.

    **Concurrency.**  The store is safe under concurrent load: every
    mutating operation (and every transaction, for its whole extent) runs
    under one coarse reentrant writer lock, while readers call
    :meth:`snapshot` for an immutable point-in-time view of the committed
    store that never takes that lock (see
    :mod:`repro.engine.concurrency`).  Durable ``sync=True`` commits
    release the writer lock before waiting for their fsync, so concurrent
    committers coalesce into one fsync per batch (group commit — see
    :mod:`repro.engine.wal`).  Direct reads of the *live* store
    (:meth:`extent`, :meth:`get`, iteration) are only safe from the writer
    thread or quiesced stores; concurrent readers must go through
    snapshots.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        enforce: bool = True,
        incremental: bool = True,
        indexed: bool = True,
        wal: "WriteAheadLog | str | Path | bool | None" = None,
        explain: bool = True,
        analyze: bool = False,
        oid_namespace: int | None = None,
    ):
        self.schema = schema
        self.enforce = enforce
        self.incremental = incremental
        self.indexed = indexed
        #: Shard namespace stamped into minted oids (``Class#S.N``); ``None``
        #: keeps the plain ``Class#N`` shape.  Set by the commit router
        #: (:mod:`repro.engine.sharding`) so oid minting never serializes
        #: across shards — each core's ``_oid_seq`` is independent and its
        #: oids parse back to their own counter (:func:`oid_counter`).
        self.oid_namespace = oid_namespace
        self._oid_prefix = "" if oid_namespace is None else f"{int(oid_namespace)}."
        #: Constraints this store is responsible for enforcing; ``None``
        #: means all of them (the default, standalone behaviour).  A shard
        #: core is scoped to the constraints its shard can check alone —
        #: the router owns everything else.  Checked by identity against
        #: the schema's constraint objects, so the set must be built from
        #: the same schema instance this store holds.
        self.constraint_scope: "frozenset | None" = None
        #: Attach reason traces to constraint failures and compute conflict
        #: cores on commit-time rejections.  Tracing happens only *after* a
        #: check has already failed (the success path is untouched), so the
        #: flag trades rejection latency for diagnosability only.
        self.explain = explain
        #: Opt-in schema static analysis (:mod:`repro.constraints.analysis`):
        #: registration rejects schemas with error-level findings (malformed
        #: constraints, individually-UNSAT constraints, contradictory
        #: constraint sets), and incremental enforcement skips constraints
        #: the analyser proved redundant (entailed by a keeper with a
        #: covering read set).  Audits and full revalidation never prune.
        self.analyze = analyze
        if analyze:
            from repro.constraints.analysis import registration_errors

            problems = registration_errors(schema)
            if problems:
                raise SchemaError(
                    "static analysis rejected the schema: "
                    + "; ".join(d.render() for d in problems)
                )
        self._objects: dict[str, DBObject] = {}
        self._direct_extents: dict[str, set[str]] = {
            name: set() for name in schema.classes
        }
        #: Last issued oid counter value (oids are ``Class#N``); monotonic
        #: for the lifetime of the durable directory, never reused.
        self._oid_seq = 0
        self._deferred = False
        #: Dirty set of the enclosing transaction; None outside transactions.
        self._delta = None
        #: Undo log of the enclosing transaction (oid → pre-image);
        #: None outside transactions.
        self._undo: dict[str, tuple[DBObject, dict] | None] | None = None
        #: Undo logs of *every* open transaction level, outermost first —
        #: ``_undo`` is its last element while a transaction is open.  Lets
        #: a same-thread :meth:`snapshot` reconstruct the committed state
        #: from under a nested transaction.
        self._undo_stack: list[dict] = []
        #: Coarse writer lock: one mutator (or transaction) at a time.
        #: Reentrant, so transactions hold it across their operations.
        self._lock = threading.RLock()
        #: Snapshot-read machinery; inert until the first snapshot() call.
        self._concurrency = ConcurrencyControl(self)
        #: The image the store was recovered from; ``None`` for fresh
        #: stores.  Carries schema-drift diagnostics for the CLI.
        self._recovery_info: RecoveredImage | None = None
        #: (class, attribute) → declared type, for the dereferencing hot
        #: path.  Safe to cache for the store's lifetime: an attribute's
        #: type cannot be redeclared once the class exists, and states are
        #: type-checked against the schema before they are stored.
        self._attr_types: dict[tuple[str, str], Any] = {}
        #: Schema fingerprint as of the last *full* validation known to hold
        #: on this store; ``None`` until one has run.  Incremental
        #: enforcement needs a validated starting point (even an empty store
        #: can violate an ``exists``-style constraint) and must notice
        #: schema changes since — a rebound constant can invalidate
        #: constraints with no data delta at all.  When the baseline is
        #: missing or stale, enforcement falls back to full revalidation,
        #: and any clean full pass re-baselines.
        self._validated_fingerprint: int | None = None
        #: Maintained auxiliary indexes (deep extents, running aggregates,
        #: key hash maps); ``None`` on unindexed stores.  Created last: the
        #: manager reads the store's schema and (empty) contents.
        self._indexes = IndexManager(self) if indexed else None
        #: Durability write-through; ``None`` on purely in-memory stores.
        self._wal: WriteAheadLog | None = None
        from_environment = False
        if wal is None:
            wal = _wal_from_environment()
            from_environment = wal is not None
        elif wal is False:
            wal = None
        elif not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal)
        if wal is not None:
            if wal.has_data():
                raise EngineError(
                    f"durable state already exists at {str(wal.path)!r}; "
                    "use ObjectStore.open() to recover it"
                )
            from repro.tm.printer import schema_to_source

            try:
                source = schema_to_source(schema)
            except Exception:
                # The REPRO_WAL toggle is best-effort: a schema the TM
                # printer cannot render (integration-internal virtual
                # classes) skips durability instead of failing the store.
                if not from_environment:
                    raise
                source = None
            if source is not None:
                wal.initialize(source, schema.name, (), 0)
                self._wal = wal

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, oid: str) -> bool:
        return oid in self._objects

    def get(self, oid: str) -> DBObject:
        if oid not in self._objects:
            raise UnknownObjectError(f"no object with identifier {oid!r}")
        return self._objects[oid]

    def objects(self) -> Iterable[DBObject]:
        return self._objects.values()

    def extent(self, class_name: str, deep: bool = True) -> list[DBObject]:
        """The objects whose most specific class is ``class_name`` (or a
        subclass, when ``deep``).  Order is insertion order.

        O(|result|) (plus an O(k log k) sort for shallow extents, where k is
        the extent size): deep extents resolve from the maintained deep-extent
        index, shallow ones from ``_direct_extents``.  Only an unindexed
        store's deep extent falls back to the full-store scan.
        """
        if not self.schema.has_class(class_name):
            raise UnknownClassError(
                f"no class {class_name!r} in database {self.schema.name}"
            )
        objects = self._objects
        if not deep:
            # Direct extents are plain oid sets; engine oids embed the global
            # insertion counter, so insertion order is recoverable without
            # touching the rest of the store (malformed oids sort first
            # rather than raising, matching the index layer's degradation).
            oids = sorted(
                self._direct_extents.get(class_name, ()), key=oid_sort_key
            )
            return [objects[oid] for oid in oids]
        if self._indexes is not None:
            self._indexes.ensure_fresh()
            indexed = self._indexes.deep_extent_oids(class_name)
            if indexed is not None:
                return [objects[oid] for oid in indexed]
        names = set(self.schema.subclass_closure(class_name))
        return [obj for obj in objects.values() if obj.class_name in names]

    # -- mutation -----------------------------------------------------------------

    def insert(self, class_name: str, state: Mapping[str, Any] | None = None, **kwargs: Any) -> DBObject:
        """Create an object of ``class_name`` with the given attribute values.

        All effective attributes must be provided; values are type-checked
        (with safe coercions such as int→real applied).
        """
        with self._lock:
            obj, ticket = self._insert_locked(class_name, state, kwargs)
        self._await_durability(ticket)
        return obj

    def _insert_locked(
        self,
        class_name: str,
        state: Mapping[str, Any] | None,
        kwargs: Mapping[str, Any],
    ) -> tuple[DBObject, "int | None"]:
        if class_name not in self.schema.classes:
            raise UnknownClassError(
                f"no class {class_name!r} in database {self.schema.name}"
            )
        full_state = dict(state or {})
        full_state.update(kwargs)
        checked = self._check_types(class_name, full_state)
        self._check_writable()
        self._oid_seq += 1
        oid = f"{class_name}#{self._oid_prefix}{self._oid_seq}"
        obj = DBObject(oid, class_name, checked)
        self._objects[oid] = obj
        # setdefault: the class may have been added to the schema after the
        # store was created.
        self._direct_extents.setdefault(class_name, set()).add(oid)
        if self._indexes is not None:
            self._indexes.on_insert(obj)
        self._log_undo(oid, None)
        delta = self._new_delta()
        delta.record_insert(obj)
        try:
            self._after_mutation(obj, delta)
        # EngineError covers ConstraintViolation plus evaluation blowing up
        # on pre-existing inconsistencies (e.g. a dangling reference): the
        # insert must stay atomic either way.
        except EngineError:
            del self._objects[oid]
            self._direct_extents[class_name].discard(oid)
            if self._indexes is not None:
                self._indexes.on_delete(obj)
            raise
        # Write-through only after the insert is accepted: a rejected
        # operation must leave no trace in the log either.  The log append
        # and flush come *before* publication — if they fail, the record's
        # durable fate is unknown, so the in-memory insert is undone and
        # snapshots never see a state the durable prefix cannot replay.
        ticket = None
        if self._wal is not None:
            try:
                self._wal.log_insert(obj)
                ticket = self._wal_flush_point()
            except BaseException:
                del self._objects[oid]
                self._direct_extents[class_name].discard(oid)
                if self._indexes is not None:
                    self._indexes.on_delete(obj)
                raise
        self._publish_commit(((obj.oid, obj.class_name, obj.state),))
        if self._wal is not None:
            # The checkpoint policy runs after publication: its failure
            # abandons the ticket but the accepted commit stands.
            ticket = self._wal_checkpoint_policy(ticket)
        return obj, ticket

    def update(self, target: DBObject | str, **changes: Any) -> DBObject:
        """Change attribute values of an existing object."""
        with self._lock:
            obj, ticket = self._update_locked(target, changes)
        self._await_durability(ticket)
        return obj

    def _update_locked(
        self, target: DBObject | str, changes: Mapping[str, Any]
    ) -> tuple[DBObject, "int | None"]:
        obj = self.get(target.oid if isinstance(target, DBObject) else target)
        unknown = set(changes) - set(self.schema.effective_attributes(obj.class_name))
        if unknown:
            raise EngineError(
                f"class {obj.class_name} has no attributes {sorted(unknown)}"
            )
        new_state = dict(obj.state)
        new_state.update(changes)
        checked = self._check_types(obj.class_name, new_state)
        self._check_writable()
        old_state = obj.state
        self._log_undo(obj.oid, (obj, old_state))
        obj.state = checked
        if self._indexes is not None:
            self._indexes.on_update(obj, old_state, checked)
        delta = self._new_delta()
        delta.record_update(obj, set(changes))
        try:
            self._after_mutation(obj, delta)
        except EngineError:  # see insert(): keep the update atomic
            obj.state = old_state
            if self._indexes is not None:
                self._indexes.on_update(obj, checked, old_state)
            raise
        ticket = None
        if self._wal is not None:
            try:
                self._wal.log_update(obj)
                ticket = self._wal_flush_point()
            except BaseException:
                # See _insert_locked: memory must not run ahead of the
                # durable prefix, so a failed write-through undoes the
                # in-memory update before propagating.
                obj.state = old_state
                if self._indexes is not None:
                    self._indexes.on_update(obj, checked, old_state)
                raise
        self._publish_commit(((obj.oid, obj.class_name, obj.state),))
        if self._wal is not None:
            ticket = self._wal_checkpoint_policy(ticket)
        return obj, ticket

    def delete(self, target: DBObject | str) -> None:
        """Remove an object, re-checking the constraints the removal can
        invalidate (database constraints, and — on incremental stores —
        aggregate/key class constraints over the shrunk extent and object
        constraints that referenced the removed object)."""
        with self._lock:
            ticket = self._delete_locked(target)
        self._await_durability(ticket)

    def _delete_locked(self, target: DBObject | str) -> "int | None":
        obj = self.get(target.oid if isinstance(target, DBObject) else target)
        self._check_writable()
        self._log_undo(obj.oid, (obj, obj.state))
        del self._objects[obj.oid]
        self._direct_extents[obj.class_name].discard(obj.oid)
        if self._indexes is not None:
            self._indexes.on_delete(obj)
        delta = self._new_delta()
        delta.record_delete(obj)
        self._note_delta(delta)
        try:
            if self.enforce and not self._deferred:
                if self.incremental:
                    self._enforce_incremental(delta)
                else:
                    self._check_database_constraints()
        # EngineError also covers evaluation blowing up on a reference the
        # removal left dangling (ConstraintViolation is a subclass): the
        # delete must stay atomic either way.
        except EngineError:
            self._objects[obj.oid] = obj
            self._direct_extents[obj.class_name].add(obj.oid)
            if self._indexes is not None:
                self._indexes.on_insert(obj)
            self._restore_object_order()
            raise
        ticket = None
        if self._wal is not None:
            try:
                self._wal.log_delete(obj.oid)
                ticket = self._wal_flush_point()
            except BaseException:
                # See _insert_locked: re-register the object so memory
                # stays on the durable prefix.
                self._objects[obj.oid] = obj
                self._direct_extents[obj.class_name].add(obj.oid)
                if self._indexes is not None:
                    self._indexes.on_insert(obj)
                self._restore_object_order()
                raise
        self._publish_commit(((obj.oid, obj.class_name, None),))
        if self._wal is not None:
            ticket = self._wal_checkpoint_policy(ticket)
        return ticket

    # -- type checking -----------------------------------------------------------------

    def _check_types(self, class_name: str, state: Mapping[str, Any]) -> dict[str, Any]:
        attributes = self.schema.effective_attributes(class_name)
        missing = set(attributes) - set(state)
        if missing:
            raise EngineError(
                f"missing attributes for {class_name}: {sorted(missing)}"
            )
        extra = set(state) - set(attributes)
        if extra:
            raise EngineError(
                f"class {class_name} has no attributes {sorted(extra)}"
            )
        checked: dict[str, Any] = {}
        for name, attribute in attributes.items():
            value = state[name]
            context = f"{class_name}.{name}"
            if isinstance(attribute.tm_type, ClassRef):
                value = value.oid if isinstance(value, DBObject) else value
                if value not in self._objects:
                    raise EngineError(
                        f"{context}: reference to unknown object {value!r}"
                    )
                target = self._objects[value]
                if not self.schema.is_subclass_of(
                    target.class_name, attribute.tm_type.class_name
                ):
                    raise EngineError(
                        f"{context}: object {value!r} is a {target.class_name}, "
                        f"not a {attribute.tm_type.class_name}"
                    )
                checked[name] = value
                continue
            try:
                checked[name] = coerce_value(value, attribute.tm_type)
            except Exception:
                check_value(value, attribute.tm_type, context)
                checked[name] = value
        return checked

    # -- dereferencing & evaluation contexts --------------------------------------------

    def get_attr(self, obj: Any, name: str) -> Any:
        """Attribute accessor for the constraint evaluator.

        Dereferences reference attributes: reading ``publisher`` from an Item
        yields the Publisher *object*, so paths like ``publisher.name``
        traverse the store.
        """
        if isinstance(obj, DBObject):
            if name not in obj.state:
                raise EngineError(
                    f"{obj.class_name} object {obj.oid} has no attribute {name!r}"
                )
            value = obj.state[name]
            key = (obj.class_name, name)
            if key in self._attr_types:
                tm_type = self._attr_types[key]
            else:
                try:
                    tm_type = self.schema.attribute_type(obj.class_name, name)
                except SchemaError:
                    tm_type = None
                self._attr_types[key] = tm_type
            if isinstance(tm_type, ClassRef) and isinstance(value, str):
                return self.get(value)
            return value
        if isinstance(obj, Mapping):
            value = obj[name]
            if isinstance(value, str) and value in self._objects:
                return self._objects[value]
            return value
        raise EngineError(f"cannot read attribute {name!r} from {obj!r}")

    def eval_context(
        self,
        current: Any = None,
        self_extent_class: str | None = None,
        bindings: dict[str, Any] | None = None,
    ) -> EvalContext:
        """An :class:`EvalContext` wired to this store's extents/constants.

        ``self_extent`` is *lazy*: on indexed stores most aggregate and key
        checks are answered by the index probe (``indexes``) without ever
        materializing the extent, which is what keeps those checks O(1)."""
        return EvalContext(
            current=current,
            bindings=bindings or {},
            extents=_ExtentView(self),
            self_extent=(
                _LazyExtent(self, self_extent_class) if self_extent_class else ()
            ),
            self_extent_class=self_extent_class,
            constants=self.schema.constants,
            get_attr=self.get_attr,
            indexes=self._indexes.probe() if self._indexes is not None else None,
        )

    # -- enforcement --------------------------------------------------------------------

    def _new_delta(self):
        from repro.engine.incremental import MutationDelta

        return MutationDelta()

    def _note_delta(self, delta) -> None:
        """Accumulate an operation's dirty set into the transaction's."""
        if self._deferred and self._delta is not None:
            self._delta.merge(delta)

    def _restore_object_order(self) -> None:
        """Re-sort ``_objects`` into insertion order after a removed object
        was re-registered (which appends at the end of the dict).  Engine
        oids embed the global insertion counter (``Class#N``), so the order
        is recoverable without a snapshot.  The key is the same
        ``(counter, oid)`` pair the extent indexes sort by, so indexed and
        unindexed extents agree on one deterministic order even when a
        counter cannot be parsed."""
        self._objects = dict(
            sorted(self._objects.items(), key=lambda item: oid_sort_key(item[0]))
        )

    def _log_undo(self, oid: str, entry: "tuple[DBObject, dict] | None") -> None:
        """Record an object's pre-image the first time a transaction touches
        it.  ``None`` means the object did not exist (insert); the pre-image
        dict is the abandoned state mapping, so no copy is needed."""
        if self._undo is not None:
            self._undo.setdefault(oid, entry)

    def dependency_index(self):
        """The cached constraint-dependency index for this store's schema,
        rebuilt when the schema fingerprint changes."""
        from repro.engine.incremental import ConstraintDependencyIndex

        return ConstraintDependencyIndex.for_schema(self.schema)

    def _schema_changed_since_validation(self) -> bool:
        return (
            self._validated_fingerprint is None
            or self.schema.fingerprint() != self._validated_fingerprint
        )

    def _revalidate_fully(self) -> None:
        """Full-store validation when no valid incremental baseline exists
        (no full pass yet, or the schema changed since the last one); raises
        on any violation."""
        violations = self.audit()
        if violations:
            raise ConstraintViolation(
                "full revalidation",
                "; ".join(violation.describe() for violation in violations),
                violations=violations,
                cores=self._cores_for(violations),
            )

    def _enforce_incremental(self, delta) -> None:
        """The delta-driven enforcement step shared by all mutations."""
        if self._schema_changed_since_validation():
            self._revalidate_fully()
            return
        from repro.engine.incremental import check_delta

        check_delta(self, delta)

    def _after_mutation(self, obj: DBObject, delta=None) -> None:
        if delta is not None:
            self._note_delta(delta)
        if not self.enforce or self._deferred:
            return
        if self.incremental and delta is not None:
            self._enforce_incremental(delta)
            return
        from repro.engine.enforcement import (
            check_class_constraints,
            check_database_constraints,
            check_object_constraints,
        )

        check_object_constraints(self, obj)
        check_class_constraints(self, obj.class_name)
        check_database_constraints(self)

    def _check_database_constraints(self) -> None:
        from repro.engine.enforcement import check_database_constraints

        check_database_constraints(self)

    def audit(self) -> list:
        """Validate the entire store; returns structured
        :class:`~repro.engine.enforcement.Violation` objects.

        A clean full pass re-baselines the validated schema fingerprint:
        the store is known consistent under the *current* schema, so
        incremental enforcement may resume."""
        from repro.engine.enforcement import all_violations

        found = all_violations(self)
        if not found:
            self._validated_fingerprint = self.schema.fingerprint()
        return found

    def check_all(self) -> list[str]:
        """Validate the entire store; returns violation descriptions
        (:meth:`audit` keeps the structured objects)."""
        return [violation.describe() for violation in self.audit()]

    def explain_violations(self, violations=None) -> list:
        """Subset-minimal conflict cores for the store's standing
        violations (defaults to a fresh :meth:`audit`); see
        :mod:`repro.engine.explain`.  Each core is a set of objects that
        still conflicts with its constraint in isolation, while removing
        any single member resolves the conflict."""
        from repro.engine.explain import explain_violations

        return explain_violations(self, violations)

    def _cores_for(self, violations) -> tuple:
        """Cores attached to a failure-path exception.  Best-effort by
        contract: explanation must never mask the violation being raised,
        so any error inside extraction degrades to 'no cores'."""
        if not self.explain:
            return ()
        from repro.engine.explain import explain_violations

        try:
            return tuple(explain_violations(self, violations))
        except Exception:  # pragma: no cover - defensive, see docstring
            return ()

    # -- durability ---------------------------------------------------------------------

    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached write-ahead log; ``None`` on in-memory stores."""
        return self._wal

    @property
    def durable(self) -> bool:
        """Whether this store writes through to a write-ahead log.

        Part of the :class:`~repro.engine.api.StoreAPI` surface: callers
        probe it before :meth:`checkpoint`, which refuses on in-memory
        stores."""
        return self._wal is not None

    @classmethod
    def open(
        cls,
        path: str | Path,
        schema: DatabaseSchema | None = None,
        *,
        enforce: bool = True,
        incremental: bool = True,
        indexed: bool = True,
        sync: bool = False,
        checkpoint_every: int = 10_000,
        verify: bool = True,
        faults: "FaultInjector | None" = None,
        analyze: bool = False,
        oid_namespace: int | None = None,
        resolutions: "Mapping[str, bool] | None" = None,
    ) -> "ObjectStore":
        """Open the durable store at ``path``, recovering existing state.

        When the directory holds a snapshot, recovery replays it plus the
        committed tail of the write-ahead log (uncommitted transaction
        tails and torn records are discarded — see
        :mod:`repro.engine.wal`), rebuilds the maintained indexes from the
        recovered contents, truncates any torn log tail, and resumes
        appending.  The schema comes from the snapshot; passing ``schema``
        overrides it (the caller owns compatibility).

        When the directory is empty or missing, ``schema`` is required and
        a fresh durable store is created.

        With ``verify`` (the default) recovery ends with a full constraint
        audit — raising :class:`ConstraintViolation` (with structured
        ``violations``) if the recovered state is inconsistent, and
        re-baselining incremental enforcement when clean.  Disable it to
        inspect stores whose history ran with ``enforce=False``.

        ``faults`` threads a :class:`~repro.engine.faults.FaultInjector`
        through every file operation of the attached log (testing only;
        ``None`` is a true no-op).

        ``analyze`` opts into schema static analysis at registration and
        redundancy pruning on the incremental hot path (see
        :class:`ObjectStore`).

        ``oid_namespace`` restores a shard core's oid prefix (see
        ``__init__``); ``resolutions`` is the commit router's recovery hook
        for two-phase-commit brackets: a mapping of global transaction ids
        to their decided outcomes.  Prepared-but-unresolved brackets found
        in the log are applied (``True``) or discarded (``False``, also the
        presumed-abort default for gids missing from the mapping) and a
        resolution marker is logged for each.  With ``resolutions=None``
        (the default, standalone behaviour) in-doubt brackets stay
        unapplied and unlogged — only a router that has seen *every*
        shard's log may decide them.
        """
        from repro.tm.parser import parse_database

        wal = WriteAheadLog(
            path, sync=sync, checkpoint_every=checkpoint_every, faults=faults
        )
        image = load_image(path)
        if image is None:
            if schema is None:
                raise EngineError(
                    f"no durable store at {str(path)!r}; pass a schema to "
                    "create one"
                )
            return cls(
                schema,
                enforce=enforce,
                incremental=incremental,
                indexed=indexed,
                wal=wal,
                analyze=analyze,
                oid_namespace=oid_namespace,
            )
        if schema is None:
            schema = parse_database(image.schema_source)
            # Constant rebinds replayed from post-checkpoint schema-change
            # records; a full-schema record already folded them into the
            # re-parsed source (callers overriding ``schema`` own the whole
            # schema, replayed changes included).
            for name, value in image.constants:
                schema.set_constant(name, value)
        resolved: list[tuple[str, bool]] = []
        if resolutions is not None and image.prepared:
            from repro.engine.wal import apply_resolutions

            resolved = apply_resolutions(image, resolutions)
        store = cls(
            schema,
            enforce=enforce,
            incremental=incremental,
            indexed=indexed,
            wal=False,
            analyze=analyze,
            oid_namespace=oid_namespace,
        )
        store._load_image(image)
        wal.resume(image)
        for gid, ok in resolved:
            wal.log_resolve(gid, ok)
        if resolved:
            ticket = wal.commit_flush()
            if ticket is not None:
                wal.wait_durable(ticket)
        # Keep the image as diagnostics (replay counts, schema drift) but
        # drop its O(store) contents list: the store must not pin every
        # recovery-time state dict for its whole lifetime.
        image.objects = []
        store._recovery_info = image
        store._wal = wal
        if verify:
            violations = store.audit()
            if violations:
                raise ConstraintViolation(
                    "recovery",
                    "; ".join(violation.describe() for violation in violations),
                    violations=violations,
                    cores=store._cores_for(violations),
                )
        return store

    def _load_image(self, image: RecoveredImage) -> None:
        """Adopt recovered contents wholesale, then rebuild the maintained
        indexes from them (the same O(store) fingerprint-rebuild machinery
        schema changes use — recovery is a rebuild trigger, not a replay of
        per-mutation hooks)."""
        for oid, class_name, state in image.objects:
            obj = DBObject(oid, class_name, state)
            self._objects[oid] = obj
            self._direct_extents.setdefault(class_name, set()).add(oid)
        self._oid_seq = max(self._oid_seq, image.counter)
        self._restore_object_order()
        if self._indexes is not None:
            self._indexes.rebuild()

    def checkpoint(self) -> None:
        """Write a snapshot of the live store and compact the log.

        Amortizes recovery: replay restarts from the snapshot instead of
        the history's beginning.  Only callable outside transactions — a
        snapshot must never capture uncommitted state."""
        with self._lock:
            if self._wal is None:
                raise EngineError("store has no write-ahead log attached")
            if self._deferred:
                raise EngineError("cannot checkpoint inside a transaction")
            from repro.tm.printer import schema_to_source

            self._wal.write_snapshot(
                schema_to_source(self.schema),
                self.schema.name,
                (
                    (obj.oid, obj.class_name, obj.state)
                    for obj in self._objects.values()
                ),
                self._oid_seq,
            )

    def close(self) -> None:
        """Flush and release the write-ahead log (no-op when in-memory)."""
        with self._lock:
            if self._wal is not None:
                self._wal.close()

    def _check_writable(self) -> None:
        """Refuse mutations on a poisoned (fail-stopped) durable store.

        Raises :class:`~repro.errors.StorePoisonedError` before any
        in-memory state is touched.  Reads — snapshots included — keep
        working; reopening the directory recovers the durable prefix."""
        if self._wal is not None:
            self._wal.check_poisoned()

    def _wal_flush_point(self) -> "int | None":
        """Flush half of an auto-commit point, under the writer lock and
        *before* publication: a failure here means the record's durable
        fate is unknown, and the caller rolls the in-memory mutation back.
        Inside a transaction the commit/abort marker is the flush point,
        so this is a no-op."""
        if self._deferred:
            return None
        return self._wal.commit_flush()

    def _wal_checkpoint_policy(self, ticket: "int | None") -> "int | None":
        """Checkpoint half of an auto-commit point, *after* publication:
        the commit is flushed and accepted, so a checkpoint failure only
        abandons the unredeemed ticket (keeping group-commit accounting
        balanced) and propagates — it never rolls the mutation back.

        Returns the ticket to redeem once the writer lock is released
        (``None`` when no fsync is owed)."""
        if self._deferred:
            return ticket
        try:
            if self._wal.should_checkpoint():
                self.checkpoint()
        except BaseException:
            self._wal.abandon_ticket(ticket)
            raise
        return ticket

    def _await_durability(self, ticket: "int | None") -> None:
        """Redeem a group-commit ticket.  Called with the writer lock
        released, so concurrent committers batch into one fsync."""
        if ticket is not None and self._wal is not None:
            self._wal.wait_durable(ticket)

    def set_constant(self, name: str, value: Any) -> None:
        """Rebind a schema constant *through the store*.

        Equivalent to ``store.schema.set_constant`` for in-memory stores,
        but durable: the rebind is logged as a schema-change record, so
        recovery re-applies it even when it postdates the last checkpoint.
        Refused inside a transaction (rollback does not undo schema
        changes, so the log must not bracket them).  Like a direct schema
        mutation, it does not re-audit eagerly — the next mutation notices
        the fingerprint change and falls back to full revalidation.
        """
        with self._lock:
            if self._deferred:
                raise EngineError(
                    "cannot rebind a schema constant inside a transaction"
                )
            self._check_writable()
            existed = name in self.schema.constants
            previous = self.schema.constants.get(name)
            self.schema.set_constant(name, value)
            ticket = None
            if self._wal is not None:
                try:
                    self._wal.log_set_constant(name, value)
                    ticket = self._wal_flush_point()
                except BaseException:
                    # The record's durable fate is unknown: restore the
                    # in-memory binding so the schema never runs ahead of
                    # the durable prefix.
                    if existed:
                        self.schema.set_constant(name, previous)
                    else:
                        self.schema.constants.pop(name, None)
                    raise
                ticket = self._wal_checkpoint_policy(ticket)
        self._await_durability(ticket)

    def log_schema_change(self) -> None:
        """Record the *current* schema in the write-ahead log.

        Call after mutating the schema in place (added classes or
        constraints, conformation-style rebinds): the re-printed source is
        logged as a full schema record, so recovery replays the change
        instead of resurrecting the checkpoint's stale schema.  No-op for
        in-memory stores; refused inside a transaction.

        The schema was already mutated in place by the caller, so a log
        failure here cannot be rolled back — the write-ahead log poisons
        itself (the store degrades to read-only) and the error propagates;
        reopening the directory recovers the schema as of the durable
        prefix, without the unlogged change.
        """
        with self._lock:
            if self._wal is None:
                return
            if self._deferred:
                raise EngineError(
                    "cannot log a schema change inside a transaction"
                )
            self._check_writable()
            from repro.tm.printer import schema_to_source

            self._wal.log_schema(schema_to_source(self.schema))
            ticket = self._wal_flush_point()
            ticket = self._wal_checkpoint_policy(ticket)
        self._await_durability(ticket)

    @property
    def recovery_info(self) -> "RecoveredImage | None":
        """Diagnostics of the recovery this store was opened from
        (``None`` for fresh stores) — replay counts, torn-tail flag, and
        whether post-checkpoint schema records drifted the schema past the
        snapshot's digest.  Its ``objects`` list is emptied once adopted:
        only the scalar diagnostics are retained."""
        return self._recovery_info

    # -- concurrency --------------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """An immutable point-in-time view of the committed store.

        Safe to take and read from any thread while writers keep
        committing; acquisition is O(1) and lock-free once the snapshot
        machinery is active (the first call activates it under the writer
        lock — O(store), once).  A snapshot never observes uncommitted
        state: taken mid-transaction — even from the writing thread — it
        sees the committed pre-state.  See :mod:`repro.engine.concurrency`.
        """
        control = self._concurrency
        if not control.active:
            with self._lock:
                control.activate(self._committed_view())
        return control.snapshot()

    def _committed_view(self) -> list[tuple[str, str, Mapping[str, Any]]]:
        """The committed contents (called under the writer lock): the live
        objects, patched back to their pre-images through every open
        transaction level, innermost first so outermost pre-images win."""
        view: dict[str, tuple[str, Mapping[str, Any]]] = {
            oid: (obj.class_name, obj.state)
            for oid, obj in self._objects.items()
        }
        for undo in reversed(self._undo_stack):
            for oid, entry in undo.items():
                if entry is None:
                    view.pop(oid, None)
                else:
                    obj, state = entry
                    view[oid] = (obj.class_name, state)
        return [(oid, cls, state) for oid, (cls, state) in view.items()]

    def _publish_commit(
        self, changes: Iterable[tuple[str, str, "Mapping[str, Any] | None"]]
    ) -> None:
        """Thread a committed change set into the snapshot history (no-op
        inside transactions — the outermost commit publishes — and until a
        first snapshot activates the machinery)."""
        if self._deferred or not self._concurrency.active:
            return
        self._concurrency.publish(changes)

    # -- transactions -------------------------------------------------------------------

    def transaction(self, validate: bool = True):
        """A snapshot transaction with deferred constraint checking.

        Inside the ``with`` block constraints are not enforced; at exit the
        whole store is validated and rolled back (raising
        :class:`ConstraintViolation`) if any constraint is broken.

        ``validate=False`` skips the commit-time validation entirely — the
        caller owns consistency.  The commit router uses this to wrap shard-
        core brackets whose validation it performs itself against the merged
        cross-shard state; everything else should leave it on.
        """
        from repro.engine.transactions import Transaction

        return Transaction(self, validate=validate)


def _wal_from_environment() -> WriteAheadLog | None:
    """A throwaway write-ahead log when ``REPRO_WAL`` is set.

    Lets an unmodified test suite exercise the durability write-through on
    every store it builds (CI runs the tier-1 suite once this way).  The
    temp directory lives exactly as long as the log object.
    """
    if not os.environ.get("REPRO_WAL"):
        return None
    directory = tempfile.mkdtemp(prefix="repro-wal-")
    wal = WriteAheadLog(directory, checkpoint_every=0)
    weakref.finalize(wal, shutil.rmtree, directory, True)
    return wal


class _LazyExtent:
    """A deep extent resolved only when iterated — the scan fallback for
    aggregate/key checks the index probe could not answer."""

    __slots__ = ("_store", "_class_name")

    def __init__(self, store: ObjectStore, class_name: str):
        self._store = store
        self._class_name = class_name

    def __iter__(self):
        return iter(self._store.extent(self._class_name))


class _ExtentView(Mapping):
    """Lazy class-name → extent mapping for evaluation contexts."""

    def __init__(self, store: ObjectStore):
        self._store = store

    def __getitem__(self, class_name: str) -> list[DBObject]:
        return self._store.extent(class_name)

    def __iter__(self):
        return iter(self._store.schema.classes)

    def __len__(self) -> int:
        return len(self._store.schema.classes)

    def __contains__(self, class_name: object) -> bool:
        return class_name in self._store.schema.classes
