"""Incremental (delta-driven) constraint enforcement.

The seed engine re-evaluated *every* constraint against the *whole* store at
each transaction commit.  This module implements the classic remedy —
simplified integrity checking: evaluate only the constraints that the update
delta can possibly have invalidated.

Three pieces cooperate:

* :class:`ConstraintDependencyIndex` — a static index, built once per schema
  (and rebuilt when :meth:`~repro.tm.schema.DatabaseSchema.fingerprint`
  changes), that walks each constraint's AST and records what it *reads*:
  ``(class, attribute)`` pairs, class extents whose membership matters, and
  references into other classes.  Reads are expanded over the subclass
  closure, because an object of a subclass lives in every ancestor's extent.

* :class:`MutationDelta` — the dirty set.  Each ``insert``/``update``/
  ``delete`` records the touched ``(class, attribute)`` pairs, the extents
  whose membership changed, and the touched object identifiers (with the
  attribute names changed per object).  Deltas merge, so a transaction
  accumulates one delta across all of its operations.

* the delta-driven validators — :func:`check_delta` (fail-fast, used for
  single-operation enforcement) and :func:`delta_violations` (collecting,
  used at transaction commit) — which intersect the dirty set with the index
  and check only the affected constraints.

The same delta discipline underpins durability: on a durable store every
operation a delta records is also written through to the write-ahead log
(:mod:`repro.engine.wal`), bracketed by the transaction markers that mirror
the undo-log merge, and a recovered store re-enters this module's contract
by taking a fresh full-validation baseline (a clean
:meth:`~repro.engine.store.ObjectStore.audit` re-baselines the schema
fingerprint, after which checking is delta-driven again).

Correctness argument: assuming the store satisfied all constraints before the
delta, any newly violated constraint must read something the delta wrote
(an attribute value or an extent membership), so it is matched by the
intersection.  Anything the extractor cannot resolve statically (a path
through an unknown attribute, an unknown class) marks the constraint
*universal* — checked on every delta — so approximation errs on the side of
checking.  Stores that were already inconsistent (built with
``enforce=False``) are outside this contract; use
:meth:`~repro.engine.store.ObjectStore.check_all` for a full audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Any, TYPE_CHECKING
import weakref
from weakref import WeakKeyDictionary

from repro.constraints.ast import (
    Aggregate,
    KeyConstraint,
    Node,
    Path,
    Quantified,
    match_referential_body,
)
from repro.constraints.evaluate import compiled, evaluate
from repro.constraints.model import Constraint, ConstraintKind
from repro.errors import (
    ConstraintViolation,
    EngineError,
    EvaluationError,
    SchemaError,
)
from repro.types.primitives import ClassRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.objects import DBObject
    from repro.engine.store import ObjectStore
    from repro.tm.schema import DatabaseSchema


# ---------------------------------------------------------------------------
# dirty sets
# ---------------------------------------------------------------------------


@dataclass
class MutationDelta:
    """What a batch of mutations touched.

    ``objects`` maps oid → the set of attribute names changed on that object,
    with ``None`` meaning "all of them" (inserts).  ``record_delete`` drops
    the oid from its own delta, but merging per-operation deltas into a
    transaction's accumulated delta can leave oids that were later deleted;
    validators skip identifiers that no longer resolve.
    """

    attrs: set[tuple[str, str]] = field(default_factory=set)
    extents: set[str] = field(default_factory=set)
    objects: dict[str, set[str] | None] = field(default_factory=dict)

    def record_insert(self, obj: "DBObject") -> None:
        self.extents.add(obj.class_name)
        self.attrs.update((obj.class_name, name) for name in obj.state)
        self.objects[obj.oid] = None

    def record_update(self, obj: "DBObject", changed: set[str]) -> None:
        self.attrs.update((obj.class_name, name) for name in changed)
        previous = self.objects.get(obj.oid, set())
        if previous is None:
            return  # inserted in this delta: already "all attributes"
        self.objects[obj.oid] = set(previous) | changed

    def record_delete(self, obj: "DBObject") -> None:
        self.extents.add(obj.class_name)
        self.attrs.update((obj.class_name, name) for name in obj.state)
        self.objects.pop(obj.oid, None)

    def merge(self, other: "MutationDelta") -> None:
        self.attrs |= other.attrs
        self.extents |= other.extents
        for oid, changed in other.objects.items():
            if changed is None or self.objects.get(oid, set()) is None:
                self.objects[oid] = None
            else:
                self.objects[oid] = set(self.objects.get(oid) or set()) | changed

    def copy(self) -> "MutationDelta":
        return MutationDelta(
            attrs=set(self.attrs),
            extents=set(self.extents),
            objects={
                oid: (None if changed is None else set(changed))
                for oid, changed in self.objects.items()
            },
        )


# ---------------------------------------------------------------------------
# the constraint-dependency index
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IndexedConstraint:
    """One constraint plus the statically extracted read set."""

    constraint: Constraint
    #: The owner class and its subclasses (empty for database constraints).
    owner_extent: frozenset[str]
    #: Every ``(class, attribute)`` the formula may read, subclass-expanded.
    attrs: frozenset[tuple[str, str]]
    #: Classes whose extent *membership* the formula depends on.
    extents: frozenset[str]
    #: Reads taken directly off the constrained object (first path segment
    #: rooted at the owner).
    own: frozenset[tuple[str, str]] = frozenset()
    #: Reads that reach *other* objects — through reference dereferences,
    #: quantifier variables or aggregate items.  Changes to those can
    #: invalidate the constraint on any object of the owner, even when the
    #: read class lies inside the owner's own subclass closure (a
    #: self-referencing ``Manager.rep : Employee`` reads other employees).
    foreign: frozenset[tuple[str, str]] = frozenset()
    #: True when static analysis could not resolve part of the formula;
    #: universal constraints are checked on every delta.
    universal: bool = False
    #: ``(func, class, attribute)`` aggregates the formula evaluates over a
    #: statically known extent; the :class:`~repro.engine.indexes.IndexManager`
    #: materializes a running aggregate for each (``attribute`` is ``None``
    #: for bare counts, answered from the deep-extent index).
    aggregate_specs: frozenset[tuple[str, str, str | None]] = frozenset()
    #: ``(class, attributes)`` uniqueness checks; each gets a key hash index.
    key_specs: frozenset[tuple[str, tuple[str, ...]]] = frozenset()
    #: ``(referrer class, attribute, referenced class)`` referential
    #: quantifier reads (``exists y in D | y.a = x`` with ``a`` a reference
    #: into the referenced class); the
    #: :class:`~repro.engine.indexes.IndexManager` materializes a
    #: reference-count index for each.
    reference_specs: frozenset[tuple[str, str, str]] = frozenset()
    #: The formula's compiled closure, bound once at index build so checks
    #: skip the cache lookup (which re-hashes the AST); ``None`` when the
    #: formula does not compile — evaluation then fails at check time with
    #: the usual error shape.
    run: Any = None

    @property
    def kind(self) -> ConstraintKind:
        return self.constraint.kind

    def evaluate_with(self, ctx) -> Any:
        if self.run is not None:
            return self.run(ctx)
        return evaluate(self.constraint.formula, ctx)

    def foreign_attrs(self) -> frozenset[tuple[str, str]]:
        return self.foreign

    def own_attr_names(self) -> frozenset[str]:
        """Attribute names read directly off the constrained object."""
        return frozenset(attr for _cls, attr in self.own)

    def affected_by(self, delta: MutationDelta) -> bool:
        return (
            self.universal
            or bool(self.attrs & delta.attrs)
            or bool(self.extents & delta.extents)
        )


class _ReadSetBuilder:
    """Walks one constraint formula, accumulating the read set."""

    def __init__(self, schema: "DatabaseSchema", owner: str | None):
        self.schema = schema
        self.owner = owner
        self.own: set[tuple[str, str]] = set()
        self.foreign: set[tuple[str, str]] = set()
        self.extents: set[str] = set()
        self.aggregates: set[tuple[str, str, str | None]] = set()
        self.keys: set[tuple[str, tuple[str, ...]]] = set()
        self.references: set[tuple[str, str, str]] = set()
        self.universal = False

    def closure(self, class_name: str) -> list[str]:
        return [class_name, *self.schema.subclasses_of(class_name)]

    def walk(self, node: Node, env: dict[str, str | None]) -> None:
        if isinstance(node, Quantified):
            if not self.schema.has_class(node.class_name):
                self.universal = True
                return
            self.extents.update(self.closure(node.class_name))
            self._note_referential(node)
            self.walk(node.body, {**env, node.var: node.class_name})
            return
        if isinstance(node, Aggregate):
            base = self.owner if node.collection == "self" else node.collection
            if base is None or not self.schema.has_class(base):
                self.universal = True
                return
            self.extents.update(self.closure(base))
            if node.over is not None:
                self._walk_path(base, (node.over,), owner_rooted=False)
            # Register the aggregate for materialization when its reads are
            # statically resolvable (the attribute is effective on the base
            # class, hence on every member of the deep extent).
            if node.over is None or node.over in self.schema.effective_attributes(base):
                self.aggregates.add((node.func, base, node.over))
            return
        if isinstance(node, KeyConstraint):
            if self.owner is None or not self.schema.has_class(self.owner):
                self.universal = True
                return
            self.extents.update(self.closure(self.owner))
            for attr in node.attributes:
                self._walk_path(self.owner, (attr,), owner_rooted=False)
            attributes = self.schema.effective_attributes(self.owner)
            # Reference-typed key components are left to the scan path: it
            # *dereferences* them (raising on a dangling oid), while a hash
            # index would compare raw oids — a semantic divergence.
            if all(
                attr in attributes
                and not isinstance(attributes[attr].tm_type, ClassRef)
                for attr in node.attributes
            ):
                self.keys.add((self.owner, node.attributes))
            return
        if isinstance(node, Path):
            if node.parts[0] in env:
                # Rooted at a quantifier variable: a read of *another*
                # object, whatever its class.
                self._walk_path(
                    env[node.parts[0]], node.parts[1:], owner_rooted=False
                )
            else:
                self._walk_path(self.owner, node.parts, owner_rooted=True)
            return
        for child in node.children():
            self.walk(child, env)

    def _note_referential(self, node: Quantified) -> None:
        """Register a reference spec for a referential existential.

        ``exists y in D | y.a = <expr>`` (either operand order) with ``a`` a
        reference attribute reads "who references ``<expr>``" — the shape a
        maintained referrer-count index answers in O(1), both standalone and
        as the body of the enclosing ``forall``/``exists`` verdict forms
        (see :func:`repro.constraints.ast.match_referential_quantifier`).
        The index counts *raw* a-values over the whole deep extent of D, so
        registration requires every class in D's closure to agree on the
        attribute's reference target; redeclared or non-reference slots stay
        on the scan path.
        """
        if node.kind != "exists":
            return
        match = match_referential_body(node.body, node.var)
        if match is None:
            return
        attribute, _other = match
        referenced: str | None = None
        for cls in self.closure(node.class_name):
            target = self.schema.reference_target(cls, attribute)
            if target is None:
                return
            if referenced is None:
                referenced = target
            elif target != referenced:
                return
        if referenced is not None and self.schema.has_class(referenced):
            self.references.add((node.class_name, attribute, referenced))

    def _walk_path(
        self, start: str | None, parts: tuple[str, ...], owner_rooted: bool
    ) -> None:
        """Record ``(class, attr)`` reads along a dotted path, following
        reference attributes into the classes they point at.

        Only the *first* segment of an owner-rooted path reads the
        constrained object itself; every segment after a dereference (and
        every segment of a variable-rooted path) reads a different object
        and lands in ``foreign``.
        """
        current: str | None = start
        for index, part in enumerate(parts):
            if current is None or not self.schema.has_class(current):
                self.universal = True
                return
            attributes = self.schema.effective_attributes(current)
            if part not in attributes:
                # A variable-free name we cannot type (e.g. a quantifier
                # variable compared wholesale, or a rewritten attribute):
                # treat conservatively.
                self.universal = True
                return
            target = self.own if owner_rooted and index == 0 else self.foreign
            for cls in self.closure(current):
                target.add((cls, part))
            tm_type = attributes[part].tm_type
            if isinstance(tm_type, ClassRef):
                # Reading a reference depends on the referenced object's
                # *existence* even when no attribute of it is read (a bare
                # ref comparison): deleting a member of the target extent
                # can leave the reference dangling.
                self.extents.update(self.closure(tm_type.class_name))
                current = tm_type.class_name
            elif index < len(parts) - 1:
                self.universal = True
                return
            else:
                current = None


#: schema → index, invalidated by fingerprint comparison.
_INDEX_CACHE: "WeakKeyDictionary[DatabaseSchema, ConstraintDependencyIndex]" = (
    WeakKeyDictionary()
)


class ConstraintDependencyIndex:
    """Read sets for every constraint of a schema, grouped by kind.

    Building the index also warms the compiled-evaluation cache
    (:func:`repro.constraints.evaluate.compiled`) for every constraint
    formula, so the first post-build check pays no lowering cost.
    """

    def __init__(self, schema: "DatabaseSchema"):
        # Held weakly: the index is a value in the schema-keyed
        # WeakKeyDictionary cache, and a strong reference here would pin the
        # key alive, leaking one (schema, index) pair per schema forever.
        self._schema_ref = weakref.ref(schema)
        self.fingerprint = schema.fingerprint()
        self.object_constraints: list[IndexedConstraint] = []
        self.class_constraints: list[IndexedConstraint] = []
        self.database_constraints: list[IndexedConstraint] = []
        self._by_constraint: dict[Constraint, IndexedConstraint] = {}
        for constraint in schema.all_constraints():
            entry = self._analyze(constraint)
            self._by_constraint[constraint] = entry
            if constraint.kind is ConstraintKind.OBJECT:
                self.object_constraints.append(entry)
            elif constraint.kind is ConstraintKind.CLASS:
                self.class_constraints.append(entry)
            else:
                self.database_constraints.append(entry)
        # Martinenghi-style update-pattern dispatch: specialize the object
        # constraints per mutation pattern at index-build time.  An insert
        # into class C must check every effective object constraint of C; an
        # update of attribute a on a C object must check exactly those whose
        # read set contains (C, a) (plus universal ones).  Precomputing both
        # replaces the per-mutation dirty-set ∩ read-set walk with a direct
        # table lookup.  The tables are semantics-preserving (they encode the
        # same relevance test the walk performed), so they serve every store.
        self.insert_checks: dict[str, tuple[IndexedConstraint, ...]] = {}
        self.update_checks: dict[tuple[str, str], tuple[IndexedConstraint, ...]] = {}
        for class_name in schema.classes:
            effective: list[IndexedConstraint] = []
            for constraint in schema.effective_object_constraints(class_name):
                entry = self._by_constraint.get(constraint)
                if entry is not None:
                    effective.append(entry)
            self.insert_checks[class_name] = tuple(effective)
            for attr in schema.effective_attributes(class_name):
                self.update_checks[(class_name, attr)] = tuple(
                    e
                    for e in effective
                    if e.universal or (class_name, attr) in e.attrs
                )
        #: Lazily computed set of safely prunable constraints (analysis
        #: pass 4); ``None`` until a store with ``analyze=True`` asks.
        self._pruned: frozenset[Constraint] | None = None

    def _analyze(self, constraint: Constraint) -> IndexedConstraint:
        schema = self._schema_ref()
        assert schema is not None  # only called while building, schema alive
        builder = _ReadSetBuilder(schema, constraint.owner)
        try:
            builder.walk(constraint.formula, {})
        except SchemaError:
            builder.universal = True
        owner_extent: frozenset[str] = frozenset()
        if constraint.owner is not None and schema.has_class(constraint.owner):
            owner_extent = frozenset(builder.closure(constraint.owner))
        try:
            run = compiled(constraint.formula)
        except EvaluationError:
            run = None  # malformed formulas fail at check time, as before
        return IndexedConstraint(
            constraint=constraint,
            owner_extent=owner_extent,
            attrs=frozenset(builder.own | builder.foreign),
            extents=frozenset(builder.extents),
            own=frozenset(builder.own),
            foreign=frozenset(builder.foreign),
            universal=builder.universal,
            aggregate_specs=frozenset(builder.aggregates),
            key_specs=frozenset(builder.keys),
            reference_specs=frozenset(builder.references),
            run=run,
        )

    def entry(self, constraint: Constraint) -> IndexedConstraint | None:
        return self._by_constraint.get(constraint)

    def checks_for(
        self, class_name: str, changed: set[str] | None
    ) -> tuple[IndexedConstraint, ...] | None:
        """The object-constraint checks one touched object needs, from the
        update-pattern dispatch tables.

        ``changed`` follows the :class:`MutationDelta` convention: ``None``
        means "all attributes" (inserts).  Returns ``None`` when the class is
        unknown to the tables (the caller falls back to the generic walk).
        """
        if changed is None:
            return self.insert_checks.get(class_name)
        if len(changed) == 1:
            return self.update_checks.get((class_name, next(iter(changed))))
        effective = self.insert_checks.get(class_name)
        if effective is None:
            return None
        return tuple(
            e
            for e in effective
            if e.universal
            or any((class_name, attr) in e.attrs for attr in changed)
        )

    def pruned_constraints(self) -> frozenset[Constraint]:
        """The safely prunable object constraints (analysis pass 4), computed
        on first use and cached for the index lifetime.  Consumed only by
        stores opened with ``analyze=True``; audits never prune."""
        if self._pruned is None:
            schema = self._schema_ref()
            if schema is None:
                self._pruned = frozenset()
            else:
                from repro.constraints.analysis import prunable_constraints

                self._pruned = frozenset(prunable_constraints(schema))
        return self._pruned

    def aggregate_specs(self) -> frozenset[tuple[str, str, str | None]]:
        """Every ``(func, class, attribute)`` aggregate any constraint of the
        schema evaluates — the registration feed for maintained aggregates."""
        specs: set[tuple[str, str, str | None]] = set()
        for entry in self._by_constraint.values():
            specs |= entry.aggregate_specs
        return frozenset(specs)

    def key_specs(self) -> frozenset[tuple[str, tuple[str, ...]]]:
        """Every ``(class, attributes)`` uniqueness constraint — the
        registration feed for key hash indexes."""
        specs: set[tuple[str, tuple[str, ...]]] = set()
        for entry in self._by_constraint.values():
            specs |= entry.key_specs
        return frozenset(specs)

    def reference_specs(self) -> frozenset[tuple[str, str, str]]:
        """Every ``(referrer class, attribute, referenced class)`` referential
        quantifier read — the registration feed for reference-count
        indexes."""
        specs: set[tuple[str, str, str]] = set()
        for entry in self._by_constraint.values():
            specs |= entry.reference_specs
        return frozenset(specs)

    def is_stale(self) -> bool:
        schema = self._schema_ref()
        return schema is None or schema.fingerprint() != self.fingerprint

    @classmethod
    def for_schema(cls, schema: "DatabaseSchema") -> "ConstraintDependencyIndex":
        """The cached index for ``schema``, rebuilt when the schema changed."""
        index = _INDEX_CACHE.get(schema)
        if index is None or index.is_stale():
            index = cls(schema)
            _INDEX_CACHE[schema] = index
        return index


# ---------------------------------------------------------------------------
# delta-driven validation
# ---------------------------------------------------------------------------


def _affected_object_checks(
    store: "ObjectStore",
    delta: MutationDelta,
    index: ConstraintDependencyIndex,
    pruned: frozenset[Constraint] = frozenset(),
) -> Iterator[tuple[IndexedConstraint, "DBObject"]]:
    """(constraint, object) pairs that must be re-checked, deduplicated.

    Touched objects come first (in mutation order, each against its effective
    constraints in the same order single-operation enforcement uses, selected
    by the index's per-mutation-pattern dispatch tables); then full-extent
    re-checks for constraints that read *other* classes through references —
    a change to a referenced object can invalidate the constraint on any
    referrer.

    ``pruned`` (analysis pass 4, ``analyze=True`` stores only) names object
    constraints whose rejections are guaranteed to be duplicated by a keeper
    constraint in this same pass; they are skipped.
    """
    seen: set[tuple[int, str]] = set()
    schema = store.schema
    # A shard core enforces only the constraints its router scoped to it
    # (``None`` = everything, the plain-store default); cross-shard
    # constraints are the router's to check against the merged view.
    scope = getattr(store, "constraint_scope", None)
    for oid, changed in delta.objects.items():
        if oid not in store:
            continue  # deleted later in the same delta, or rolled back
        obj = store.get(oid)
        entries = index.checks_for(obj.class_name, changed)
        if entries is None:
            # The class is unknown to the dispatch tables (added behind the
            # index's back); fall back to the generic relevance walk.
            entries = tuple(
                entry
                for constraint in schema.effective_object_constraints(
                    obj.class_name
                )
                if (entry := index.entry(constraint)) is not None
                and (
                    entry.universal
                    or changed is None
                    or any(
                        (obj.class_name, attr) in entry.attrs
                        for attr in changed
                    )
                )
            )
        for entry in entries:
            if pruned and entry.constraint in pruned:
                continue
            if scope is not None and entry.constraint not in scope:
                continue
            key = (id(entry.constraint), oid)
            if key not in seen:
                seen.add(key)
                yield entry, obj
    for entry in index.object_constraints:
        if pruned and entry.constraint in pruned:
            continue
        if scope is not None and entry.constraint not in scope:
            continue
        # Full-extent re-check when the delta touched something the
        # constraint reads *outside* the constrained object itself: a
        # referenced object's attributes, or the membership of an extent the
        # formula quantifies/aggregates over.
        triggered = (
            entry.universal
            or bool(entry.foreign & delta.attrs)
            or bool(entry.extents & delta.extents)
        )
        if not triggered or not entry.owner_extent:
            continue
        owner = entry.constraint.owner
        if owner is None or not schema.has_class(owner):
            continue
        for obj in store.extent(owner):
            key = (id(entry.constraint), obj.oid)
            if key not in seen:
                seen.add(key)
                yield entry, obj


def check_delta(store: "ObjectStore", delta: MutationDelta) -> None:
    """Fail-fast validation of the constraints affected by ``delta``.

    Raises :class:`ConstraintViolation` for the first violated constraint,
    with the same message shapes as full enforcement
    (:mod:`repro.engine.enforcement`).  Check order matches the
    single-operation path: object constraints, then class constraints, then
    database constraints.
    """
    from repro.engine.explain import failure_trace

    index = store.dependency_index()
    pruned = (
        index.pruned_constraints()
        if getattr(store, "analyze", False)
        else frozenset()
    )
    scope = getattr(store, "constraint_scope", None)
    for entry, obj in _affected_object_checks(store, delta, index, pruned):
        constraint = entry.constraint
        ctx = store.eval_context(current=obj)
        try:
            satisfied = entry.evaluate_with(ctx)
        except (EvaluationError, EngineError) as exc:
            raise ConstraintViolation(
                constraint.qualified_name,
                f"cannot evaluate on {obj.oid}: {exc}",
                trace=failure_trace(store, constraint, current=obj),
            ) from exc
        if not satisfied:
            raise ConstraintViolation(
                constraint.qualified_name,
                f"object {obj.oid} with state {obj.state!r}",
                trace=failure_trace(store, constraint, current=obj),
            )
    for entry in index.class_constraints:
        if scope is not None and entry.constraint not in scope:
            continue
        if not entry.affected_by(delta):
            continue
        constraint = entry.constraint
        owner = constraint.owner
        ctx = store.eval_context(self_extent_class=owner)
        try:
            satisfied = entry.evaluate_with(ctx)
        except (EvaluationError, EngineError) as exc:
            raise ConstraintViolation(
                constraint.qualified_name,
                str(exc),
                trace=failure_trace(store, constraint, self_extent_class=owner),
            ) from exc
        if not satisfied:
            raise ConstraintViolation(
                constraint.qualified_name,
                f"extent of {owner} ({len(store.extent(owner))} objects)",
                trace=failure_trace(store, constraint, self_extent_class=owner),
            )
    for entry in index.database_constraints:
        if scope is not None and entry.constraint not in scope:
            continue
        if not entry.affected_by(delta):
            continue
        constraint = entry.constraint
        try:
            satisfied = entry.evaluate_with(store.eval_context())
        except (EvaluationError, EngineError) as exc:
            raise ConstraintViolation(
                constraint.qualified_name,
                str(exc),
                trace=failure_trace(store, constraint),
            ) from exc
        if not satisfied:
            raise ConstraintViolation(
                constraint.qualified_name,
                "database constraint violated",
                trace=failure_trace(store, constraint),
            )


def delta_violations(store: "ObjectStore", delta: MutationDelta) -> list:
    """Every violation among the constraints affected by ``delta``.

    The commit-time counterpart of
    :func:`repro.engine.enforcement.all_violations`: given a store that
    satisfied its constraints before the delta was applied, this finds a
    violation if and only if full revalidation would (it may report fewer
    violations overall — only the affected ones — but never zero when full
    validation reports some).
    """
    from repro.engine.enforcement import Violation
    from repro.engine.explain import failure_trace

    found: list[Violation] = []
    index = store.dependency_index()
    pruned = (
        index.pruned_constraints()
        if getattr(store, "analyze", False)
        else frozenset()
    )
    scope = getattr(store, "constraint_scope", None)
    for entry, obj in _affected_object_checks(store, delta, index, pruned):
        constraint = entry.constraint
        ctx = store.eval_context(current=obj)
        try:
            if not entry.evaluate_with(ctx):
                found.append(
                    Violation(
                        constraint.qualified_name,
                        f"object {obj.oid}",
                        constraint=constraint,
                        oid=obj.oid,
                        trace=failure_trace(store, constraint, current=obj),
                    )
                )
        except (EvaluationError, EngineError) as exc:
            found.append(
                Violation(
                    constraint.qualified_name,
                    str(exc),
                    constraint=constraint,
                    oid=obj.oid,
                    trace=failure_trace(store, constraint, current=obj),
                )
            )
    for entry in index.class_constraints:
        if scope is not None and entry.constraint not in scope:
            continue
        if not entry.affected_by(delta):
            continue
        constraint = entry.constraint
        ctx = store.eval_context(self_extent_class=constraint.owner)
        try:
            if not entry.evaluate_with(ctx):
                found.append(
                    Violation(
                        constraint.qualified_name,
                        f"extent of {constraint.owner}",
                        constraint=constraint,
                        trace=failure_trace(
                            store, constraint, self_extent_class=constraint.owner
                        ),
                    )
                )
        except (EvaluationError, EngineError) as exc:
            found.append(
                Violation(
                    constraint.qualified_name,
                    str(exc),
                    constraint=constraint,
                    trace=failure_trace(
                        store, constraint, self_extent_class=constraint.owner
                    ),
                )
            )
    for entry in index.database_constraints:
        if scope is not None and entry.constraint not in scope:
            continue
        if not entry.affected_by(delta):
            continue
        constraint = entry.constraint
        try:
            if not entry.evaluate_with(store.eval_context()):
                found.append(
                    Violation(
                        constraint.qualified_name,
                        "database constraint",
                        constraint=constraint,
                        trace=failure_trace(store, constraint),
                    )
                )
        except (EvaluationError, EngineError) as exc:
            found.append(
                Violation(
                    constraint.qualified_name,
                    str(exc),
                    constraint=constraint,
                    trace=failure_trace(store, constraint),
                )
            )
    return found


# ---------------------------------------------------------------------------
# shard classification
# ---------------------------------------------------------------------------


#: Enforcement tiers a constraint can land in under a sharded layout.
SHARD_LOCAL = "local"
SHARD_MERGEABLE = "mergeable"
SHARD_GLOBAL = "global"


@dataclass(frozen=True)
class ConstraintShardPlan:
    """Where one constraint is enforced under a given class→shard placement.

    ``tier`` is one of:

    :data:`SHARD_LOCAL`
        Every read lands inside one shard — the shard core enforces it with
        no coordination.  ``shard`` names the core; ``None`` means
        *anywhere-local*: the constraint reads only the constrained object
        itself, so whichever core holds the object enforces it (the form a
        spread class's object constraints take).
    :data:`SHARD_MERGEABLE`
        Reads span shards, but the formula's cross-shard reads are covered
        by maintained index summaries (aggregates, reference counts) that
        combine as mergeable partials — the router sums per-shard
        ``sum``/``count``/min-max candidates and live/dangling totals
        instead of scanning.
    :data:`SHARD_GLOBAL`
        Reads span shards with no covering summaries (or static analysis
        gave up: ``universal``); the router evaluates against the merged
        multi-shard view.
    """

    constraint: Constraint
    entry: IndexedConstraint
    tier: str
    #: Enforcing shard for pinned-local constraints; ``None`` for
    #: anywhere-local and for both cross-shard tiers.
    shard: int | None

    @property
    def local(self) -> bool:
        return self.tier == SHARD_LOCAL


def classify_constraints(
    index: ConstraintDependencyIndex,
    placement: "dict[str, int]",
    spread: "frozenset[str] | set[str]" = frozenset(),
) -> list[ConstraintShardPlan]:
    """Classify every constraint of ``index`` against a shard layout.

    ``placement`` maps each pinned class to its home shard; ``spread`` names
    classes whose *extents* are distributed across shards (their objects
    have no single home, so any read of their extent membership or of other
    objects' attributes is a cross-shard read).  The classification is the
    static half of the routing contract: a shard core's enforcement scope
    (:func:`shard_scopes`) is exactly the local tier, and the router owns
    the two cross-shard tiers.
    """
    spread = frozenset(spread)
    plans: list[ConstraintShardPlan] = []
    for entry in (
        *index.object_constraints,
        *index.class_constraints,
        *index.database_constraints,
    ):
        constraint = entry.constraint
        if entry.universal:
            # Static analysis could not bound the read set: only the
            # router's merged view is guaranteed to contain every read.
            plans.append(ConstraintShardPlan(constraint, entry, SHARD_GLOBAL, None))
            continue
        if (
            constraint.kind is ConstraintKind.OBJECT
            and not entry.foreign
            and not entry.extents
        ):
            # Reads nothing beyond the constrained object's own attributes:
            # checkable on whichever core holds the object, spread or not.
            plans.append(ConstraintShardPlan(constraint, entry, SHARD_LOCAL, None))
            continue
        read_classes = (
            {cls for cls, _attr in entry.attrs}
            | set(entry.extents)
            | set(entry.owner_extent)
        )
        shards = {placement[cls] for cls in read_classes if cls in placement}
        unplaced = any(cls not in placement for cls in read_classes)
        if read_classes & spread or unplaced or len(shards) > 1:
            tier = (
                SHARD_MERGEABLE
                if (entry.aggregate_specs or entry.reference_specs)
                else SHARD_GLOBAL
            )
            plans.append(ConstraintShardPlan(constraint, entry, tier, None))
        else:
            # Constant-only formulas read no class at all; any single core
            # can enforce them — shard 0 by convention.
            shard = shards.pop() if shards else 0
            plans.append(ConstraintShardPlan(constraint, entry, SHARD_LOCAL, shard))
    return plans


def shard_scopes(
    plans: "list[ConstraintShardPlan]", shard_count: int
) -> list[frozenset[Constraint]]:
    """Per-shard enforcement scopes: shard ``s`` enforces the local-tier
    constraints pinned to it plus every anywhere-local constraint.  The two
    cross-shard tiers appear in no scope — the router checks them."""
    scopes: list[frozenset[Constraint]] = []
    for shard in range(shard_count):
        scopes.append(
            frozenset(
                plan.constraint
                for plan in plans
                if plan.local and plan.shard in (None, shard)
            )
        )
    return scopes
