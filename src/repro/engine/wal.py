"""Durability: an append-only write-ahead log with snapshot checkpoints.

The paper's interoperation architecture assumes component databases that
survive their clients: a constraint the transaction manager accepted must
still hold after a process restart.  This module gives
:class:`~repro.engine.store.ObjectStore` that substrate — a durable store is
a directory holding two files:

* ``snapshot.json`` — a full image of the store at some checkpoint: the TM
  schema (as re-parseable surface syntax), the oid counter, every live
  object, and ``next_lsn``, the log sequence number the snapshot is current
  up to.  Written atomically (temp file + fsync + rename).

* ``wal.jsonl`` — the write-ahead log: one CRC-framed JSON record per line,
  appended by the store's mutation write-through.  Record kinds::

      {"n": lsn, "t": "insert", "oid": ..., "cls": ..., "state": {...}}
      {"n": lsn, "t": "update", "oid": ..., "state": {...}}
      {"n": lsn, "t": "delete", "oid": ...}
      {"n": lsn, "t": "begin",  "x": txid}
      {"n": lsn, "t": "commit", "x": txid}
      {"n": lsn, "t": "abort",  "x": txid}
      {"n": lsn, "t": "set_constant", "name": ..., "value": ...}
      {"n": lsn, "t": "schema", "source": ...}

Schema-change records
---------------------

A checkpoint snapshot captures the schema, but the schema can *move* after
the checkpoint — ``set_constant`` retunes a constant the constraints read,
and conformation-style surgery rebinds whole constraint sets.  Without log
records those mutations silently vanished on recovery.  The store now logs
them (:meth:`~repro.engine.store.ObjectStore.set_constant` writes a compact
``set_constant`` record; :meth:`~repro.engine.store.ObjectStore.log_schema_change`
re-prints the whole schema into a ``schema`` record), and recovery replays
them: a ``schema`` record swaps the schema source wholesale (and clears any
earlier constant records — the re-printed source already embeds them), a
``set_constant`` record is applied to whatever schema is current after the
replay.  Unlike data operations, schema records are applied *regardless of
transaction brackets*: an in-memory schema change survives a data rollback,
so replay mirrors that (the store refuses to log them inside a transaction
to keep the two sides trivially aligned).

The snapshot additionally stores a stable digest of its schema surface
(``schema_digest``).  When the replayed tail moves the schema past that
digest, recovery flags ``schema_drift`` — ``repro recover`` warns (and
exits non-zero under ``--strict``) that the snapshot no longer describes
the schema the store actually runs, until a fresh checkpoint folds the
change in.

Transactional exactness
-----------------------

Mutation records are written *eagerly* (inside a transaction they land in
the log before the commit decision), so commit/abort markers decide their
fate: recovery treats ``begin``/``commit``/``abort`` as nested brackets and
applies an operation only once every enclosing bracket has committed — an
inner commit merges its operations into the enclosing transaction's buffer,
exactly mirroring how the in-memory undo log merges outward.  Operations of
an aborted bracket, and of any bracket left open by a crash, are discarded.
Operations outside any bracket are the store's auto-committed single
mutations, logged only after enforcement accepted them.  Recovery therefore
reconstructs precisely a prefix of the *committed* history, whatever log
prefix survives.

Each line carries a CRC32 of its payload; a torn or corrupt line ends the
replay (everything before it is intact — the file is append-only), and
re-attaching the log truncates the tail so new records never follow garbage.

Checkpoints
-----------

A checkpoint snapshots the live store and then resets the log.  Records
carry explicit LSNs and the snapshot stores ``next_lsn``, so every crash
window is covered: a crash after the snapshot rename but before the log
reset just makes recovery skip the already-snapshotted records (their LSNs
lie below ``next_lsn``).  Checkpoints are only taken outside transactions,
so no committed transaction ever straddles a snapshot boundary.  The store
triggers one automatically every ``checkpoint_every`` log records (see
:meth:`WriteAheadLog.should_checkpoint`).

Group commit
------------

``sync=True`` makes every commit point durable against power loss with an
``fsync``.  Under concurrent committers that cost is amortized by **group
commit**: the commit point splits into :meth:`WriteAheadLog.commit_flush`
(buffer flush + durability ticket, called under the store's writer lock)
and :meth:`WriteAheadLog.wait_durable` (called *after* the writer lock is
released).  The first waiter becomes the fsync leader; committers arriving
while the leader syncs — or during the short batching window the leader
adds once it has seen concurrent committers — are covered by the same
fsync and return without issuing their own.  One fsync thus retires many
commits (the ``fsyncs``/``sync_commits`` counters expose the ratio), while
a lone committer keeps the exact pre-group-commit latency: no concurrent
ticket, no window, immediate fsync.

Single-writer: a durable directory must be attached to at most one live
store at a time (the owning store's writer lock serializes appends);
nothing locks the directory itself against other processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, TYPE_CHECKING

from repro.engine.indexes import oid_counter
from repro.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.objects import DBObject

SNAPSHOT_NAME = "snapshot.json"
LOG_NAME = "wal.jsonl"
SNAPSHOT_FORMAT = 1

_OPS = ("insert", "update", "delete")


def schema_digest(schema_source: str, constants: Iterable[tuple[str, Any]] = ()) -> str:
    """A stable (cross-process) digest of a schema surface.

    ``DatabaseSchema.fingerprint`` hashes Python objects and is salted per
    interpreter, so snapshots store this digest instead: the re-printed
    schema source, plus any constant rebinds replayed on top of it.
    """
    hasher = hashlib.sha256(schema_source.encode("utf-8"))
    for name, value in constants:
        hasher.update(f"\x00{name}={encode_value(value)!r}".encode("utf-8"))
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# value codec — states hold type-checked values only: str/int/float/bool and
# frozensets thereof (set-typed attributes), plus oid strings for references
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    if isinstance(value, (frozenset, set)):
        return {"$set": sorted((encode_value(member) for member in value), key=repr)}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise EngineError(
        f"cannot serialize {value!r} ({type(value).__name__}) into the "
        "write-ahead log"
    )


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$set"}:
            return frozenset(decode_value(member) for member in value["$set"])
        raise EngineError(f"unknown value encoding {value!r} in the write-ahead log")
    return value


def encode_state(state: Mapping[str, Any]) -> dict[str, Any]:
    return {name: encode_value(value) for name, value in state.items()}


def decode_state(state: Mapping[str, Any]) -> dict[str, Any]:
    return {name: decode_value(value) for name, value in state.items()}


# ---------------------------------------------------------------------------
# record framing
# ---------------------------------------------------------------------------


def _frame(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x}:{payload}\n".encode("utf-8")


def _parse_line(line: bytes) -> dict | None:
    """The record behind one complete log line, or ``None`` when torn/corrupt."""
    if len(line) < 10 or line[8:9] != b":":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    if not isinstance(record, dict) or "t" not in record or "n" not in record:
        return None
    return record


def scan_log(data: bytes) -> tuple[list[tuple[dict, int]], int, bool]:
    """Parse a log image into ``((record, start_offset) pairs, valid_bytes,
    torn)``.

    Replay stops at the first incomplete or corrupt line: the file is
    append-only, so everything before that point is intact and everything
    from it on is a crash artifact.  ``valid_bytes`` is where a re-attached
    writer must truncate before appending.
    """
    records: list[tuple[dict, int]] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            return records, offset, True  # torn tail: no terminator
        record = _parse_line(data[offset:newline])
        if record is None:
            return records, offset, True  # corrupt line
        records.append((record, offset))
        offset = newline + 1
    return records, offset, False


def _fsync_directory(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _write_json_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


@dataclass
class RecoveredImage:
    """What recovery reconstructed from a durable directory."""

    schema_source: str
    database: str
    #: ``(oid, class name, state)`` in insertion order.
    objects: list[tuple[str, str, dict]]
    #: Highest oid counter the history ever used (aborted inserts included,
    #: so a recovered store never re-issues an oid the log has seen).
    counter: int
    #: The LSN the re-attached writer continues from.
    next_lsn: int
    #: Byte length of the log's surviving prefix — the truncation point for
    #: re-attachment.  Cuts both the torn/corrupt tail *and* any trailing
    #: uncommitted transaction bracket a crash left open.
    log_valid_bytes: int
    #: Records in the surviving prefix that postdate the snapshot (the
    #: re-attached writer's pending backlog toward the next checkpoint).
    log_records: int
    #: Committed operations applied on top of the snapshot.
    replayed: int
    #: Operations discarded: aborted transactions plus any bracket a crash
    #: left open.
    discarded: int
    #: True when the log ended in a torn or corrupt line.
    torn: bool
    #: Constant rebinds replayed from post-snapshot ``set_constant``
    #: records, in log order, to apply after parsing ``schema_source``.
    constants: list[tuple[str, Any]] = field(default_factory=list)
    #: Schema-affecting records replayed from the log tail.
    schema_changes: int = 0
    #: True when the replayed tail moved the schema past the snapshot's
    #: recorded digest — the snapshot no longer describes the running
    #: schema until the next checkpoint.
    schema_drift: bool = False


def load_image(path: str | Path) -> RecoveredImage | None:
    """Recover the durable image under ``path``; ``None`` when nothing exists.

    Replays the snapshot, then every *committed* log record with
    ``lsn >= snapshot.next_lsn`` (see the module docstring for the bracket
    semantics).  Raises :class:`EngineError` on a malformed snapshot or a
    log with no snapshot (the snapshot holds the schema, so a bare log is
    unrecoverable).
    """
    base = Path(path)
    snapshot_path = base / SNAPSHOT_NAME
    log_path = base / LOG_NAME
    if not snapshot_path.exists():
        if log_path.exists():
            raise EngineError(
                f"write-ahead log without a snapshot at {str(base)!r}: the "
                "snapshot holds the schema, so the log alone cannot be recovered"
            )
        return None
    try:
        snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise EngineError(f"corrupt snapshot at {str(snapshot_path)!r}: {exc}") from exc
    if not isinstance(snapshot, dict) or snapshot.get("format") != SNAPSHOT_FORMAT:
        raise EngineError(
            f"unsupported snapshot format at {str(snapshot_path)!r}: "
            f"{snapshot.get('format') if isinstance(snapshot, dict) else snapshot!r}"
        )

    objects: dict[str, tuple[str, dict]] = {}
    counter = int(snapshot.get("counter", 0))
    for oid, class_name, state in snapshot.get("objects", []):
        objects[oid] = (class_name, decode_state(state))
        counter = max(counter, oid_counter(oid, 0))
    start_lsn = int(snapshot.get("next_lsn", 0))
    schema_source = snapshot.get("schema", "")
    baseline_digest = snapshot.get("schema_digest") or schema_digest(schema_source)
    constants: list[tuple[str, Any]] = []
    schema_changes = 0

    records: list[dict] = []
    valid_bytes = 0
    torn = False
    if log_path.exists():
        records, valid_bytes, torn = scan_log(log_path.read_bytes())

    def apply(op: dict) -> None:
        kind = op["t"]
        if kind == "insert":
            objects[op["oid"]] = (op["cls"], decode_state(op["state"]))
        elif kind == "update":
            current = objects.get(op["oid"])
            if current is not None:
                objects[op["oid"]] = (current[0], decode_state(op["state"]))
        elif kind == "delete":
            objects.pop(op["oid"], None)

    #: Stack of op buffers, one per open transaction bracket.
    open_brackets: list[list[dict]] = []
    replayed = 0
    discarded = 0
    #: Post-snapshot records that survive in the log after recovery.
    kept = 0
    #: Byte offset / kept-count where the currently open outermost bracket
    #: began.  If the log ends with the bracket chain still open, everything
    #: from here on is an uncommitted tail: it must be *truncated* on
    #: resume, or its stale ``begin`` would swallow the next session's
    #: committed records at the following recovery (brackets are matched
    #: positionally, not by txid).
    tail_offset: int | None = None
    tail_kept = 0
    max_lsn = start_lsn - 1
    for record, offset in records:
        lsn = int(record["n"])
        kind = record["t"]
        if kind == "insert":
            # Track the counter over *every* insert, committed or not: an
            # aborted insert still burned its oid.
            counter = max(counter, oid_counter(record["oid"], 0))
        if lsn < start_lsn:
            continue  # already folded into the snapshot
        max_lsn = max(max_lsn, lsn)
        if kind == "begin":
            if not open_brackets:
                tail_offset, tail_kept = offset, kept
            open_brackets.append([])
        elif kind == "commit":
            if open_brackets:
                ops = open_brackets.pop()
                if open_brackets:
                    open_brackets[-1].extend(ops)
                else:
                    for op in ops:
                        apply(op)
                    replayed += len(ops)
                    tail_offset = None
        elif kind == "abort":
            if open_brackets:
                discarded += len(open_brackets.pop())
                if not open_brackets:
                    tail_offset = None
        elif kind in _OPS:
            if open_brackets:
                open_brackets[-1].append(record)
            else:
                apply(record)
                replayed += 1
        elif kind == "set_constant":
            # Schema records are non-transactional: an in-memory schema
            # change survives a data rollback, so replay applies them
            # outside the bracket machinery.
            constants.append((record["name"], decode_value(record["value"])))
            schema_changes += 1
        elif kind == "schema":
            # A full re-print supersedes the source *and* any earlier
            # constant records — the printed source embeds the constants.
            schema_source = record["source"]
            constants = []
            schema_changes += 1
        # unknown record kinds are skipped: forward compatibility
        kept += 1
    if open_brackets:
        discarded += sum(len(ops) for ops in open_brackets)
        if tail_offset is not None:
            valid_bytes = tail_offset
            kept = tail_kept

    final_digest = schema_digest(schema_source, constants)
    return RecoveredImage(
        schema_source=schema_source,
        database=snapshot.get("database", ""),
        objects=[(oid, cls, state) for oid, (cls, state) in objects.items()],
        counter=counter,
        next_lsn=max_lsn + 1,
        log_valid_bytes=valid_bytes,
        log_records=kept,
        replayed=replayed,
        discarded=discarded,
        torn=torn,
        constants=constants,
        schema_changes=schema_changes,
        schema_drift=schema_changes > 0 and final_digest != baseline_digest,
    )


# ---------------------------------------------------------------------------
# the writer
# ---------------------------------------------------------------------------


class WriteAheadLog:
    """The append side of one durable directory.

    Owned by an :class:`~repro.engine.store.ObjectStore`; the store calls
    :meth:`log_insert`/:meth:`log_update`/:meth:`log_delete` after each
    applied mutation, and the transaction layer brackets them with
    :meth:`begin`/:meth:`commit_transaction`/:meth:`abort_transaction`.
    ``begin`` markers are lazy — written only once the transaction logs its
    first operation — so empty transactions never reach the disk.

    ``sync=True`` fsyncs at every commit point (durable against power loss);
    the default flushes Python's buffer at commit points, which survives a
    process crash but not a kernel one.  ``checkpoint_every`` is the
    auto-checkpoint threshold in log records (0 disables).

    Under concurrent committers, ``sync=True`` commits coalesce through
    group commit (see the module docstring): ``group_window`` is the short
    wait the fsync leader adds while the system is under concurrent commit
    load, letting more committers flush before the single fsync that
    covers them all.  It never delays a lone committer.
    """

    def __init__(
        self,
        path: str | Path,
        sync: bool = False,
        checkpoint_every: int = 10_000,
        group_window: float = 0.001,
    ):
        self.path = Path(path)
        self.sync = sync
        self.checkpoint_every = checkpoint_every
        self.group_window = group_window
        self._handle = None
        self._next_lsn = 0
        #: Open transaction brackets: ``{"id": txid, "written": bool}``.
        self._transactions: list[dict] = []
        self._txid = 0
        self._records_since_snapshot = 0
        # -- group commit state (guarded by ``_sync_cond``'s lock) ---------
        self._sync_cond = threading.Condition()
        #: Highest LSN known flushed to the OS (updated at commit_flush,
        #: i.e. under the store's writer lock; read by the fsync leader).
        self._flushed_lsn = 0
        #: Highest LSN covered by an fsync.
        self._synced_lsn = 0
        #: True while a leader is inside os.fsync.
        self._syncing = False
        #: Committers between ticket issue and durability.
        self._pending_syncs = 0
        #: Monotonic deadline: while now < deadline the system counts as
        #: under concurrent commit load and leaders apply the window.
        self._group_load_until = 0.0
        #: Telemetry: fsyncs issued by the group path / sync commit points.
        self.fsyncs = 0
        self.sync_commits = 0

    @property
    def snapshot_path(self) -> Path:
        return self.path / SNAPSHOT_NAME

    @property
    def log_path(self) -> Path:
        return self.path / LOG_NAME

    def has_data(self) -> bool:
        return self.snapshot_path.exists() or self.log_path.exists()

    @property
    def pending_records(self) -> int:
        """Log records not yet folded into a snapshot."""
        return self._records_since_snapshot

    # -- lifecycle ---------------------------------------------------------------

    def initialize(
        self,
        schema_source: str,
        database: str,
        objects: Iterable[tuple[str, str, Mapping[str, Any]]],
        counter: int,
    ) -> None:
        """Create a fresh durable directory (initial snapshot + empty log)."""
        self.path.mkdir(parents=True, exist_ok=True)
        self._write_snapshot_file(schema_source, database, objects, counter)
        self._reset_log()

    def resume(self, image: RecoveredImage) -> None:
        """Attach to a recovered directory: truncate everything recovery
        discarded — the torn tail *and* any trailing uncommitted transaction
        bracket (a stale open ``begin`` left in the log would swallow this
        session's committed records at the next recovery) — and continue
        the LSN sequence."""
        self.path.mkdir(parents=True, exist_ok=True)
        if self.log_path.exists():
            if self.log_path.stat().st_size > image.log_valid_bytes:
                with open(self.log_path, "r+b") as handle:
                    handle.truncate(image.log_valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
        else:  # snapshot-only directory (e.g. crash between snapshot and log reset)
            self.log_path.touch()
        self._next_lsn = image.next_lsn
        self._records_since_snapshot = image.log_records

    def flush(self) -> None:
        self._commit_point()

    def close(self) -> None:
        # Drain in-flight group commits first: a leader mid-fsync (or a
        # ticket holder about to become one) must not race the handle
        # teardown.  New tickets cannot be issued meanwhile — the owning
        # store calls close() under its writer lock, which commit_flush
        # also requires.
        with self._sync_cond:
            while self._syncing or self._pending_syncs > 0:
                self._sync_cond.wait()
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    # -- appending ---------------------------------------------------------------

    def _open_handle(self):
        if self._handle is None:
            self._handle = open(self.log_path, "ab")
        return self._handle

    def _append(self, record: dict) -> None:
        record["n"] = self._next_lsn
        self._next_lsn += 1
        self._open_handle().write(_frame(record))
        self._records_since_snapshot += 1

    def _commit_point(self) -> None:
        ticket = self.commit_flush()
        if ticket is not None:
            self.wait_durable(ticket)

    # -- group commit ------------------------------------------------------------

    def commit_flush(self) -> int | None:
        """First half of a commit point: flush the buffer to the OS and,
        in ``sync`` mode, issue a durability ticket.

        Must run under the store's writer lock (it touches the buffered
        handle).  The returned ticket is redeemed with :meth:`wait_durable`
        *after* the lock is released, so other committers can append while
        this one waits — that overlap is what group commit batches.
        Returns ``None`` when no fsync is owed (non-sync mode, or nothing
        written yet).
        """
        if self._handle is None:
            return None
        self._handle.flush()
        if not self.sync:
            return None
        ticket = self._next_lsn
        with self._sync_cond:
            self._flushed_lsn = max(self._flushed_lsn, ticket)
            self.sync_commits += 1
            # The ticket is outstanding from *issue*, not from the wait:
            # close()'s drain must cover a committer preempted between
            # releasing the writer lock and redeeming its ticket.
            self._pending_syncs += 1
            if self._pending_syncs > 1:
                # Two committers in flight at once: flag concurrent load
                # for a while, so leaders batch even when the committers
                # alternate rather than overlap exactly.
                self._group_load_until = time.monotonic() + 0.05
        return ticket

    def abandon_ticket(self, ticket: "int | None") -> None:
        """Release an issued ticket without waiting for durability (the
        commit path failed after the flush).  Keeps the outstanding count
        balanced so :meth:`close` cannot wait forever."""
        if ticket is None:
            return
        with self._sync_cond:
            self._pending_syncs -= 1
            if self._pending_syncs == 0:
                self._sync_cond.notify_all()

    def wait_durable(self, ticket: int) -> None:
        """Block until every record with ``lsn < ticket`` is fsynced.

        The first waiter becomes the leader: it (optionally) waits out the
        batching window, issues one fsync, and wakes everyone it covered.
        Later waiters piggyback.  Callers must not hold locks an fsync
        leader could need — the store releases its writer lock first.

        A failed fsync raises for the leader and leaves ``_synced_lsn``
        untouched, so piggybacking waiters do not report durability the
        disk never provided: each retries as leader and surfaces the error
        itself.
        """
        try:
            while True:
                with self._sync_cond:
                    if self._synced_lsn >= ticket:
                        return
                    if self._syncing:
                        self._sync_cond.wait()
                        continue
                    self._syncing = True
                    under_load = time.monotonic() < self._group_load_until
                # -- leader, outside the condition lock --------------------
                synced = False
                try:
                    if under_load and self.group_window > 0:
                        # Let concurrently running committers reach their
                        # commit_flush; one fsync will cover them all.
                        time.sleep(self.group_window)
                    with self._sync_cond:
                        cover = self._flushed_lsn
                    handle = self._handle
                    if handle is None:
                        # Only possible when the log was torn down under
                        # an unredeemed ticket; never claim durability the
                        # disk cannot provide any more.
                        raise EngineError(
                            "write-ahead log closed while a durable commit "
                            "was waiting for its fsync"
                        )
                    os.fsync(handle.fileno())
                    self.fsyncs += 1
                    synced = True
                finally:
                    with self._sync_cond:
                        self._syncing = False
                        if synced:
                            # Only a completed fsync advances durability;
                            # a failure wakes the waiters to retry (and
                            # surface the error) as leaders themselves.
                            self._synced_lsn = max(self._synced_lsn, cover)
                        self._sync_cond.notify_all()
        finally:
            with self._sync_cond:
                self._pending_syncs -= 1
                if self._pending_syncs == 0:
                    self._sync_cond.notify_all()

    def log_insert(self, obj: "DBObject") -> None:
        self._log_operation(
            {
                "t": "insert",
                "oid": obj.oid,
                "cls": obj.class_name,
                "state": encode_state(obj.state),
            }
        )

    def log_update(self, obj: "DBObject") -> None:
        """Log the full post-image — replay then needs no pre-state."""
        self._log_operation(
            {"t": "update", "oid": obj.oid, "state": encode_state(obj.state)}
        )

    def log_delete(self, oid: str) -> None:
        self._log_operation({"t": "delete", "oid": oid})

    def log_set_constant(self, name: str, value: Any) -> None:
        """Schema-change record: a constant rebind.  Non-transactional —
        refuse inside an open bracket (a data rollback would not undo the
        in-memory schema change, so the log must not bracket it either)."""
        self._log_schema_record(
            {"t": "set_constant", "name": name, "value": encode_value(value)}
        )

    def log_schema(self, schema_source: str) -> None:
        """Schema-change record: a full schema re-print, superseding the
        snapshot's source (and any earlier constant records) on replay."""
        self._log_schema_record({"t": "schema", "source": schema_source})

    def _log_schema_record(self, record: dict) -> None:
        if self._transactions:
            raise EngineError(
                "schema changes cannot be logged inside a transaction: "
                "rollback does not undo them, so the log must not bracket "
                "them (commit or abort first)"
            )
        self._append(record)

    def _log_operation(self, record: dict) -> None:
        self._materialize_begins()
        self._append(record)

    # -- transaction brackets ----------------------------------------------------

    def begin(self) -> int:
        self._txid += 1
        self._transactions.append({"id": self._txid, "written": False})
        return self._txid

    def _materialize_begins(self) -> None:
        for transaction in self._transactions:
            if not transaction["written"]:
                self._append({"t": "begin", "x": transaction["id"]})
                transaction["written"] = True

    def commit_transaction(self) -> "int | None":
        """Close the current bracket; for an outermost commit, flush and
        return the group-commit durability ticket (redeem with
        :meth:`wait_durable` once locks are released)."""
        if not self._transactions:
            return None
        transaction = self._transactions.pop()
        if transaction["written"]:
            self._append({"t": "commit", "x": transaction["id"]})
            if not self._transactions:
                return self.commit_flush()
        return None

    def abort_transaction(self) -> "int | None":
        if not self._transactions:
            return None
        transaction = self._transactions.pop()
        if transaction["written"]:
            self._append({"t": "abort", "x": transaction["id"]})
            if not self._transactions:
                # Flush aborts too: recovery must not mistake the rolled-back
                # tail for a crash-opened bracket of a *later* session.
                return self.commit_flush()
        return None

    @property
    def in_transaction(self) -> bool:
        return bool(self._transactions)

    # -- checkpoints -------------------------------------------------------------

    def should_checkpoint(self) -> bool:
        return (
            self.checkpoint_every > 0
            and not self._transactions
            and self._records_since_snapshot >= self.checkpoint_every
        )

    def write_snapshot(
        self,
        schema_source: str,
        database: str,
        objects: Iterable[tuple[str, str, Mapping[str, Any]]],
        counter: int,
    ) -> None:
        """Checkpoint: snapshot the given image, then reset the log.

        The snapshot claims currency up to ``next_lsn``; a crash between the
        two steps leaves stale records in the log, which recovery skips by
        their LSNs.
        """
        if self._transactions:
            raise EngineError("cannot checkpoint inside a transaction")
        self._commit_point()
        self._write_snapshot_file(schema_source, database, objects, counter)
        self._reset_log()

    def _write_snapshot_file(
        self,
        schema_source: str,
        database: str,
        objects: Iterable[tuple[str, str, Mapping[str, Any]]],
        counter: int,
    ) -> None:
        payload = {
            "format": SNAPSHOT_FORMAT,
            "database": database,
            "schema": schema_source,
            "schema_digest": schema_digest(schema_source),
            "counter": counter,
            "next_lsn": self._next_lsn,
            "objects": [
                [oid, class_name, encode_state(state)]
                for oid, class_name, state in objects
            ],
        }
        _write_json_atomic(self.snapshot_path, payload)
        self._records_since_snapshot = 0

    def _reset_log(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        tmp = self.log_path.with_name(self.log_path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.log_path)
        _fsync_directory(self.path)
        self._handle = open(self.log_path, "ab")
