"""Durability: an append-only write-ahead log with snapshot checkpoints.

The paper's interoperation architecture assumes component databases that
survive their clients: a constraint the transaction manager accepted must
still hold after a process restart.  This module gives
:class:`~repro.engine.store.ObjectStore` that substrate — a durable store is
a directory holding two files:

* ``snapshot.json`` — a full image of the store at some checkpoint: the TM
  schema (as re-parseable surface syntax), the oid counter, every live
  object, and ``next_lsn``, the log sequence number the snapshot is current
  up to.  Written atomically (temp file + fsync + rename).

* ``wal.jsonl`` — the write-ahead log: one CRC-framed JSON record per line,
  appended by the store's mutation write-through.  Record kinds::

      {"n": lsn, "t": "insert", "oid": ..., "cls": ..., "state": {...}}
      {"n": lsn, "t": "update", "oid": ..., "state": {...}}
      {"n": lsn, "t": "delete", "oid": ...}
      {"n": lsn, "t": "begin",  "x": txid}
      {"n": lsn, "t": "commit", "x": txid}
      {"n": lsn, "t": "abort",  "x": txid}
      {"n": lsn, "t": "set_constant", "name": ..., "value": ...}
      {"n": lsn, "t": "schema", "source": ...}
      {"n": lsn, "t": "prepare", "g": gid}
      {"n": lsn, "t": "decide",  "g": gid, "ok": true|false}
      {"n": lsn, "t": "resolve", "g": gid, "ok": true|false}

Two-phase commit brackets
-------------------------

A transaction spanning several shard stores (:mod:`repro.engine.sharding`)
cannot close each shard's bracket with an independent ``commit`` — a crash
between two commits would persist half the transaction.  The commit router
instead closes each participant's outermost bracket with ``prepare`` (the
bracket's operations become *in-doubt*: durably logged, neither applied
nor discarded by replay), appends one ``decide`` record to the coordinator
shard's log (the lowest participating shard id) once every participant
prepared, and then marks each participant with ``resolve`` carrying the
outcome.  Replay applies a prepared bracket when its ``resolve`` says so,
discards it when ``resolve`` says abort, and otherwise leaves it in-doubt
on the :class:`RecoveredImage` (``prepared``/``decisions``) — presumed
abort, except that only the router, having read *every* shard's log, may
decide: the coordinator's ``decide`` is the transaction's durable fate.
Flush ordering carries atomicity: every ``prepare`` is flushed before the
``decide`` is written, and the ``decide`` is flushed before any
``resolve`` — so a surviving ``decide`` implies every participant's
prepare survived, and a surviving ``resolve`` implies the decision did.

Schema-change records
---------------------

A checkpoint snapshot captures the schema, but the schema can *move* after
the checkpoint — ``set_constant`` retunes a constant the constraints read,
and conformation-style surgery rebinds whole constraint sets.  Without log
records those mutations silently vanished on recovery.  The store now logs
them (:meth:`~repro.engine.store.ObjectStore.set_constant` writes a compact
``set_constant`` record; :meth:`~repro.engine.store.ObjectStore.log_schema_change`
re-prints the whole schema into a ``schema`` record), and recovery replays
them: a ``schema`` record swaps the schema source wholesale (and clears any
earlier constant records — the re-printed source already embeds them), a
``set_constant`` record is applied to whatever schema is current after the
replay.  Unlike data operations, schema records are applied *regardless of
transaction brackets*: an in-memory schema change survives a data rollback,
so replay mirrors that (the store refuses to log them inside a transaction
to keep the two sides trivially aligned).

The snapshot additionally stores a stable digest of its schema surface
(``schema_digest``).  When the replayed tail moves the schema past that
digest, recovery flags ``schema_drift`` — ``repro recover`` warns (and
exits non-zero under ``--strict``) that the snapshot no longer describes
the schema the store actually runs, until a fresh checkpoint folds the
change in.

Transactional exactness
-----------------------

Mutation records are written *eagerly* (inside a transaction they land in
the log before the commit decision), so commit/abort markers decide their
fate: recovery treats ``begin``/``commit``/``abort`` as nested brackets and
applies an operation only once every enclosing bracket has committed — an
inner commit merges its operations into the enclosing transaction's buffer,
exactly mirroring how the in-memory undo log merges outward.  Operations of
an aborted bracket, and of any bracket left open by a crash, are discarded.
Operations outside any bracket are the store's auto-committed single
mutations, logged only after enforcement accepted them.  Recovery therefore
reconstructs precisely a prefix of the *committed* history, whatever log
prefix survives.

Each line carries a CRC32 of its payload; a torn or corrupt line ends the
replay (everything before it is intact — the file is append-only), and
re-attaching the log truncates the tail so new records never follow garbage.

Checkpoints
-----------

A checkpoint snapshots the live store and then resets the log.  Records
carry explicit LSNs and the snapshot stores ``next_lsn``, so every crash
window is covered: a crash after the snapshot rename but before the log
reset just makes recovery skip the already-snapshotted records (their LSNs
lie below ``next_lsn``).  Checkpoints are only taken outside transactions,
so no committed transaction ever straddles a snapshot boundary.  The store
triggers one automatically every ``checkpoint_every`` log records (see
:meth:`WriteAheadLog.should_checkpoint`).

Group commit
------------

``sync=True`` makes every commit point durable against power loss with an
``fsync``.  Under concurrent committers that cost is amortized by **group
commit**: the commit point splits into :meth:`WriteAheadLog.commit_flush`
(buffer flush + durability ticket, called under the store's writer lock)
and :meth:`WriteAheadLog.wait_durable` (called *after* the writer lock is
released).  The first waiter becomes the fsync leader; committers arriving
while the leader syncs — or during the short batching window the leader
adds once it has seen concurrent committers — are covered by the same
fsync and return without issuing their own.  One fsync thus retires many
commits (the ``fsyncs``/``sync_commits`` counters expose the ratio), while
a lone committer keeps the exact pre-group-commit latency: no concurrent
ticket, no window, immediate fsync.

Failure model
-------------

Every file operation is routed through an optional
:class:`~repro.engine.faults.FaultInjector` (a no-op by default), and the
log is **fail-stop**: an IO failure at a commit point — the append whose
bytes may now sit partially in a userspace buffer, the flush whose state
is unknown, or the fsync that must never be retried (fsyncgate: the kernel
may have dropped the dirty pages while marking them clean) — **poisons**
the log.  A poisoned log refuses every further append and flush with
:class:`~repro.errors.StorePoisonedError`; the owning store degrades to
read-only (snapshots still served) until the directory is reopened, which
recovers exactly the durable committed prefix.  Retry-with-backoff is
applied only where it is sound: directory fsyncs and renames, on the
transient errno classes (``EINTR``/``EAGAIN``), with unsupported-class
errors (directory fsync on filesystems where it is advisory) counted in
``telemetry`` instead of silently swallowed.

On the read side every snapshot payload carries a whole-file digest that
:func:`load_image` verifies, the previous checkpoint snapshot is retained
as ``snapshot.prev.json`` with automatic fallback when the newest is
damaged (an LSN-contiguity check then truncates any log tail the older
base cannot replay onto, so fallback recovery still yields exactly a
committed prefix — the previous checkpoint's), and :func:`fsck` scrubs a
directory offline: CRC frames, snapshot digests, replay certification,
with ``clean``/``truncatable``/``fatal`` verdicts mapped to exit codes
0/1/2 by the ``repro fsck`` CLI.

Single-writer: a durable directory must be attached to at most one live
store at a time (the owning store's writer lock serializes appends);
nothing locks the directory itself against other processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Mapping
from typing import Any, TYPE_CHECKING

from repro.engine.faults import (
    UNSUPPORTED_DIR_FSYNC_ERRNOS,
    FaultInjector,
    classify_os_error,
)
from repro.engine.indexes import oid_counter
from repro.errors import EngineError, StorePoisonedError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.objects import DBObject

SNAPSHOT_NAME = "snapshot.json"
SNAPSHOT_PREV_NAME = "snapshot.prev.json"
LOG_NAME = "wal.jsonl"
SNAPSHOT_FORMAT = 1

#: Bounded-retry policy for the call sites where retry is *sound*
#: (directory fsync, rename): attempts and the base backoff that doubles
#: between them.  Commit-point fsyncs are never retried — see
#: :meth:`WriteAheadLog.poison`.
_RETRY_ATTEMPTS = 3
_RETRY_BACKOFF = 0.001

_OPS = ("insert", "update", "delete")


def schema_digest(schema_source: str, constants: Iterable[tuple[str, Any]] = ()) -> str:
    """A stable (cross-process) digest of a schema surface.

    ``DatabaseSchema.fingerprint`` hashes Python objects and is salted per
    interpreter, so snapshots store this digest instead: the re-printed
    schema source, plus any constant rebinds replayed on top of it.
    """
    hasher = hashlib.sha256(schema_source.encode("utf-8"))
    for name, value in constants:
        hasher.update(f"\x00{name}={encode_value(value)!r}".encode("utf-8"))
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# value codec — states hold type-checked values only: str/int/float/bool and
# frozensets thereof (set-typed attributes), plus oid strings for references
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    if isinstance(value, (frozenset, set)):
        return {"$set": sorted((encode_value(member) for member in value), key=repr)}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise EngineError(
        f"cannot serialize {value!r} ({type(value).__name__}) into the "
        "write-ahead log"
    )


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$set"}:
            return frozenset(decode_value(member) for member in value["$set"])
        raise EngineError(f"unknown value encoding {value!r} in the write-ahead log")
    return value


def encode_state(state: Mapping[str, Any]) -> dict[str, Any]:
    return {name: encode_value(value) for name, value in state.items()}


def decode_state(state: Mapping[str, Any]) -> dict[str, Any]:
    return {name: decode_value(value) for name, value in state.items()}


# ---------------------------------------------------------------------------
# record framing
# ---------------------------------------------------------------------------


def _frame(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x}:{payload}\n".encode("utf-8")


def _parse_line(line: bytes) -> dict | None:
    """The record behind one complete log line, or ``None`` when torn/corrupt."""
    if len(line) < 10 or line[8:9] != b":":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    if not isinstance(record, dict) or "t" not in record or "n" not in record:
        return None
    return record


def scan_log(data: bytes) -> tuple[list[tuple[dict, int]], int, bool]:
    """Parse a log image into ``((record, start_offset) pairs, valid_bytes,
    torn)``.

    Replay stops at the first incomplete or corrupt line: the file is
    append-only, so everything before that point is intact and everything
    from it on is a crash artifact.  ``valid_bytes`` is where a re-attached
    writer must truncate before appending.
    """
    records: list[tuple[dict, int]] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            return records, offset, True  # torn tail: no terminator
        record = _parse_line(data[offset:newline])
        if record is None:
            return records, offset, True  # corrupt line
        records.append((record, offset))
        offset = newline + 1
    return records, offset, False


def _count(telemetry: "dict | None", key: str) -> None:
    if telemetry is not None:
        telemetry[key] = telemetry.get(key, 0) + 1


def _fsync_directory(
    path: Path,
    faults: "FaultInjector | None" = None,
    telemetry: "dict | None" = None,
) -> None:
    """Fsync a directory entry, with errors classified instead of swallowed.

    Directory fsync is the one fsync where retry *is* sound (nothing was
    handed to the kernel that a failure could have silently dropped — the
    rename itself already happened), and where some filesystems legitimately
    refuse the operation.  Policy per :func:`~repro.engine.faults.classify_os_error`:
    ``unsupported`` errno classes are counted in ``telemetry`` and skipped,
    ``transient`` ones get a bounded retry with doubling backoff, anything
    else (EIO, ENOSPC, the unknown) raises — a durability guarantee the
    disk refused must not be reported as kept.
    """
    for attempt in range(_RETRY_ATTEMPTS):
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError as exc:
            kind = classify_os_error(exc, UNSUPPORTED_DIR_FSYNC_ERRNOS)
            if kind == "unsupported":
                _count(telemetry, "dir_fsync_unsupported")
                return
            if kind == "transient" and attempt + 1 < _RETRY_ATTEMPTS:
                _count(telemetry, "dir_fsync_retries")
                time.sleep(_RETRY_BACKOFF * (2**attempt))
                continue
            raise
        try:
            if faults is not None:
                faults.fsync(fd, "dir.fsync")
            else:
                os.fsync(fd)
            return
        except OSError as exc:
            kind = classify_os_error(exc, UNSUPPORTED_DIR_FSYNC_ERRNOS)
            if kind == "unsupported":
                _count(telemetry, "dir_fsync_unsupported")
                return
            if kind == "transient" and attempt + 1 < _RETRY_ATTEMPTS:
                _count(telemetry, "dir_fsync_retries")
                time.sleep(_RETRY_BACKOFF * (2**attempt))
                continue
            raise
        finally:
            os.close(fd)


def _replace_with_retry(
    src: Path,
    dst: Path,
    point: str,
    faults: "FaultInjector | None" = None,
    telemetry: "dict | None" = None,
) -> None:
    """``os.replace`` with a bounded retry on the transient errno classes
    (the other rename-shaped call site where retry is sound: an EINTR'd
    rename either happened or did not — re-issuing it is idempotent)."""
    for attempt in range(_RETRY_ATTEMPTS):
        try:
            if faults is not None:
                faults.replace(src, dst, point)
            else:
                os.replace(src, dst)
            return
        except OSError as exc:
            if (
                classify_os_error(exc) == "transient"
                and attempt + 1 < _RETRY_ATTEMPTS
            ):
                _count(telemetry, "replace_retries")
                time.sleep(_RETRY_BACKOFF * (2**attempt))
                continue
            raise


def snapshot_payload_digest(payload: Mapping[str, Any]) -> str:
    """The whole-file integrity digest of a snapshot payload: SHA-256 over
    the canonical JSON rendering of everything except the ``digest`` key
    itself.  Catches silent corruption (bit rot, partial overwrites) that
    still parses as JSON — which the format check alone would accept."""
    body = {key: value for key, value in payload.items() if key != "digest"}
    canonical = json.dumps(body, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _write_json_atomic(
    path: Path,
    payload: dict,
    faults: "FaultInjector | None" = None,
    telemetry: "dict | None" = None,
    retain: "Path | None" = None,
) -> None:
    """Atomically publish ``payload`` at ``path`` (tmp + fsync + rename +
    directory fsync).  With ``retain``, the previous file at ``path`` is
    rotated there first — the rotation order (tmp written and fsynced →
    current→retain rename → tmp→current rename → directory fsync) leaves
    every crash window recoverable: at any instant at least one of
    ``path``/``retain`` holds a complete, verifiable payload."""
    tmp = path.with_name(path.name + ".tmp")
    data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    with open(tmp, "wb") as handle:
        if faults is not None:
            faults.write(handle, data, "snapshot.write")
        else:
            handle.write(data)
        handle.flush()
        if faults is not None:
            faults.fsync(handle.fileno(), "snapshot.fsync")
        else:
            os.fsync(handle.fileno())
    if retain is not None and path.exists():
        _replace_with_retry(path, retain, "snapshot.retain", faults, telemetry)
    _replace_with_retry(tmp, path, "snapshot.replace", faults, telemetry)
    _fsync_directory(path.parent, faults, telemetry)


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


@dataclass
class RecoveredImage:
    """What recovery reconstructed from a durable directory."""

    schema_source: str
    database: str
    #: ``(oid, class name, state)`` in insertion order.
    objects: list[tuple[str, str, dict]]
    #: Highest oid counter the history ever used (aborted inserts included,
    #: so a recovered store never re-issues an oid the log has seen).
    counter: int
    #: The LSN the re-attached writer continues from.
    next_lsn: int
    #: Byte length of the log's surviving prefix — the truncation point for
    #: re-attachment.  Cuts both the torn/corrupt tail *and* any trailing
    #: uncommitted transaction bracket a crash left open.
    log_valid_bytes: int
    #: Records in the surviving prefix that postdate the snapshot (the
    #: re-attached writer's pending backlog toward the next checkpoint).
    log_records: int
    #: Committed operations applied on top of the snapshot.
    replayed: int
    #: Operations discarded: aborted transactions plus any bracket a crash
    #: left open.
    discarded: int
    #: True when the log ended in a torn or corrupt line.
    torn: bool
    #: Constant rebinds replayed from post-snapshot ``set_constant``
    #: records, in log order, to apply after parsing ``schema_source``.
    constants: list[tuple[str, Any]] = field(default_factory=list)
    #: Schema-affecting records replayed from the log tail.
    schema_changes: int = 0
    #: True when the replayed tail moved the schema past the snapshot's
    #: recorded digest — the snapshot no longer describes the running
    #: schema until the next checkpoint.
    schema_drift: bool = False
    #: True when ``snapshot.json`` was missing or damaged and recovery fell
    #: back to the retained ``snapshot.prev.json``.
    used_fallback_snapshot: bool = False
    #: What was wrong with the newest snapshot when the fallback was taken.
    snapshot_error: "str | None" = None
    #: True when the log's LSN sequence had a hole relative to the recovered
    #: snapshot base (only possible after a fallback: the log was reset for
    #: a newer checkpoint the fallback predates).  Replay truncates at the
    #: gap, so the recovered state is exactly the fallback checkpoint's.
    lsn_gap: bool = False
    #: In-doubt two-phase-commit brackets: gid -> the bracket's operation
    #: records, durably prepared but with no ``resolve`` in this log.
    #: Neither applied nor discarded — the commit router resolves them from
    #: the coordinator shard's ``decide`` (see :func:`apply_resolutions`).
    prepared: dict[str, list[dict]] = field(default_factory=dict)
    #: Coordinator decisions replayed from this log: gid -> outcome.  On a
    #: sharded root the union over all shards resolves every in-doubt gid;
    #: a gid absent everywhere is presumed aborted.
    decisions: dict[str, bool] = field(default_factory=dict)


def _read_snapshot(snapshot_path: Path) -> dict:
    """Parse and integrity-check one snapshot file.

    Raises :class:`EngineError` on unreadable bytes, non-JSON content, an
    unknown format, or a digest mismatch (payloads written since digests
    were introduced embed one; older snapshots without it are accepted on
    parse alone)."""
    try:
        raw = snapshot_path.read_bytes()
    except OSError as exc:
        raise EngineError(
            f"unreadable snapshot at {str(snapshot_path)!r}: {exc}"
        ) from exc
    try:
        # json.loads decodes the bytes itself; a bit flip landing inside a
        # UTF-8 sequence raises UnicodeDecodeError, a ValueError subclass.
        snapshot = json.loads(raw)
    except ValueError as exc:
        raise EngineError(f"corrupt snapshot at {str(snapshot_path)!r}: {exc}") from exc
    if not isinstance(snapshot, dict) or snapshot.get("format") != SNAPSHOT_FORMAT:
        raise EngineError(
            f"unsupported snapshot format at {str(snapshot_path)!r}: "
            f"{snapshot.get('format') if isinstance(snapshot, dict) else snapshot!r}"
        )
    digest = snapshot.get("digest")
    if digest is not None and digest != snapshot_payload_digest(snapshot):
        raise EngineError(
            f"snapshot digest mismatch at {str(snapshot_path)!r}: the file "
            "was altered after it was written"
        )
    return snapshot


def load_image(path: str | Path) -> RecoveredImage | None:
    """Recover the durable image under ``path``; ``None`` when nothing exists.

    Replays the snapshot, then every *committed* log record with
    ``lsn >= snapshot.next_lsn`` (see the module docstring for the bracket
    semantics).  A damaged or missing ``snapshot.json`` falls back to the
    retained ``snapshot.prev.json`` when one exists (``used_fallback_snapshot``
    flags it); a hole in the log's LSN sequence relative to the recovered
    base truncates replay at the hole, so the result is always exactly a
    committed prefix.  Raises :class:`EngineError` when no intact snapshot
    survives, or on a log with no snapshot at all (the snapshot holds the
    schema, so a bare log is unrecoverable).
    """
    base = Path(path)
    snapshot_path = base / SNAPSHOT_NAME
    prev_path = base / SNAPSHOT_PREV_NAME
    log_path = base / LOG_NAME
    used_fallback = False
    snapshot_error: str | None = None
    if snapshot_path.exists():
        try:
            snapshot = _read_snapshot(snapshot_path)
        except EngineError as exc:
            if not prev_path.exists():
                raise
            # Newest snapshot damaged but the previous checkpoint was
            # retained: fall back.  If the fallback is damaged too, its
            # (chained) error propagates — nothing recoverable remains.
            try:
                snapshot = _read_snapshot(prev_path)
            except EngineError as prev_exc:
                raise EngineError(
                    f"{prev_exc} (after falling back from the newest "
                    f"snapshot, itself unusable: {exc})"
                ) from exc
            used_fallback = True
            snapshot_error = str(exc)
    elif prev_path.exists():
        # Crash window inside the snapshot rotation: the old current was
        # renamed to .prev but the new file never made it into place.
        snapshot = _read_snapshot(prev_path)
        used_fallback = True
        snapshot_error = (
            f"missing {SNAPSHOT_NAME} (crash during snapshot rotation)"
        )
    elif log_path.exists():
        raise EngineError(
            f"write-ahead log without a snapshot at {str(base)!r}: the "
            "snapshot holds the schema, so the log alone cannot be recovered"
        )
    else:
        return None

    objects: dict[str, tuple[str, dict]] = {}
    counter = int(snapshot.get("counter", 0))
    for oid, class_name, state in snapshot.get("objects", []):
        objects[oid] = (class_name, decode_state(state))
        counter = max(counter, oid_counter(oid, 0))
    start_lsn = int(snapshot.get("next_lsn", 0))
    schema_source = snapshot.get("schema", "")
    baseline_digest = snapshot.get("schema_digest") or schema_digest(schema_source)
    constants: list[tuple[str, Any]] = []
    schema_changes = 0

    records: list[dict] = []
    valid_bytes = 0
    torn = False
    if log_path.exists():
        records, valid_bytes, torn = scan_log(log_path.read_bytes())

    def apply(op: dict) -> None:
        kind = op["t"]
        if kind == "insert":
            objects[op["oid"]] = (op["cls"], decode_state(op["state"]))
        elif kind == "update":
            current = objects.get(op["oid"])
            if current is not None:
                objects[op["oid"]] = (current[0], decode_state(op["state"]))
        elif kind == "delete":
            objects.pop(op["oid"], None)

    #: Stack of op buffers, one per open transaction bracket.
    open_brackets: list[list[dict]] = []
    prepared: dict[str, list[dict]] = {}
    decisions: dict[str, bool] = {}
    replayed = 0
    discarded = 0
    #: Post-snapshot records that survive in the log after recovery.
    kept = 0
    #: Byte offset / kept-count where the currently open outermost bracket
    #: began.  If the log ends with the bracket chain still open, everything
    #: from here on is an uncommitted tail: it must be *truncated* on
    #: resume, or its stale ``begin`` would swallow the next session's
    #: committed records at the following recovery (brackets are matched
    #: positionally, not by txid).
    tail_offset: int | None = None
    tail_kept = 0
    max_lsn = start_lsn - 1
    lsn_gap = False
    if used_fallback and records and int(records[0][0]["n"]) > start_lsn:
        # The log starts *above* the fallback base's LSN horizon: it was
        # reset for a checkpoint the fallback predates, so the records
        # between ``start_lsn`` and the log's first record are folded into
        # the damaged newer snapshot only.  Replaying the survivors onto
        # the older base would fabricate a state no commit ever produced —
        # drop the whole log instead; recovery then yields exactly the
        # fallback checkpoint's committed state (still a committed prefix).
        # Note an LSN jump *within* a log is benign and replayed normally:
        # resume-time tail truncation discards records without reusing
        # their LSNs, so healthy logs contain such jumps by design.
        lsn_gap = True
        records = []
        valid_bytes = 0
        torn = False
    for record, offset in records:
        lsn = int(record["n"])
        kind = record["t"]
        if kind == "insert":
            # Track the counter over *every* insert, committed or not: an
            # aborted insert still burned its oid.
            counter = max(counter, oid_counter(record["oid"], 0))
        if lsn < start_lsn:
            continue  # already folded into the snapshot
        max_lsn = max(max_lsn, lsn)
        if kind == "begin":
            if not open_brackets:
                tail_offset, tail_kept = offset, kept
            open_brackets.append([])
        elif kind == "commit":
            if open_brackets:
                ops = open_brackets.pop()
                if open_brackets:
                    open_brackets[-1].extend(ops)
                else:
                    for op in ops:
                        apply(op)
                    replayed += len(ops)
                    tail_offset = None
        elif kind == "abort":
            if open_brackets:
                discarded += len(open_brackets.pop())
                if not open_brackets:
                    tail_offset = None
        elif kind == "prepare":
            if open_brackets:
                ops = open_brackets.pop()
                if open_brackets:
                    # A nested prepare is a protocol violation (the router
                    # only prepares outermost brackets); fold it into the
                    # parent like a commit so no logged work is lost.
                    open_brackets[-1].extend(ops)
                else:
                    # The bracket is durably in-doubt, not uncommitted: it
                    # must survive resume truncation, so the tail marker is
                    # cleared just as for a commit.
                    prepared[str(record["g"])] = ops
                    tail_offset = None
        elif kind == "decide":
            decisions[str(record["g"])] = bool(record["ok"])
        elif kind == "resolve":
            ops = prepared.pop(str(record["g"]), None)
            if ops is not None:
                if record["ok"]:
                    for op in ops:
                        apply(op)
                    replayed += len(ops)
                else:
                    discarded += len(ops)
        elif kind in _OPS:
            if open_brackets:
                open_brackets[-1].append(record)
            else:
                apply(record)
                replayed += 1
        elif kind == "set_constant":
            # Schema records are non-transactional: an in-memory schema
            # change survives a data rollback, so replay applies them
            # outside the bracket machinery.
            constants.append((record["name"], decode_value(record["value"])))
            schema_changes += 1
        elif kind == "schema":
            # A full re-print supersedes the source *and* any earlier
            # constant records — the printed source embeds the constants.
            schema_source = record["source"]
            constants = []
            schema_changes += 1
        # unknown record kinds are skipped: forward compatibility
        kept += 1
    if open_brackets:
        discarded += sum(len(ops) for ops in open_brackets)
        if tail_offset is not None:
            valid_bytes = tail_offset
            kept = tail_kept

    final_digest = schema_digest(schema_source, constants)
    return RecoveredImage(
        schema_source=schema_source,
        database=snapshot.get("database", ""),
        objects=[(oid, cls, state) for oid, (cls, state) in objects.items()],
        counter=counter,
        next_lsn=max_lsn + 1,
        log_valid_bytes=valid_bytes,
        log_records=kept,
        replayed=replayed,
        discarded=discarded,
        torn=torn,
        constants=constants,
        schema_changes=schema_changes,
        schema_drift=schema_changes > 0 and final_digest != baseline_digest,
        used_fallback_snapshot=used_fallback,
        snapshot_error=snapshot_error,
        lsn_gap=lsn_gap,
        prepared=prepared,
        decisions=decisions,
    )


def apply_resolutions(
    image: RecoveredImage, outcomes: "Mapping[str, bool]"
) -> list[tuple[str, bool]]:
    """Resolve an image's in-doubt prepared brackets against ``outcomes``.

    The commit router calls this after gathering every shard's replayed
    ``decide`` records: each prepared gid found in ``outcomes`` with a
    ``True`` verdict is applied onto ``image.objects`` (in log order);
    everything else — explicit ``False`` or absent entirely — is presumed
    aborted and discarded.  Returns the ``(gid, outcome)`` pairs in
    resolution order so the caller can append matching ``resolve`` records
    to the re-attached log, making the next recovery self-contained.
    """
    if not image.prepared:
        return []
    objects: dict[str, tuple[str, dict]] = {
        oid: (cls, state) for oid, cls, state in image.objects
    }
    resolved: list[tuple[str, bool]] = []
    for gid, ops in image.prepared.items():
        ok = bool(outcomes.get(gid, False))
        if ok:
            for op in ops:
                kind = op["t"]
                if kind == "insert":
                    objects[op["oid"]] = (op["cls"], decode_state(op["state"]))
                elif kind == "update":
                    current = objects.get(op["oid"])
                    if current is not None:
                        objects[op["oid"]] = (current[0], decode_state(op["state"]))
                elif kind == "delete":
                    objects.pop(op["oid"], None)
            image.replayed += len(ops)
        else:
            image.discarded += len(ops)
        resolved.append((gid, ok))
    image.objects = [(oid, cls, state) for oid, (cls, state) in objects.items()]
    image.prepared = {}
    return resolved


# ---------------------------------------------------------------------------
# the writer
# ---------------------------------------------------------------------------


class WriteAheadLog:
    """The append side of one durable directory.

    Owned by an :class:`~repro.engine.store.ObjectStore`; the store calls
    :meth:`log_insert`/:meth:`log_update`/:meth:`log_delete` after each
    applied mutation, and the transaction layer brackets them with
    :meth:`begin`/:meth:`commit_transaction`/:meth:`abort_transaction`.
    ``begin`` markers are lazy — written only once the transaction logs its
    first operation — so empty transactions never reach the disk.

    ``sync=True`` fsyncs at every commit point (durable against power loss);
    the default flushes Python's buffer at commit points, which survives a
    process crash but not a kernel one.  ``checkpoint_every`` is the
    auto-checkpoint threshold in log records (0 disables).

    Under concurrent committers, ``sync=True`` commits coalesce through
    group commit (see the module docstring): ``group_window`` is the short
    wait the fsync leader adds while the system is under concurrent commit
    load, letting more committers flush before the single fsync that
    covers them all.  It never delays a lone committer.
    """

    def __init__(
        self,
        path: str | Path,
        sync: bool = False,
        checkpoint_every: int = 10_000,
        group_window: float = 0.001,
        faults: "FaultInjector | None" = None,
    ):
        self.path = Path(path)
        self.sync = sync
        self.checkpoint_every = checkpoint_every
        self.group_window = group_window
        #: Optional fault-injection shim every file operation routes
        #: through (:mod:`repro.engine.faults`); ``None`` costs nothing.
        self.faults = faults
        #: Why this log fail-stopped, or ``None`` while healthy.  Set once
        #: (first failure wins) by :meth:`poison`; never cleared — recovery
        #: means reopening the directory, not resuscitating this object.
        self._poisoned: "str | None" = None
        #: Classified-error and degraded-path counters: keys like
        #: ``dir_fsync_unsupported``, ``dir_fsync_retries``,
        #: ``replace_retries``, ``abort_markers_skipped``.
        self.telemetry: dict[str, int] = {}
        self._handle = None
        self._next_lsn = 0
        #: Open transaction brackets: ``{"id": txid, "written": bool}``.
        self._transactions: list[dict] = []
        self._txid = 0
        self._records_since_snapshot = 0
        # -- group commit state (guarded by ``_sync_cond``'s lock) ---------
        self._sync_cond = threading.Condition()
        #: Highest LSN known flushed to the OS (updated at commit_flush,
        #: i.e. under the store's writer lock; read by the fsync leader).
        self._flushed_lsn = 0
        #: Highest LSN covered by an fsync.
        self._synced_lsn = 0
        #: True while a leader is inside os.fsync.
        self._syncing = False
        #: Committers between ticket issue and durability.
        self._pending_syncs = 0
        #: Monotonic deadline: while now < deadline the system counts as
        #: under concurrent commit load and leaders apply the window.
        self._group_load_until = 0.0
        #: Telemetry: fsyncs issued by the group path / sync commit points.
        self.fsyncs = 0
        self.sync_commits = 0

    @property
    def snapshot_path(self) -> Path:
        return self.path / SNAPSHOT_NAME

    @property
    def prev_snapshot_path(self) -> Path:
        return self.path / SNAPSHOT_PREV_NAME

    @property
    def log_path(self) -> Path:
        return self.path / LOG_NAME

    def has_data(self) -> bool:
        # The retained previous snapshot counts: a directory that crashed
        # mid-rotation holds only snapshot.prev.json, and initializing a
        # fresh store over it would clobber the recoverable state.
        return (
            self.snapshot_path.exists()
            or self.prev_snapshot_path.exists()
            or self.log_path.exists()
        )

    # -- fail-stop ---------------------------------------------------------------

    @property
    def poisoned(self) -> "str | None":
        """Why this log fail-stopped, or ``None`` while healthy."""
        return self._poisoned

    def poison(self, reason: str) -> None:
        """Fail-stop the log: every further append, flush, and durability
        wait raises :class:`StorePoisonedError`.

        Called on any commit-point IO failure.  The fsync case is the
        load-bearing one (fsyncgate): after a failed fsync the kernel may
        have dropped the dirty pages *and marked them clean*, so a retry
        that returns success proves nothing about the lost writes — the
        only honest outcome is to stop accepting commits and let a reopen
        recover the prefix the disk actually holds.  Append/flush failures
        poison for a different reason: part of a record may sit in the
        userspace buffer, and if it ever flushed it would be mid-log
        garbage that truncates *later* committed records at recovery.

        First reason wins; waiters blocked in :meth:`wait_durable` are
        woken so they can fail instead of hanging.
        """
        with self._sync_cond:
            if self._poisoned is None:
                self._poisoned = reason
            self._sync_cond.notify_all()

    def check_poisoned(self) -> None:
        """Raise :class:`StorePoisonedError` if the log has fail-stopped."""
        if self._poisoned is not None:
            raise StorePoisonedError(
                f"write-ahead log at {str(self.path)!r} is poisoned: "
                f"{self._poisoned}; the store is read-only (reopen the "
                "directory to recover the durable prefix)"
            )

    @property
    def pending_records(self) -> int:
        """Log records not yet folded into a snapshot."""
        return self._records_since_snapshot

    # -- lifecycle ---------------------------------------------------------------

    def initialize(
        self,
        schema_source: str,
        database: str,
        objects: Iterable[tuple[str, str, Mapping[str, Any]]],
        counter: int,
    ) -> None:
        """Create a fresh durable directory (initial snapshot + empty log)."""
        self.path.mkdir(parents=True, exist_ok=True)
        self._write_snapshot_file(schema_source, database, objects, counter)
        self._reset_log()

    def resume(self, image: RecoveredImage) -> None:
        """Attach to a recovered directory: truncate everything recovery
        discarded — the torn tail, any trailing uncommitted transaction
        bracket (a stale open ``begin`` left in the log would swallow this
        session's committed records at the next recovery), and anything past
        an LSN gap — and continue the LSN sequence.

        Crash windows here are benign by construction and pinned by
        regression tests: a crash *before* the truncate changes nothing
        (the next recovery discards the same tail again), and a crash
        *between truncate and fsync* can at worst resurrect part of the
        discarded tail, which the next recovery re-discards — truncation
        never touches the committed prefix, so no window loses it.

        When recovery fell back to the retained previous snapshot, the
        damaged ``snapshot.json`` is repaired first (atomically overwritten
        with the fallback's content): the next checkpoint's rotation would
        otherwise rotate the *damaged* file over the good fallback.
        """
        self.path.mkdir(parents=True, exist_ok=True)
        if image.used_fallback_snapshot and self.prev_snapshot_path.exists():
            self._repair_snapshot_rotation()
        if self.log_path.exists():
            if self.log_path.stat().st_size > image.log_valid_bytes:
                with open(self.log_path, "r+b") as handle:
                    if self.faults is not None:
                        self.faults.truncate(
                            handle, image.log_valid_bytes, "wal.resume_truncate"
                        )
                    else:
                        handle.truncate(image.log_valid_bytes)
                    handle.flush()
                    if self.faults is not None:
                        self.faults.fsync(handle.fileno(), "wal.resume_fsync")
                    else:
                        os.fsync(handle.fileno())
        else:  # snapshot-only directory (e.g. crash between snapshot and log reset)
            self.log_path.touch()
        self._next_lsn = image.next_lsn
        self._records_since_snapshot = image.log_records

    def _repair_snapshot_rotation(self) -> None:
        """Atomically overwrite a damaged/missing ``snapshot.json`` with the
        retained previous snapshot's bytes.  Afterwards both files hold the
        same verified payload, so every later rotation window stays
        recoverable; a crash inside the repair itself just re-runs it on
        the next open (the fallback is read-only here)."""
        data = self.prev_snapshot_path.read_bytes()
        tmp = self.snapshot_path.with_name(self.snapshot_path.name + ".tmp")
        with open(tmp, "wb") as handle:
            if self.faults is not None:
                self.faults.write(handle, data, "snapshot.write")
            else:
                handle.write(data)
            handle.flush()
            if self.faults is not None:
                self.faults.fsync(handle.fileno(), "snapshot.fsync")
            else:
                os.fsync(handle.fileno())
        _replace_with_retry(
            tmp, self.snapshot_path, "snapshot.replace", self.faults, self.telemetry
        )
        _fsync_directory(self.path, self.faults, self.telemetry)

    def flush(self) -> None:
        self._commit_point()

    def close(self) -> None:
        # Drain in-flight group commits first: a leader mid-fsync (or a
        # ticket holder about to become one) must not race the handle
        # teardown.  New tickets cannot be issued meanwhile — the owning
        # store calls close() under its writer lock, which commit_flush
        # also requires.
        with self._sync_cond:
            while self._syncing or self._pending_syncs > 0:
                self._sync_cond.wait()
        if self._handle is not None:
            try:
                if self._poisoned is None:
                    self._handle.flush()
            finally:
                # On a poisoned log the explicit flush is skipped and the
                # close is best-effort: whatever close()'s own flush still
                # writes is either an already-acked record or tail bytes
                # recovery truncates (the log is append-only and a failed
                # append never entered the buffer), and a handle that
                # cannot even close must still be released — the data
                # loss is already declared.
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    # -- appending ---------------------------------------------------------------

    def _open_handle(self):
        if self._handle is None:
            self._handle = open(self.log_path, "ab")
        return self._handle

    def _append(self, record: dict) -> None:
        self.check_poisoned()
        record["n"] = self._next_lsn
        data = _frame(record)
        handle = self._open_handle()
        try:
            if self.faults is not None:
                self.faults.write(handle, data, "wal.append")
            else:
                handle.write(data)
        except BaseException:
            # The record's durable fate is unknown (none, some, or all of
            # its bytes may reach the log).  Fail stop: the caller rolls
            # the in-memory mutation back, and recovery truncates whatever
            # tail actually landed.
            self.poison("write-ahead log append failed")
            raise
        self._next_lsn += 1
        self._records_since_snapshot += 1

    def _commit_point(self) -> None:
        ticket = self.commit_flush()
        if ticket is not None:
            self.wait_durable(ticket)

    # -- group commit ------------------------------------------------------------

    def commit_flush(self) -> int | None:
        """First half of a commit point: flush the buffer to the OS and,
        in ``sync`` mode, issue a durability ticket.

        Must run under the store's writer lock (it touches the buffered
        handle).  The returned ticket is redeemed with :meth:`wait_durable`
        *after* the lock is released, so other committers can append while
        this one waits — that overlap is what group commit batches.
        Returns ``None`` when no fsync is owed (non-sync mode, or nothing
        written yet).
        """
        if self._handle is None:
            return None
        self.check_poisoned()
        try:
            if self.faults is not None:
                self.faults.flush(self._handle, "wal.flush")
            else:
                self._handle.flush()
        except BaseException:
            # How much of the buffer reached the OS is unknown; nothing
            # sound can be appended behind it.  Fail stop.
            self.poison("write-ahead log flush failed at a commit point")
            raise
        if not self.sync:
            return None
        ticket = self._next_lsn
        with self._sync_cond:
            self._flushed_lsn = max(self._flushed_lsn, ticket)
            self.sync_commits += 1
            # The ticket is outstanding from *issue*, not from the wait:
            # close()'s drain must cover a committer preempted between
            # releasing the writer lock and redeeming its ticket.
            self._pending_syncs += 1
            if self._pending_syncs > 1:
                # Two committers in flight at once: flag concurrent load
                # for a while, so leaders batch even when the committers
                # alternate rather than overlap exactly.
                self._group_load_until = time.monotonic() + 0.05
        return ticket

    def abandon_ticket(self, ticket: "int | None") -> None:
        """Release an issued ticket without waiting for durability (the
        commit path failed after the flush).  Keeps the outstanding count
        balanced so :meth:`close` cannot wait forever."""
        if ticket is None:
            return
        with self._sync_cond:
            self._pending_syncs -= 1
            if self._pending_syncs == 0:
                self._sync_cond.notify_all()

    def wait_durable(self, ticket: int) -> None:
        """Block until every record with ``lsn < ticket`` is fsynced.

        The first waiter becomes the leader: it (optionally) waits out the
        batching window, issues one fsync, and wakes everyone it covered.
        Later waiters piggyback.  Callers must not hold locks an fsync
        leader could need — the store releases its writer lock first.

        A failed fsync is **never retried** (fsyncgate: the kernel may
        have dropped the dirty pages while marking them clean, so a retry
        that succeeds proves nothing about the lost writes).  The leader
        :meth:`poison`\\ s the log and raises
        :class:`~repro.errors.StorePoisonedError`; every follower waiting
        on the same batch — and every committer arriving later — fails the
        same way instead of hanging or falsely reporting durability.
        Followers whose ticket was already covered by an earlier completed
        fsync still succeed: their durability was provided before the
        failure.
        """
        try:
            while True:
                with self._sync_cond:
                    # Order matters: a ticket the disk already covered is
                    # durable regardless of any later poisoning.
                    if self._synced_lsn >= ticket:
                        return
                    if self._poisoned is not None:
                        raise StorePoisonedError(
                            "durable commit failed: write-ahead log at "
                            f"{str(self.path)!r} is poisoned "
                            f"({self._poisoned}); the commit's durability "
                            "cannot be established"
                        )
                    if self._syncing:
                        self._sync_cond.wait()
                        continue
                    self._syncing = True
                    under_load = time.monotonic() < self._group_load_until
                # -- leader, outside the condition lock --------------------
                synced = False
                try:
                    if under_load and self.group_window > 0:
                        # Let concurrently running committers reach their
                        # commit_flush; one fsync will cover them all.
                        time.sleep(self.group_window)
                    with self._sync_cond:
                        cover = self._flushed_lsn
                    handle = self._handle
                    if handle is None:
                        # Only possible when the log was torn down under
                        # an unredeemed ticket; never claim durability the
                        # disk cannot provide any more.
                        raise EngineError(
                            "write-ahead log closed while a durable commit "
                            "was waiting for its fsync"
                        )
                    try:
                        if self.faults is not None:
                            self.faults.fsync(handle.fileno(), "wal.fsync")
                        else:
                            os.fsync(handle.fileno())
                    except OSError as exc:
                        self.poison(f"commit-point fsync failed: {exc}")
                        raise StorePoisonedError(
                            "durable commit failed: commit-point fsync "
                            f"raised {exc!r}; the write-ahead log is "
                            "poisoned (fsync is never retried after a "
                            "failure) and the store is read-only"
                        ) from exc
                    except BaseException:
                        # A simulated crash (or interpreter teardown) at
                        # the fsync point: still fail stop, then let the
                        # crash propagate untouched.
                        self.poison("crash at a commit-point fsync")
                        raise
                    self.fsyncs += 1
                    synced = True
                finally:
                    with self._sync_cond:
                        self._syncing = False
                        if synced:
                            # Only a completed fsync advances durability.
                            self._synced_lsn = max(self._synced_lsn, cover)
                        # Wakes followers either way: on failure they see
                        # the poisoned flag and fail instead of re-leading.
                        self._sync_cond.notify_all()
        finally:
            with self._sync_cond:
                self._pending_syncs -= 1
                if self._pending_syncs == 0:
                    self._sync_cond.notify_all()

    def log_insert(self, obj: "DBObject") -> None:
        self._log_operation(
            {
                "t": "insert",
                "oid": obj.oid,
                "cls": obj.class_name,
                "state": encode_state(obj.state),
            }
        )

    def log_update(self, obj: "DBObject") -> None:
        """Log the full post-image — replay then needs no pre-state."""
        self._log_operation(
            {"t": "update", "oid": obj.oid, "state": encode_state(obj.state)}
        )

    def log_delete(self, oid: str) -> None:
        self._log_operation({"t": "delete", "oid": oid})

    def log_set_constant(self, name: str, value: Any) -> None:
        """Schema-change record: a constant rebind.  Non-transactional —
        refuse inside an open bracket (a data rollback would not undo the
        in-memory schema change, so the log must not bracket it either)."""
        self._log_schema_record(
            {"t": "set_constant", "name": name, "value": encode_value(value)}
        )

    def log_schema(self, schema_source: str) -> None:
        """Schema-change record: a full schema re-print, superseding the
        snapshot's source (and any earlier constant records) on replay."""
        self._log_schema_record({"t": "schema", "source": schema_source})

    def _log_schema_record(self, record: dict) -> None:
        if self._transactions:
            raise EngineError(
                "schema changes cannot be logged inside a transaction: "
                "rollback does not undo them, so the log must not bracket "
                "them (commit or abort first)"
            )
        self._append(record)

    def _log_operation(self, record: dict) -> None:
        self._materialize_begins()
        self._append(record)

    # -- transaction brackets ----------------------------------------------------

    def begin(self) -> int:
        # Refuse the bracket up front: a poisoned log could not write the
        # commit marker anyway, so the transaction must not start.
        self.check_poisoned()
        self._txid += 1
        self._transactions.append({"id": self._txid, "written": False})
        return self._txid

    def _materialize_begins(self) -> None:
        for transaction in self._transactions:
            if not transaction["written"]:
                self._append({"t": "begin", "x": transaction["id"]})
                transaction["written"] = True

    def commit_transaction(self) -> "int | None":
        """Close the current bracket; for an outermost commit, flush and
        return the group-commit durability ticket (redeem with
        :meth:`wait_durable` once locks are released)."""
        if not self._transactions:
            return None
        transaction = self._transactions.pop()
        if transaction["written"]:
            self._append({"t": "commit", "x": transaction["id"]})
            if not self._transactions:
                return self.commit_flush()
        return None

    def abort_transaction(self) -> "int | None":
        """Close the current bracket with an abort marker.

        Best-effort on a failing log: abort runs on paths that are already
        raising (rollback, commit-time violation), and a failure here must
        not mask the propagating cause.  Skipping the marker is safe — an
        open bracket is discarded by recovery exactly like an aborted one,
        and a poisoned log admits no later appends the stale ``begin``
        could swallow.  Skips are counted in ``telemetry``."""
        if not self._transactions:
            return None
        transaction = self._transactions.pop()
        if transaction["written"]:
            try:
                self._append({"t": "abort", "x": transaction["id"]})
                if not self._transactions:
                    # Flush aborts too: recovery must not mistake the
                    # rolled-back tail for a crash-opened bracket of a
                    # *later* session.
                    return self.commit_flush()
            except BaseException:
                _count(self.telemetry, "abort_markers_skipped")
                return None
        return None

    # -- two-phase commit --------------------------------------------------------

    def prepare_transaction(self, gid: str) -> "int | None":
        """2PC phase 1: close the current bracket with a ``prepare`` marker.

        The bracket's operations become durably in-doubt — recovery neither
        applies nor discards them until a ``resolve`` (or, via the router,
        the coordinator's ``decide``) settles the outcome.  Like
        :meth:`commit_transaction`, an outermost prepare flushes and returns
        the group-commit durability ticket; the router must redeem every
        participant's ticket (or flush) before writing the ``decide`` —
        that ordering is what makes the decision imply all prepares
        survived.  Only outermost brackets are prepared; nested calls are a
        caller bug and fold into the parent on replay."""
        if not self._transactions:
            return None
        transaction = self._transactions.pop()
        if transaction["written"]:
            self._append({"t": "prepare", "g": str(gid)})
            if not self._transactions:
                return self.commit_flush()
        return None

    def log_decide(self, gid: str, ok: bool) -> None:
        """2PC phase 2: the coordinator's durable verdict for ``gid``.

        Non-transactional — refused inside an open bracket, like schema
        records.  The caller must flush (:meth:`commit_flush`) before any
        participant's ``resolve`` is written: the decision is the
        transaction's fate, so it must not be reorderable behind its own
        consequences."""
        if self._transactions:
            raise EngineError(
                "2PC decide records cannot be logged inside a transaction "
                "bracket (prepare or close the bracket first)"
            )
        self._append({"t": "decide", "g": str(gid), "ok": bool(ok)})

    def log_resolve(self, gid: str, ok: bool) -> None:
        """2PC phase 3: settle this participant's in-doubt ``prepare``.

        Replay applies the prepared bracket when ``ok`` and discards it
        otherwise.  Durability is optional: if a crash loses the resolve,
        the bracket is in-doubt again and the coordinator's durable
        ``decide`` re-settles it at the next sharded recovery."""
        if self._transactions:
            raise EngineError(
                "2PC resolve records cannot be logged inside a transaction "
                "bracket (prepare or close the bracket first)"
            )
        self._append({"t": "resolve", "g": str(gid), "ok": bool(ok)})

    @property
    def in_transaction(self) -> bool:
        return bool(self._transactions)

    # -- checkpoints -------------------------------------------------------------

    def should_checkpoint(self) -> bool:
        return (
            self.checkpoint_every > 0
            and not self._transactions
            and self._records_since_snapshot >= self.checkpoint_every
        )

    def write_snapshot(
        self,
        schema_source: str,
        database: str,
        objects: Iterable[tuple[str, str, Mapping[str, Any]]],
        counter: int,
    ) -> None:
        """Checkpoint: snapshot the given image, then reset the log.

        The snapshot claims currency up to ``next_lsn``; a crash between the
        two steps leaves stale records in the log, which recovery skips by
        their LSNs.
        """
        if self._transactions:
            raise EngineError("cannot checkpoint inside a transaction")
        self._commit_point()
        self._write_snapshot_file(schema_source, database, objects, counter)
        self._reset_log()

    def _write_snapshot_file(
        self,
        schema_source: str,
        database: str,
        objects: Iterable[tuple[str, str, Mapping[str, Any]]],
        counter: int,
    ) -> None:
        payload = {
            "format": SNAPSHOT_FORMAT,
            "database": database,
            "schema": schema_source,
            "schema_digest": schema_digest(schema_source),
            "counter": counter,
            "next_lsn": self._next_lsn,
            "objects": [
                [oid, class_name, encode_state(state)]
                for oid, class_name, state in objects
            ],
        }
        # Whole-file integrity digest, verified by load_image/fsck; the
        # previous snapshot is rotated to .prev so a damaged (or half-
        # rotated) newest file always leaves a verified fallback behind.
        payload["digest"] = snapshot_payload_digest(payload)
        _write_json_atomic(
            self.snapshot_path,
            payload,
            self.faults,
            self.telemetry,
            retain=self.prev_snapshot_path,
        )
        self._records_since_snapshot = 0

    def _reset_log(self) -> None:
        # Crash windows: before the replace, the old log survives and its
        # records are skipped by LSN against the just-written snapshot;
        # after it, the log is empty and the snapshot carries everything.
        # A leftover .tmp is overwritten by the next reset.
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        tmp = self.log_path.with_name(self.log_path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.flush()
            if self.faults is not None:
                self.faults.fsync(handle.fileno(), "log.reset_fsync")
            else:
                os.fsync(handle.fileno())
        _replace_with_retry(
            tmp, self.log_path, "log.reset_replace", self.faults, self.telemetry
        )
        _fsync_directory(self.path, self.faults, self.telemetry)
        self._handle = open(self.log_path, "ab")


# ---------------------------------------------------------------------------
# offline scrubbing
# ---------------------------------------------------------------------------

_FSCK_RANK = {"clean": 0, "truncatable": 1, "fatal": 2}


@dataclass
class FsckReport:
    """What :func:`fsck` found in one durable directory.

    ``status`` is the worst verdict across the scrub passes:

    ``clean``
        Every frame checks out, every present snapshot verifies, replay
        certifies the full log — reopening loses nothing.
    ``truncatable``
        Damage was found, but a committed prefix is recoverable: a torn or
        bit-flipped log tail, an uncommitted transaction tail, a damaged
        newest snapshot with an intact fallback, or an LSN gap behind a
        fallback.  Reopening the directory repairs it (by truncation
        and/or snapshot fallback) at the cost of the damaged suffix.
    ``fatal``
        No committed prefix is recoverable: no intact snapshot survives,
        or the directory holds a log with no snapshot at all.
    """

    path: str
    status: str
    findings: list[str] = field(default_factory=list)
    #: Intact CRC frames in the log.
    frames_valid: int = 0
    #: Log bytes past the recoverable prefix (truncated on reopen).
    tail_bytes: int = 0
    #: Objects / replayed ops / discarded ops of the certified prefix.
    objects: int = 0
    replayed: int = 0
    discarded: int = 0

    @property
    def exit_code(self) -> int:
        """Process exit code for the CLI: clean=0, truncatable=1, fatal=2."""
        return _FSCK_RANK[self.status]


def fsck(path: str | Path) -> FsckReport:
    """Scrub the durable directory at ``path`` without opening it for
    writing: CRC-check every log frame, verify both snapshot digests, and
    replay-certify the recoverable committed prefix.  Never mutates the
    directory — the verdict says what a reopen *would* do."""
    base = Path(path)
    report = FsckReport(path=str(base), status="clean")

    def degrade(status: str, finding: str) -> None:
        report.findings.append(finding)
        if _FSCK_RANK[status] > _FSCK_RANK[report.status]:
            report.status = status

    snapshot_path = base / SNAPSHOT_NAME
    prev_path = base / SNAPSHOT_PREV_NAME
    log_path = base / LOG_NAME
    if not (snapshot_path.exists() or prev_path.exists() or log_path.exists()):
        degrade("fatal", f"no durable store at {str(base)!r}")
        return report

    # Pass 1: physical frame scan of the log.
    log_size = 0
    if log_path.exists():
        data = log_path.read_bytes()
        log_size = len(data)
        records, valid_bytes, torn = scan_log(data)
        report.frames_valid = len(records)
        if torn:
            degrade(
                "truncatable",
                f"log: torn or corrupt frame at byte {valid_bytes} "
                f"({log_size - valid_bytes} trailing bytes unreadable)",
            )

    # Pass 2: snapshot digest verification, newest and retained.
    snapshot_ok = prev_ok = False
    for label, candidate in (
        ("snapshot", snapshot_path),
        ("previous snapshot", prev_path),
    ):
        if not candidate.exists():
            continue
        try:
            _read_snapshot(candidate)
        except EngineError as exc:
            # Severity is decided below, once both verdicts are known.
            report.findings.append(f"{label}: {exc}")
        else:
            if candidate is snapshot_path:
                snapshot_ok = True
            else:
                prev_ok = True
    if snapshot_path.exists() and not snapshot_ok:
        if prev_ok:
            degrade(
                "truncatable",
                "snapshot damaged; recovery falls back to the retained "
                "previous snapshot",
            )
        else:
            degrade("fatal", "snapshot damaged and no intact fallback exists")
    elif not snapshot_path.exists() and prev_ok:
        degrade(
            "truncatable",
            f"missing {SNAPSHOT_NAME} (crash during snapshot rotation); "
            "recovery falls back to the retained previous snapshot",
        )
    if prev_path.exists() and not prev_ok and snapshot_ok:
        degrade(
            "truncatable",
            "retained previous snapshot damaged (fallback protection lost "
            "until the next checkpoint rotates a fresh one)",
        )

    # Pass 3: replay certification — does a committed prefix recover?
    try:
        image = load_image(base)
    except EngineError as exc:
        degrade("fatal", f"replay: {exc}")
        return report
    if image is None:  # pragma: no cover - presence-checked above
        degrade("fatal", f"no durable store at {str(base)!r}")
        return report
    report.objects = len(image.objects)
    report.replayed = image.replayed
    report.discarded = image.discarded
    report.tail_bytes = max(0, log_size - image.log_valid_bytes)
    if image.lsn_gap:
        degrade(
            "truncatable",
            "log: LSN gap behind the fallback snapshot; replay stops at "
            "the fallback checkpoint's committed state",
        )
    if report.tail_bytes and not (image.torn or image.lsn_gap):
        degrade(
            "truncatable",
            f"log: {report.tail_bytes} bytes of uncommitted transaction "
            "tail will be truncated on reopen",
        )
    if image.discarded:
        report.findings.append(
            f"replay: {image.discarded} operation(s) of aborted or "
            "unfinished transactions discarded"
        )
    if image.prepared:
        # Informational, not damage: an in-doubt 2PC bracket is resolved by
        # the commit router from the coordinator shard's decide record when
        # the sharded root is reopened as a whole.
        report.findings.append(
            f"replay: {len(image.prepared)} in-doubt prepared "
            "transaction(s) awaiting the commit router's resolution"
        )
    if image.schema_drift:
        report.findings.append(
            "schema drift: post-checkpoint schema records moved the schema "
            "past the snapshot's digest (checkpoint to fold them in)"
        )
    return report
