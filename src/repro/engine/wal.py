"""Durability: an append-only write-ahead log with snapshot checkpoints.

The paper's interoperation architecture assumes component databases that
survive their clients: a constraint the transaction manager accepted must
still hold after a process restart.  This module gives
:class:`~repro.engine.store.ObjectStore` that substrate — a durable store is
a directory holding two files:

* ``snapshot.json`` — a full image of the store at some checkpoint: the TM
  schema (as re-parseable surface syntax), the oid counter, every live
  object, and ``next_lsn``, the log sequence number the snapshot is current
  up to.  Written atomically (temp file + fsync + rename).

* ``wal.jsonl`` — the write-ahead log: one CRC-framed JSON record per line,
  appended by the store's mutation write-through.  Record kinds::

      {"n": lsn, "t": "insert", "oid": ..., "cls": ..., "state": {...}}
      {"n": lsn, "t": "update", "oid": ..., "state": {...}}
      {"n": lsn, "t": "delete", "oid": ...}
      {"n": lsn, "t": "begin",  "x": txid}
      {"n": lsn, "t": "commit", "x": txid}
      {"n": lsn, "t": "abort",  "x": txid}

Transactional exactness
-----------------------

Mutation records are written *eagerly* (inside a transaction they land in
the log before the commit decision), so commit/abort markers decide their
fate: recovery treats ``begin``/``commit``/``abort`` as nested brackets and
applies an operation only once every enclosing bracket has committed — an
inner commit merges its operations into the enclosing transaction's buffer,
exactly mirroring how the in-memory undo log merges outward.  Operations of
an aborted bracket, and of any bracket left open by a crash, are discarded.
Operations outside any bracket are the store's auto-committed single
mutations, logged only after enforcement accepted them.  Recovery therefore
reconstructs precisely a prefix of the *committed* history, whatever log
prefix survives.

Each line carries a CRC32 of its payload; a torn or corrupt line ends the
replay (everything before it is intact — the file is append-only), and
re-attaching the log truncates the tail so new records never follow garbage.

Checkpoints
-----------

A checkpoint snapshots the live store and then resets the log.  Records
carry explicit LSNs and the snapshot stores ``next_lsn``, so every crash
window is covered: a crash after the snapshot rename but before the log
reset just makes recovery skip the already-snapshotted records (their LSNs
lie below ``next_lsn``).  Checkpoints are only taken outside transactions,
so no committed transaction ever straddles a snapshot boundary.  The store
triggers one automatically every ``checkpoint_every`` log records (see
:meth:`WriteAheadLog.should_checkpoint`).

Single-writer: a durable directory must be attached to at most one live
store at a time; nothing locks it.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, TYPE_CHECKING

from repro.engine.indexes import oid_counter
from repro.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.objects import DBObject

SNAPSHOT_NAME = "snapshot.json"
LOG_NAME = "wal.jsonl"
SNAPSHOT_FORMAT = 1

_OPS = ("insert", "update", "delete")


# ---------------------------------------------------------------------------
# value codec — states hold type-checked values only: str/int/float/bool and
# frozensets thereof (set-typed attributes), plus oid strings for references
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    if isinstance(value, (frozenset, set)):
        return {"$set": sorted((encode_value(member) for member in value), key=repr)}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise EngineError(
        f"cannot serialize {value!r} ({type(value).__name__}) into the "
        "write-ahead log"
    )


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$set"}:
            return frozenset(decode_value(member) for member in value["$set"])
        raise EngineError(f"unknown value encoding {value!r} in the write-ahead log")
    return value


def encode_state(state: Mapping[str, Any]) -> dict[str, Any]:
    return {name: encode_value(value) for name, value in state.items()}


def decode_state(state: Mapping[str, Any]) -> dict[str, Any]:
    return {name: decode_value(value) for name, value in state.items()}


# ---------------------------------------------------------------------------
# record framing
# ---------------------------------------------------------------------------


def _frame(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x}:{payload}\n".encode("utf-8")


def _parse_line(line: bytes) -> dict | None:
    """The record behind one complete log line, or ``None`` when torn/corrupt."""
    if len(line) < 10 or line[8:9] != b":":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    if not isinstance(record, dict) or "t" not in record or "n" not in record:
        return None
    return record


def scan_log(data: bytes) -> tuple[list[tuple[dict, int]], int, bool]:
    """Parse a log image into ``((record, start_offset) pairs, valid_bytes,
    torn)``.

    Replay stops at the first incomplete or corrupt line: the file is
    append-only, so everything before that point is intact and everything
    from it on is a crash artifact.  ``valid_bytes`` is where a re-attached
    writer must truncate before appending.
    """
    records: list[tuple[dict, int]] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            return records, offset, True  # torn tail: no terminator
        record = _parse_line(data[offset:newline])
        if record is None:
            return records, offset, True  # corrupt line
        records.append((record, offset))
        offset = newline + 1
    return records, offset, False


def _fsync_directory(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _write_json_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


@dataclass
class RecoveredImage:
    """What recovery reconstructed from a durable directory."""

    schema_source: str
    database: str
    #: ``(oid, class name, state)`` in insertion order.
    objects: list[tuple[str, str, dict]]
    #: Highest oid counter the history ever used (aborted inserts included,
    #: so a recovered store never re-issues an oid the log has seen).
    counter: int
    #: The LSN the re-attached writer continues from.
    next_lsn: int
    #: Byte length of the log's surviving prefix — the truncation point for
    #: re-attachment.  Cuts both the torn/corrupt tail *and* any trailing
    #: uncommitted transaction bracket a crash left open.
    log_valid_bytes: int
    #: Records in the surviving prefix that postdate the snapshot (the
    #: re-attached writer's pending backlog toward the next checkpoint).
    log_records: int
    #: Committed operations applied on top of the snapshot.
    replayed: int
    #: Operations discarded: aborted transactions plus any bracket a crash
    #: left open.
    discarded: int
    #: True when the log ended in a torn or corrupt line.
    torn: bool


def load_image(path: str | Path) -> RecoveredImage | None:
    """Recover the durable image under ``path``; ``None`` when nothing exists.

    Replays the snapshot, then every *committed* log record with
    ``lsn >= snapshot.next_lsn`` (see the module docstring for the bracket
    semantics).  Raises :class:`EngineError` on a malformed snapshot or a
    log with no snapshot (the snapshot holds the schema, so a bare log is
    unrecoverable).
    """
    base = Path(path)
    snapshot_path = base / SNAPSHOT_NAME
    log_path = base / LOG_NAME
    if not snapshot_path.exists():
        if log_path.exists():
            raise EngineError(
                f"write-ahead log without a snapshot at {str(base)!r}: the "
                "snapshot holds the schema, so the log alone cannot be recovered"
            )
        return None
    try:
        snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise EngineError(f"corrupt snapshot at {str(snapshot_path)!r}: {exc}") from exc
    if not isinstance(snapshot, dict) or snapshot.get("format") != SNAPSHOT_FORMAT:
        raise EngineError(
            f"unsupported snapshot format at {str(snapshot_path)!r}: "
            f"{snapshot.get('format') if isinstance(snapshot, dict) else snapshot!r}"
        )

    objects: dict[str, tuple[str, dict]] = {}
    counter = int(snapshot.get("counter", 0))
    for oid, class_name, state in snapshot.get("objects", []):
        objects[oid] = (class_name, decode_state(state))
        counter = max(counter, oid_counter(oid, 0))
    start_lsn = int(snapshot.get("next_lsn", 0))

    records: list[dict] = []
    valid_bytes = 0
    torn = False
    if log_path.exists():
        records, valid_bytes, torn = scan_log(log_path.read_bytes())

    def apply(op: dict) -> None:
        kind = op["t"]
        if kind == "insert":
            objects[op["oid"]] = (op["cls"], decode_state(op["state"]))
        elif kind == "update":
            current = objects.get(op["oid"])
            if current is not None:
                objects[op["oid"]] = (current[0], decode_state(op["state"]))
        elif kind == "delete":
            objects.pop(op["oid"], None)

    #: Stack of op buffers, one per open transaction bracket.
    open_brackets: list[list[dict]] = []
    replayed = 0
    discarded = 0
    #: Post-snapshot records that survive in the log after recovery.
    kept = 0
    #: Byte offset / kept-count where the currently open outermost bracket
    #: began.  If the log ends with the bracket chain still open, everything
    #: from here on is an uncommitted tail: it must be *truncated* on
    #: resume, or its stale ``begin`` would swallow the next session's
    #: committed records at the following recovery (brackets are matched
    #: positionally, not by txid).
    tail_offset: int | None = None
    tail_kept = 0
    max_lsn = start_lsn - 1
    for record, offset in records:
        lsn = int(record["n"])
        kind = record["t"]
        if kind == "insert":
            # Track the counter over *every* insert, committed or not: an
            # aborted insert still burned its oid.
            counter = max(counter, oid_counter(record["oid"], 0))
        if lsn < start_lsn:
            continue  # already folded into the snapshot
        max_lsn = max(max_lsn, lsn)
        if kind == "begin":
            if not open_brackets:
                tail_offset, tail_kept = offset, kept
            open_brackets.append([])
        elif kind == "commit":
            if open_brackets:
                ops = open_brackets.pop()
                if open_brackets:
                    open_brackets[-1].extend(ops)
                else:
                    for op in ops:
                        apply(op)
                    replayed += len(ops)
                    tail_offset = None
        elif kind == "abort":
            if open_brackets:
                discarded += len(open_brackets.pop())
                if not open_brackets:
                    tail_offset = None
        elif kind in _OPS:
            if open_brackets:
                open_brackets[-1].append(record)
            else:
                apply(record)
                replayed += 1
        # unknown record kinds are skipped: forward compatibility
        kept += 1
    if open_brackets:
        discarded += sum(len(ops) for ops in open_brackets)
        if tail_offset is not None:
            valid_bytes = tail_offset
            kept = tail_kept

    return RecoveredImage(
        schema_source=snapshot.get("schema", ""),
        database=snapshot.get("database", ""),
        objects=[(oid, cls, state) for oid, (cls, state) in objects.items()],
        counter=counter,
        next_lsn=max_lsn + 1,
        log_valid_bytes=valid_bytes,
        log_records=kept,
        replayed=replayed,
        discarded=discarded,
        torn=torn,
    )


# ---------------------------------------------------------------------------
# the writer
# ---------------------------------------------------------------------------


class WriteAheadLog:
    """The append side of one durable directory.

    Owned by an :class:`~repro.engine.store.ObjectStore`; the store calls
    :meth:`log_insert`/:meth:`log_update`/:meth:`log_delete` after each
    applied mutation, and the transaction layer brackets them with
    :meth:`begin`/:meth:`commit_transaction`/:meth:`abort_transaction`.
    ``begin`` markers are lazy — written only once the transaction logs its
    first operation — so empty transactions never reach the disk.

    ``sync=True`` fsyncs at every commit point (durable against power loss);
    the default flushes Python's buffer at commit points, which survives a
    process crash but not a kernel one.  ``checkpoint_every`` is the
    auto-checkpoint threshold in log records (0 disables).
    """

    def __init__(
        self,
        path: str | Path,
        sync: bool = False,
        checkpoint_every: int = 10_000,
    ):
        self.path = Path(path)
        self.sync = sync
        self.checkpoint_every = checkpoint_every
        self._handle = None
        self._next_lsn = 0
        #: Open transaction brackets: ``{"id": txid, "written": bool}``.
        self._transactions: list[dict] = []
        self._txid = 0
        self._records_since_snapshot = 0

    @property
    def snapshot_path(self) -> Path:
        return self.path / SNAPSHOT_NAME

    @property
    def log_path(self) -> Path:
        return self.path / LOG_NAME

    def has_data(self) -> bool:
        return self.snapshot_path.exists() or self.log_path.exists()

    @property
    def pending_records(self) -> int:
        """Log records not yet folded into a snapshot."""
        return self._records_since_snapshot

    # -- lifecycle ---------------------------------------------------------------

    def initialize(
        self,
        schema_source: str,
        database: str,
        objects: Iterable[tuple[str, str, Mapping[str, Any]]],
        counter: int,
    ) -> None:
        """Create a fresh durable directory (initial snapshot + empty log)."""
        self.path.mkdir(parents=True, exist_ok=True)
        self._write_snapshot_file(schema_source, database, objects, counter)
        self._reset_log()

    def resume(self, image: RecoveredImage) -> None:
        """Attach to a recovered directory: truncate everything recovery
        discarded — the torn tail *and* any trailing uncommitted transaction
        bracket (a stale open ``begin`` left in the log would swallow this
        session's committed records at the next recovery) — and continue
        the LSN sequence."""
        self.path.mkdir(parents=True, exist_ok=True)
        if self.log_path.exists():
            if self.log_path.stat().st_size > image.log_valid_bytes:
                with open(self.log_path, "r+b") as handle:
                    handle.truncate(image.log_valid_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
        else:  # snapshot-only directory (e.g. crash between snapshot and log reset)
            self.log_path.touch()
        self._next_lsn = image.next_lsn
        self._records_since_snapshot = image.log_records

    def flush(self) -> None:
        self._commit_point()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    # -- appending ---------------------------------------------------------------

    def _open_handle(self):
        if self._handle is None:
            self._handle = open(self.log_path, "ab")
        return self._handle

    def _append(self, record: dict) -> None:
        record["n"] = self._next_lsn
        self._next_lsn += 1
        self._open_handle().write(_frame(record))
        self._records_since_snapshot += 1

    def _commit_point(self) -> None:
        if self._handle is None:
            return
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())

    def log_insert(self, obj: "DBObject") -> None:
        self._log_operation(
            {
                "t": "insert",
                "oid": obj.oid,
                "cls": obj.class_name,
                "state": encode_state(obj.state),
            }
        )

    def log_update(self, obj: "DBObject") -> None:
        """Log the full post-image — replay then needs no pre-state."""
        self._log_operation(
            {"t": "update", "oid": obj.oid, "state": encode_state(obj.state)}
        )

    def log_delete(self, oid: str) -> None:
        self._log_operation({"t": "delete", "oid": oid})

    def _log_operation(self, record: dict) -> None:
        self._materialize_begins()
        self._append(record)

    def operation_committed(self) -> None:
        """Flush point for an auto-committed (non-transactional) mutation."""
        self._commit_point()

    # -- transaction brackets ----------------------------------------------------

    def begin(self) -> int:
        self._txid += 1
        self._transactions.append({"id": self._txid, "written": False})
        return self._txid

    def _materialize_begins(self) -> None:
        for transaction in self._transactions:
            if not transaction["written"]:
                self._append({"t": "begin", "x": transaction["id"]})
                transaction["written"] = True

    def commit_transaction(self) -> None:
        if not self._transactions:
            return
        transaction = self._transactions.pop()
        if transaction["written"]:
            self._append({"t": "commit", "x": transaction["id"]})
            if not self._transactions:
                self._commit_point()

    def abort_transaction(self) -> None:
        if not self._transactions:
            return
        transaction = self._transactions.pop()
        if transaction["written"]:
            self._append({"t": "abort", "x": transaction["id"]})
            if not self._transactions:
                # Flush aborts too: recovery must not mistake the rolled-back
                # tail for a crash-opened bracket of a *later* session.
                self._commit_point()

    @property
    def in_transaction(self) -> bool:
        return bool(self._transactions)

    # -- checkpoints -------------------------------------------------------------

    def should_checkpoint(self) -> bool:
        return (
            self.checkpoint_every > 0
            and not self._transactions
            and self._records_since_snapshot >= self.checkpoint_every
        )

    def write_snapshot(
        self,
        schema_source: str,
        database: str,
        objects: Iterable[tuple[str, str, Mapping[str, Any]]],
        counter: int,
    ) -> None:
        """Checkpoint: snapshot the given image, then reset the log.

        The snapshot claims currency up to ``next_lsn``; a crash between the
        two steps leaves stale records in the log, which recovery skips by
        their LSNs.
        """
        if self._transactions:
            raise EngineError("cannot checkpoint inside a transaction")
        self._commit_point()
        self._write_snapshot_file(schema_source, database, objects, counter)
        self._reset_log()

    def _write_snapshot_file(
        self,
        schema_source: str,
        database: str,
        objects: Iterable[tuple[str, str, Mapping[str, Any]]],
        counter: int,
    ) -> None:
        payload = {
            "format": SNAPSHOT_FORMAT,
            "database": database,
            "schema": schema_source,
            "counter": counter,
            "next_lsn": self._next_lsn,
            "objects": [
                [oid, class_name, encode_state(state)]
                for oid, class_name, state in objects
            ],
        }
        _write_json_atomic(self.snapshot_path, payload)
        self._records_since_snapshot = 0

    def _reset_log(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        tmp = self.log_path.with_name(self.log_path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.log_path)
        _fsync_directory(self.path)
        self._handle = open(self.log_path, "ab")
