"""Constraint enforcement over an :class:`~repro.engine.store.ObjectStore`.

The component databases of the paper enforce their own integrity constraints;
this module is that enforcement.  Object constraints (own + inherited) are
checked against single objects, class constraints against (deep) extents, and
database constraints against the whole store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.constraints.evaluate import evaluate
from repro.errors import ConstraintViolation, EngineError, EvaluationError

#: Evaluation failures that count as violations rather than crashes: a
#: formula that cannot be evaluated (missing attribute, unknown function)
#: or whose dereference hits a dangling/unknown object.  Shared by the
#: fail-fast checks and the bulk audit, matching the delta-driven
#: validator's contract (:mod:`repro.engine.incremental`).
#: ``ConstraintViolation`` subclasses ``EngineError`` but ``evaluate`` never
#: raises it, so the widened catch is safe.
_EVAL_FAILURES = (EvaluationError, EngineError)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.objects import DBObject
    from repro.engine.store import ObjectStore


@dataclass(frozen=True)
class Violation:
    """A detected constraint violation (used by bulk validation).

    The explanation fields — the violated :class:`Constraint` itself, the
    culprit object's ``oid`` (object constraints only) and the detection
    ``trace`` — are excluded from equality/hashing/repr so violation lists
    from differently-configured stores (indexed vs scan, incremental vs
    full) still compare on ``(constraint_name, detail)`` alone.
    """

    constraint_name: str
    detail: str
    constraint: Any = field(default=None, compare=False, repr=False)
    oid: str | None = field(default=None, compare=False, repr=False)
    trace: Any = field(default=None, compare=False, repr=False)

    def describe(self) -> str:
        return f"{self.constraint_name}: {self.detail}"


def _detection_trace(
    store: "ObjectStore",
    constraint,
    current=None,
    self_extent_class: str | None = None,
):
    """Trace of a just-detected failure, or ``None`` if explanations are
    off.  Lazy import: explain builds on this module's error contract."""
    from repro.engine.explain import failure_trace

    return failure_trace(
        store, constraint, current=current, self_extent_class=self_extent_class
    )


def check_object_constraints(store: "ObjectStore", obj: "DBObject") -> None:
    """Raise unless ``obj`` satisfies all effective object constraints.

    Evaluation failures (including dereferences that hit a dangling
    reference, which surface as engine errors) are wrapped as
    :class:`ConstraintViolation` — the same error contract the delta-driven
    validator honours, so incremental and exhaustive enforcement reject with
    the same exception type.
    """
    scope = getattr(store, "constraint_scope", None)
    for constraint in store.schema.effective_object_constraints(obj.class_name):
        if scope is not None and constraint not in scope:
            continue  # cross-shard: the commit router checks it
        ctx = store.eval_context(current=obj)
        try:
            satisfied = evaluate(constraint.formula, ctx)
        except _EVAL_FAILURES as exc:
            raise ConstraintViolation(
                constraint.qualified_name,
                f"cannot evaluate on {obj.oid}: {exc}",
                trace=_detection_trace(store, constraint, current=obj),
            ) from exc
        if not satisfied:
            raise ConstraintViolation(
                constraint.qualified_name,
                f"object {obj.oid} with state {obj.state!r}",
                trace=_detection_trace(store, constraint, current=obj),
            )


def check_class_constraints(store: "ObjectStore", class_name: str) -> None:
    """Raise unless the extents touched by ``class_name`` satisfy their
    class constraints.

    Class constraints of every ancestor are re-checked because an object of a
    subclass is a member of each ancestor's extent (the paper's ``cc2`` on
    Publication constrains the sum over *all* publications).  This is extent
    membership, not constraint inheritance — the constraint stays attached to
    the ancestor.
    """
    scope = getattr(store, "constraint_scope", None)
    for ancestor in store.schema.ancestors(class_name):
        for constraint in ancestor.own_class_constraints():
            if scope is not None and constraint not in scope:
                continue  # cross-shard: the commit router checks it
            ctx = store.eval_context(self_extent_class=ancestor.name)
            try:
                satisfied = evaluate(constraint.formula, ctx)
            except _EVAL_FAILURES as exc:
                raise ConstraintViolation(
                    constraint.qualified_name,
                    str(exc),
                    trace=_detection_trace(
                        store, constraint, self_extent_class=ancestor.name
                    ),
                ) from exc
            if not satisfied:
                raise ConstraintViolation(
                    constraint.qualified_name,
                    f"extent of {ancestor.name} "
                    f"({len(store.extent(ancestor.name))} objects)",
                    trace=_detection_trace(
                        store, constraint, self_extent_class=ancestor.name
                    ),
                )


def check_database_constraints(store: "ObjectStore") -> None:
    """Raise unless all database constraints hold on the current store."""
    scope = getattr(store, "constraint_scope", None)
    for constraint in store.schema.database_constraints:
        if scope is not None and constraint not in scope:
            continue  # cross-shard: the commit router checks it
        ctx = store.eval_context()
        try:
            satisfied = evaluate(constraint.formula, ctx)
        except _EVAL_FAILURES as exc:
            raise ConstraintViolation(
                constraint.qualified_name,
                str(exc),
                trace=_detection_trace(store, constraint),
            ) from exc
        if not satisfied:
            raise ConstraintViolation(
                constraint.qualified_name,
                "database constraint violated",
                trace=_detection_trace(store, constraint),
            )


def all_violations(store: "ObjectStore") -> list[Violation]:
    """Every violation in the store (does not stop at the first)."""
    found: list[Violation] = []
    scope = getattr(store, "constraint_scope", None)
    for obj in store.objects():
        for constraint in store.schema.effective_object_constraints(obj.class_name):
            if scope is not None and constraint not in scope:
                continue
            ctx = store.eval_context(current=obj)
            try:
                if not evaluate(constraint.formula, ctx):
                    found.append(
                        Violation(
                            constraint.qualified_name,
                            f"object {obj.oid}",
                            constraint=constraint,
                            oid=obj.oid,
                            trace=_detection_trace(store, constraint, current=obj),
                        )
                    )
            except _EVAL_FAILURES as exc:
                found.append(
                    Violation(
                        constraint.qualified_name,
                        str(exc),
                        constraint=constraint,
                        oid=obj.oid,
                        trace=_detection_trace(store, constraint, current=obj),
                    )
                )
    for class_def in store.schema.classes.values():
        for constraint in class_def.own_class_constraints():
            if scope is not None and constraint not in scope:
                continue
            ctx = store.eval_context(self_extent_class=class_def.name)
            try:
                if not evaluate(constraint.formula, ctx):
                    found.append(
                        Violation(
                            constraint.qualified_name,
                            f"extent of {class_def.name}",
                            constraint=constraint,
                            trace=_detection_trace(
                                store, constraint, self_extent_class=class_def.name
                            ),
                        )
                    )
            except _EVAL_FAILURES as exc:
                found.append(
                    Violation(
                        constraint.qualified_name,
                        str(exc),
                        constraint=constraint,
                        trace=_detection_trace(
                            store, constraint, self_extent_class=class_def.name
                        ),
                    )
                )
    for constraint in store.schema.database_constraints:
        if scope is not None and constraint not in scope:
            continue
        try:
            if not evaluate(constraint.formula, store.eval_context()):
                found.append(
                    Violation(
                        constraint.qualified_name,
                        "database constraint",
                        constraint=constraint,
                        trace=_detection_trace(store, constraint),
                    )
                )
        except _EVAL_FAILURES as exc:
            found.append(
                Violation(
                    constraint.qualified_name,
                    str(exc),
                    constraint=constraint,
                    trace=_detection_trace(store, constraint),
                )
            )
    return found
