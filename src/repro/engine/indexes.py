"""Maintained auxiliary state: deep extents, running aggregates, key indexes.

PR 1 made enforcement *delta-driven*: only the constraints whose read set
intersects a mutation's dirty set are re-checked.  But the residual check for
an aggregate or key class constraint still cost O(extent) — the evaluator
re-scanned the class to recompute a sum or probe uniqueness — and
``ObjectStore.extent()`` scanned every object in the store.  Following the
simplified-integrity-checking literature (incremental checking pays off only
when the residual check is constant-time in store size), this module keeps
four kinds of auxiliary state transactionally consistent with the store:

* **deep-extent indexes** — class name → ordered oid set, maintained over the
  subclass closure on every insert/delete, so ``extent()`` is O(|result|)
  instead of O(|store|);

* **maintained aggregates** (:class:`RunningAggregate`) — a running
  sum/count per ``(class, attribute)`` pair some constraint aggregates over,
  plus min/max via a value-count table and lazily-cleaned heaps.  Registered
  from the PR-1 constraint-dependency index
  (:meth:`~repro.engine.incremental.ConstraintDependencyIndex.aggregate_specs`),
  so an aggregate-reading constraint commit is O(1);

* **key hash indexes** (:class:`KeyIndex`) — key tuple → multiplicity with a
  running duplicate count, so a uniqueness constraint answers in O(1) per
  mutation instead of re-hashing the whole extent;

* **reference-count indexes** (:class:`ReferenceIndex`) — per constraint-read
  ``(referrer class, attribute) → referenced class`` pair, ``referenced oid →
  referrer count`` plus running live/dangling totals.  Registered from the
  dependency index's referential quantifier patterns
  (:meth:`~repro.engine.incremental.ConstraintDependencyIndex.reference_specs`),
  so ``forall p in Publisher exists i in Item | i.publisher = p`` — the
  paper's dominant database-constraint shape — answers in O(1) instead of
  O(|Publisher|·|Item|).

Consistency contract
--------------------

The store routes every mutation through :meth:`IndexManager.on_insert` /
:meth:`~IndexManager.on_update` / :meth:`~IndexManager.on_delete` *after*
applying it to ``_objects``, and rolls indexes back with the *inverse* hook —
both in the per-operation failure paths and in the transaction undo log
(:meth:`~repro.engine.transactions.Transaction._apply_undo`), keeping
rollback O(touched).  Index deltas need no separate log: each hook is
deterministic in the (pre-image, post-image) pair the undo log already
carries.

Schema changes are detected by fingerprint
(:meth:`~repro.tm.schema.DatabaseSchema.fingerprint`): every hook and probe
first compares fingerprints and rebuilds all indexes from the live store
contents when stale — a rebuild *replaces* the incremental application, since
the store already reflects the mutation by the time a hook runs.

Graceful degradation: an index that meets a value it cannot maintain (a
non-numeric aggregate operand, an unhashable key component, a NaN, a
non-string reference slot) marks itself invalid and answers
:data:`~repro.constraints.evaluate.INDEX_MISS` (aggregates, references) or
``None`` (keys); evaluation falls back to the extent scan with the exact
pre-index semantics.  Reference indexes additionally answer
:data:`~repro.constraints.evaluate.INDEX_MISS` while any counted reference
dangles — only the scan reproduces dangling-dereference errors.  The next
fingerprint-triggered rebuild retries.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Mapping
from typing import Any, TYPE_CHECKING

from repro.constraints.evaluate import INDEX_MISS, VACUOUS

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.objects import DBObject
    from repro.engine.store import ObjectStore

#: Attribute lookup miss inside maintenance (states normally carry every
#: effective attribute; a miss invalidates the affected index).
_ABSENT = object()


def oid_counter(oid: str, default: int | None = None) -> int:
    """The insertion counter embedded in an engine oid.

    Plain stores mint ``Class#N``; shard cores mint ``Class#S.N`` where
    ``S`` is the shard namespace (:mod:`repro.engine.sharding`) and ``N``
    the shard-local counter.  Both shapes recover ``N`` — each shard's
    counter is monotonic on its own, which is what the ordered extent
    indexes and WAL counter recovery rely on.  An oid in neither shape has
    no recoverable counter; with a ``default`` the caller degrades (the
    index layer passes ``-1`` so malformed oids sort first and ordering
    falls back to "unsorted" instead of crashing the whole index layer),
    without one the ``ValueError`` propagates.
    """
    tail = str(oid).rsplit("#", 1)[-1]
    namespace, dot, sequence = tail.rpartition(".")
    # Branch on the dot instead of trying ``int(tail)`` first: this runs
    # once per extent level on every insert, and an exception-per-call for
    # the sharded oid shape would tax exactly the hot path sharding is
    # meant to speed up.
    if dot:
        try:
            int(namespace)
            return int(sequence)
        except ValueError:
            pass
    else:
        try:
            return int(tail)
        except ValueError:
            pass
    if default is None:
        raise ValueError(f"oid {oid!r} carries no insertion counter")
    return default


def oid_shard(oid: str) -> int | None:
    """The shard namespace embedded in a sharded oid (``Class#S.N``), or
    ``None`` for plain ``Class#N`` oids and anything malformed.  The commit
    router uses this to route oid-addressed operations without a lookup."""
    tail = str(oid).rsplit("#", 1)[-1]
    namespace, dot, sequence = tail.rpartition(".")
    if not dot:
        return None
    try:
        int(sequence)
        return int(namespace)
    except ValueError:
        return None


def oid_sort_key(oid: str) -> tuple[int, int, str]:
    """Deterministic insertion-order sort key for engine oids.

    Primary key is the embedded insertion counter; shard-prefixed oids
    (``Class#S.N``) tie-break on the *numeric* shard namespace (so shard 10
    sorts after shard 2, which a plain string comparison would get wrong
    and a round-robin spread layout relies on: the k-th accepted insert of
    a spread class lands at ``(k // shards, k % shards)``, which is
    increasing in k exactly when the namespace ranks numerically); the oid
    string breaks the remaining ties so that malformed oids (counter
    ``-1``) still sort the same way everywhere — the maintained extent
    indexes and the store's object-table restoration must agree on one
    order, or ``indexed=True`` and ``indexed=False`` extents would diverge
    after a rollback resurrection.
    """
    shard = oid_shard(oid)
    return (oid_counter(oid, default=-1), -1 if shard is None else shard, oid)


class OrderedOidSet:
    """An oid set that iterates in insertion order.

    Adds are O(1): oids normally arrive in increasing counter order (the
    store's counter is monotonic), so the backing dict preserves insertion
    order by itself.  A rollback can *resurrect* an oid out of order; that
    marks the set unsorted and the next read re-sorts lazily — O(k log k) on
    this extent only, not on the store.  An oid with no parseable counter
    (not shaped ``Class#N``) also just marks the set unsorted — degrading
    the ordering guarantee, never raising out of the index layer.
    """

    __slots__ = ("_oids", "_last", "_unsorted")

    def __init__(self) -> None:
        self._oids: dict[str, None] = {}
        self._last = 0
        self._unsorted = False

    def add(self, oid: str) -> None:
        counter = oid_counter(oid, default=-1)
        if counter < self._last or counter < 0:
            self._unsorted = True
        else:
            self._last = counter
        self._oids[oid] = None

    def discard(self, oid: str) -> None:
        self._oids.pop(oid, None)

    def _ensure_sorted(self) -> None:
        if self._unsorted:
            self._oids = dict.fromkeys(sorted(self._oids, key=oid_sort_key))
            self._last = (
                oid_counter(next(reversed(self._oids)), default=-1)
                if self._oids
                else 0
            )
            self._unsorted = False

    def __len__(self) -> int:
        return len(self._oids)

    def __contains__(self, oid: object) -> bool:
        return oid in self._oids

    def __iter__(self):
        self._ensure_sorted()
        return iter(self._oids)


class RunningAggregate:
    """Sum/count — and, when requested, min/max — of one attribute over the
    deep extent of one class, maintained in O(1) per mutation.

    Min/max use a value→multiplicity table plus two heaps with *lazy
    deletion*: removals only decrement the table, and queries pop heap heads
    until a live value surfaces.  Heaps are compacted (rebuilt from the live
    value table) when churn makes them four times larger than the live set.
    """

    __slots__ = (
        "class_name", "over", "funcs", "count", "total", "valid",
        "_counts", "_min_heap", "_max_heap",
    )

    def __init__(self, class_name: str, over: str, funcs: Iterable[str]):
        self.class_name = class_name
        self.over = over
        self.funcs = frozenset(funcs)
        self.count = 0
        self.total: Any = 0
        self.valid = True
        #: value → live multiplicity; only tracked when min/max is needed.
        self._counts: dict[Any, int] | None = (
            {} if self.funcs & {"min", "max"} else None
        )
        self._min_heap: list = []
        self._max_heap: list = []

    def _usable(self, value: Any) -> bool:
        # NaN breaks both removal (identity-keyed dict lookups) and heap
        # ordering; any non-number breaks running sums.  Either invalidates.
        return isinstance(value, (int, float)) and value == value

    def add(self, value: Any) -> None:
        if not self.valid:
            return
        if not self._usable(value):
            self.valid = False
            return
        self.count += 1
        self.total += value
        if self._counts is not None:
            self._counts[value] = self._counts.get(value, 0) + 1
            heapq.heappush(self._min_heap, value)
            heapq.heappush(self._max_heap, -value)
            if len(self._min_heap) > 4 * len(self._counts) + 64:
                self._compact()

    def remove(self, value: Any) -> None:
        if not self.valid:
            return
        if not self._usable(value):
            self.valid = False
            return
        self.count -= 1
        self.total -= value
        if self.count == 0:
            self.total = 0  # drop accumulated float drift at the fixpoint
        elif self.count < 0:
            self.valid = False
            return
        if self._counts is not None:
            live = self._counts.get(value, 0)
            if live <= 0:
                self.valid = False  # removal of a value never added
            elif live == 1:
                del self._counts[value]
            else:
                self._counts[value] = live - 1

    def _compact(self) -> None:
        counts = self._counts or {}
        self._min_heap = list(counts)
        heapq.heapify(self._min_heap)
        self._max_heap = [-value for value in counts]
        heapq.heapify(self._max_heap)

    def _live_extreme(self, heap: list, sign: int) -> Any:
        counts = self._counts or {}
        while heap:
            candidate = sign * heap[0]
            if counts.get(candidate, 0) > 0:
                return candidate
            heapq.heappop(heap)
        return INDEX_MISS  # count > 0 but no live heap entry: inconsistent

    def value(self, func: str) -> Any:
        """The aggregate's current value, or :data:`INDEX_MISS`."""
        if not self.valid:
            return INDEX_MISS
        if func == "count":
            return self.count
        if func == "sum":
            return self.total
        if self.count == 0:
            return VACUOUS  # avg/min/max over an empty extent
        if func == "avg":
            return self.total / self.count
        if func == "min" and self._counts is not None:
            return self._live_extreme(self._min_heap, 1)
        if func == "max" and self._counts is not None:
            return self._live_extreme(self._max_heap, -1)
        return INDEX_MISS


class KeyIndex:
    """Key-tuple multiplicities over the deep extent of one class, with a
    running duplicate count: uniqueness is ``duplicates == 0``, O(1).

    Key components are taken from raw object states.  Keys containing
    reference-typed attributes are never registered (see the dependency
    index): the scan path dereferences them — raising on dangling oids —
    while this index would compare raw oid strings.
    """

    __slots__ = ("class_name", "attributes", "valid", "_counts", "_duplicates")

    def __init__(self, class_name: str, attributes: Iterable[str]):
        self.class_name = class_name
        self.attributes = tuple(attributes)
        self.valid = True
        self._counts: dict[tuple, int] = {}
        self._duplicates = 0

    def _key(self, state: Mapping[str, Any]) -> tuple | None:
        key = tuple(state.get(attr, _ABSENT) for attr in self.attributes)
        return None if _ABSENT in key else key

    def add(self, state: Mapping[str, Any]) -> None:
        if not self.valid:
            return
        key = self._key(state)
        if key is None:
            self.valid = False
            return
        try:
            live = self._counts.get(key, 0)
        except TypeError:  # unhashable key component
            self.valid = False
            return
        self._counts[key] = live + 1
        if live >= 1:
            self._duplicates += 1

    def remove(self, state: Mapping[str, Any]) -> None:
        if not self.valid:
            return
        key = self._key(state)
        if key is None:
            self.valid = False
            return
        try:
            live = self._counts.get(key, 0)
        except TypeError:
            self.valid = False
            return
        if live <= 0:
            self.valid = False  # removal of a key never added
        elif live == 1:
            del self._counts[key]
        else:
            self._counts[key] = live - 1
            self._duplicates -= 1

    def unique(self) -> bool | None:
        """Whether all key tuples are distinct; ``None`` when invalidated."""
        if not self.valid:
            return None
        return self._duplicates == 0


class ReferenceIndex:
    """Referrer counts for one ``(referrer class, attribute)`` reference pair.

    For every constraint-read reference pair ``D.a : R`` this keeps
    ``referenced oid → number of live objects in the deep extent of D whose
    raw a-value is that oid``, split into two running totals:

    * ``_live_with_ref`` — distinct *live* referenced objects with at least
      one referrer.  ``forall x in R exists y in D | y.a = x`` is then
      ``_live_with_ref == |deep extent of R|`` — one O(1) comparison; the
      negated and existential forms read the same counter.
    * ``_dangling`` — distinct counted oids whose object has been deleted.
      Any dangling entry disables the probes (:data:`INDEX_MISS`): the scan
      path *dereferences* ``y.a`` and may raise on a dangler depending on
      extent order, so only the scan can reproduce those semantics.

    Liveness is probed against the store's object table (``_contains``) at
    transition time; hooks run after the store applied the mutation, so a
    newly inserted object (or rollback resurrection) already counts as live
    and a deleted one no longer does.  Type checking guarantees every
    counted oid once named a member of R's subclass closure, so referenced-
    side membership changes only arrive through :meth:`join`/:meth:`leave`
    hooks of classes in that closure.

    Degradation mirrors the other indexes: a value that cannot be counted
    (a non-string where an oid belongs, a removal never added) marks the
    index invalid; probes answer :data:`INDEX_MISS` and evaluation falls
    back to the extent scan until the next fingerprint-triggered rebuild.
    """

    __slots__ = (
        "referrer_class", "attribute", "referenced_class", "valid",
        "_counts", "_live_with_ref", "_dangling", "_contains",
    )

    def __init__(
        self,
        referrer_class: str,
        attribute: str,
        referenced_class: str,
        contains: "Callable[[str], bool]",
    ):
        self.referrer_class = referrer_class
        self.attribute = attribute
        self.referenced_class = referenced_class
        self.valid = True
        self._counts: dict[str, int] = {}
        self._live_with_ref = 0
        self._dangling = 0
        self._contains = contains

    # -- referrer-side transitions (objects of D's closure) ---------------------

    def add_referrer(self, value: Any) -> None:
        if not self.valid:
            return
        if not isinstance(value, str):
            self.valid = False  # a reference slot holds an oid string
            return
        live = self._counts.get(value, 0)
        self._counts[value] = live + 1
        if live == 0:
            if self._contains(value):
                self._live_with_ref += 1
            else:
                self._dangling += 1

    def remove_referrer(self, value: Any) -> None:
        if not self.valid:
            return
        if not isinstance(value, str):
            self.valid = False
            return
        live = self._counts.get(value, 0)
        if live <= 0:
            self.valid = False  # removal of a referrer never added
        elif live == 1:
            del self._counts[value]
            if self._contains(value):
                self._live_with_ref -= 1
            else:
                self._dangling -= 1
        else:
            self._counts[value] = live - 1

    # -- referenced-side transitions (objects of R's closure) -------------------

    def join(self, oid: str) -> None:
        """``oid`` (re)entered the store: referrers to it are live again."""
        if self.valid and self._counts.get(oid, 0) > 0:
            self._dangling -= 1
            self._live_with_ref += 1

    def leave(self, oid: str) -> None:
        """``oid`` left the store: referrers to it now dangle."""
        if self.valid and self._counts.get(oid, 0) > 0:
            self._live_with_ref -= 1
            self._dangling += 1

    # -- probes -----------------------------------------------------------------

    def count_for(self, oid: str) -> Any:
        """Referrer count of one oid, or :data:`INDEX_MISS`."""
        if not self.valid or self._dangling:
            return INDEX_MISS
        return self._counts.get(oid, 0)

    def verdict(self, mode: str, referenced_extent_size: int) -> Any:
        """Whole-formula verdict against R's deep-extent size, or
        :data:`INDEX_MISS`.  ``mode``: ``all`` (every member referenced),
        ``any`` (some member referenced), ``none`` (no member referenced)."""
        if not self.valid or self._dangling:
            return INDEX_MISS
        if mode == "all":
            return self._live_with_ref == referenced_extent_size
        if mode == "any":
            return self._live_with_ref > 0
        if mode == "none":
            return self._live_with_ref == 0
        return INDEX_MISS


class IndexManager:
    """Owns and maintains all auxiliary indexes of one store.

    Construction (and every fingerprint-triggered rebuild) registers what to
    materialize from the store's constraint-dependency index and replays the
    current store contents.  See the module docstring for the consistency
    contract with mutations and rollback.
    """

    def __init__(self, store: "ObjectStore"):
        self._store = store
        self._fingerprint: int | None = None
        #: Rebuild counter, exposed for tests and benchmarks.
        self.rebuilds = 0
        self.rebuild()

    # -- construction / freshness ------------------------------------------------

    def _stale(self) -> bool:
        return self._fingerprint != self._store.schema.fingerprint()

    def ensure_fresh(self) -> None:
        if self._stale():
            self.rebuild()

    def probe(self) -> "IndexManager":
        """The fast-path probe handed to evaluation contexts (checked fresh
        once per context, not per query)."""
        self.ensure_fresh()
        return self

    def rebuild(self) -> None:
        """Re-derive every index from the schema and live store contents.

        O(store) — runs once per schema change (or explicit call), never on
        the per-mutation path.
        """
        store = self._store
        schema = store.schema
        self._fingerprint = schema.fingerprint()
        self.rebuilds += 1
        self._extents: dict[str, OrderedOidSet] = {
            name: OrderedOidSet() for name in schema.classes
        }
        # Registration flow: the constraint-dependency index names every
        # aggregate and key any constraint evaluates; merge per-(class, attr)
        # so one structure serves all functions requested over it.
        dependency_index = store.dependency_index()
        wanted_funcs: dict[tuple[str, str], set[str]] = {}
        for func, class_name, over in dependency_index.aggregate_specs():
            if over is None:
                continue  # bare counts are answered from the extent index
            wanted_funcs.setdefault((class_name, over), set()).add(func)
        self._aggregates: dict[tuple[str, str], RunningAggregate] = {
            (class_name, over): RunningAggregate(class_name, over, funcs)
            for (class_name, over), funcs in wanted_funcs.items()
        }
        self._keys: dict[tuple[str, tuple[str, ...]], KeyIndex] = {
            (class_name, attributes): KeyIndex(class_name, attributes)
            for class_name, attributes in dependency_index.key_specs()
        }
        # Liveness closes over the *store*, not the current ``_objects``
        # dict: ``_restore_object_order()`` replaces that dict wholesale
        # after a resurrection, and a bound ``__contains__`` would keep
        # probing the abandoned one.
        def contains(oid: str) -> bool:
            return oid in store._objects

        self._references: dict[tuple[str, str], ReferenceIndex] = {
            (referrer, attribute): ReferenceIndex(
                referrer, attribute, referenced, contains
            )
            for referrer, attribute, referenced
            in dependency_index.reference_specs()
        }
        # Feed maps: which structures an object of each class contributes to
        # (its own class and every ancestor — deep-extent membership).  A
        # reference index has two feeds: the referrer side (classes below D,
        # whose a-values are counted) and the referenced side (classes below
        # R, whose store membership flips counted oids live/dangling).
        self._extent_feeds: dict[str, tuple[OrderedOidSet, ...]] = {}
        self._agg_feeds: dict[str, tuple[RunningAggregate, ...]] = {}
        self._key_feeds: dict[str, tuple[KeyIndex, ...]] = {}
        self._referrer_feeds: dict[str, tuple[ReferenceIndex, ...]] = {}
        self._referenced_feeds: dict[str, tuple[ReferenceIndex, ...]] = {}
        for name in schema.classes:
            chain = set(schema.ancestry(name))
            self._extent_feeds[name] = tuple(
                self._extents[ancestor] for ancestor in schema.ancestry(name)
            )
            self._agg_feeds[name] = tuple(
                agg for agg in self._aggregates.values() if agg.class_name in chain
            )
            self._key_feeds[name] = tuple(
                key for key in self._keys.values() if key.class_name in chain
            )
            self._referrer_feeds[name] = tuple(
                ref
                for ref in self._references.values()
                if ref.referrer_class in chain
            )
            self._referenced_feeds[name] = tuple(
                ref
                for ref in self._references.values()
                if ref.referenced_class in chain
            )
        for obj in store.objects():
            # Replay skips the referenced-side join: liveness is probed
            # against the already-complete store, so add_referrer classifies
            # every oid correctly on its own (danglers included) and a join
            # would double-count objects replayed after their referrers.
            self._apply_insert(obj, replay=True)

    # -- mutation hooks -----------------------------------------------------------
    #
    # Each hook runs *after* the store applied the mutation to ``_objects``.
    # When the schema changed underneath, the rebuild replays the already-
    # mutated store, so the incremental application is skipped entirely.

    def on_insert(self, obj: "DBObject") -> None:
        if self._stale():
            self.rebuild()
            return
        self._apply_insert(obj)

    def on_delete(self, obj: "DBObject") -> None:
        if self._stale():
            self.rebuild()
            return
        # Referenced-side leave before referrer-side remove: a self-pointing
        # object must first flip its own counted entry to dangling so its
        # referrer removal declassifies the same state it observes.
        for reference in self._referenced_feeds.get(obj.class_name, ()):
            reference.leave(obj.oid)
        for reference in self._referrer_feeds.get(obj.class_name, ()):
            reference.remove_referrer(obj.state.get(reference.attribute, _ABSENT))
        for extent in self._extent_feeds.get(obj.class_name, ()):
            extent.discard(obj.oid)
        for aggregate in self._agg_feeds.get(obj.class_name, ()):
            aggregate.remove(obj.state.get(aggregate.over, _ABSENT))
        for key in self._key_feeds.get(obj.class_name, ()):
            key.remove(obj.state)

    def on_update(
        self,
        obj: "DBObject",
        old_state: Mapping[str, Any],
        new_state: Mapping[str, Any],
    ) -> None:
        """Transition hook; also used in reverse by rollback (the hook is
        symmetric in its explicit state pair, whatever ``obj.state`` holds)."""
        if self._stale():
            self.rebuild()
            return
        for aggregate in self._agg_feeds.get(obj.class_name, ()):
            old = old_state.get(aggregate.over, _ABSENT)
            new = new_state.get(aggregate.over, _ABSENT)
            if old is new:
                continue  # untouched attributes keep their value's identity
            aggregate.remove(old)
            aggregate.add(new)
        for key in self._key_feeds.get(obj.class_name, ()):
            if any(
                old_state.get(attr, _ABSENT) is not new_state.get(attr, _ABSENT)
                for attr in key.attributes
            ):
                key.remove(old_state)
                key.add(new_state)
        for reference in self._referrer_feeds.get(obj.class_name, ()):
            old = old_state.get(reference.attribute, _ABSENT)
            new = new_state.get(reference.attribute, _ABSENT)
            if old is new:
                continue
            reference.remove_referrer(old)
            reference.add_referrer(new)

    def _apply_insert(self, obj: "DBObject", replay: bool = False) -> None:
        for extent in self._extent_feeds.get(obj.class_name, ()):
            extent.add(obj.oid)
        for aggregate in self._agg_feeds.get(obj.class_name, ()):
            aggregate.add(obj.state.get(aggregate.over, _ABSENT))
        for key in self._key_feeds.get(obj.class_name, ()):
            key.add(obj.state)
        if not replay:
            # Referenced-side join before referrer-side add: a resurrected
            # self-pointer must reclassify pre-existing referrers before
            # counting its own (already-live) reference.
            for reference in self._referenced_feeds.get(obj.class_name, ()):
                reference.join(obj.oid)
        for reference in self._referrer_feeds.get(obj.class_name, ()):
            reference.add_referrer(obj.state.get(reference.attribute, _ABSENT))

    # -- probes (the EvalContext fast path) ----------------------------------------

    def aggregate_value(self, func: str, class_name: str, over: str | None) -> Any:
        """A materialized aggregate value, or :data:`INDEX_MISS`.

        ``count`` — with or without an ``over`` attribute — equals the deep
        extent's size (every member carries its effective attributes), so it
        is answered from the extent index even when no running aggregate was
        registered for the pair.
        """
        if func == "count":
            extent = self._extents.get(class_name)
            return INDEX_MISS if extent is None else len(extent)
        if over is None:
            return INDEX_MISS
        aggregate = self._aggregates.get((class_name, over))
        if aggregate is None:
            return INDEX_MISS
        return aggregate.value(func)

    def key_unique(self, class_name: str, attributes: Iterable[str]) -> bool | None:
        """A materialized uniqueness verdict, or ``None`` (no usable index)."""
        key = self._keys.get((class_name, tuple(attributes)))
        if key is None:
            return None
        return key.unique()

    def reference_count(
        self, referrer_class: str, attribute: str, oid: str
    ) -> Any:
        """How many live members of ``referrer_class``'s deep extent hold
        ``oid`` in ``attribute``, or :data:`INDEX_MISS` (no index registered
        for the pair, invalidated, or dangling references present — the scan
        path alone reproduces dangling-dereference semantics)."""
        reference = self._references.get((referrer_class, attribute))
        if reference is None:
            return INDEX_MISS
        return reference.count_for(oid)

    def referential_verdict(
        self,
        mode: str,
        referenced_class: str,
        referrer_class: str,
        attribute: str,
    ) -> Any:
        """A whole-formula referential verdict, or :data:`INDEX_MISS`.

        ``mode`` ``all`` answers ``forall x in C exists y in D | y.a = x``,
        ``none`` its negated body, ``any`` the doubly-existential form.  The
        probe only applies when ``referenced_class`` is exactly the declared
        target of ``D.a`` — the maintained live-referenced counter is scoped
        to that class's deep extent; other quantification classes scan."""
        reference = self._references.get((referrer_class, attribute))
        if reference is None or reference.referenced_class != referenced_class:
            return INDEX_MISS
        extent = self._extents.get(referenced_class)
        if extent is None:
            return INDEX_MISS
        return reference.verdict(mode, len(extent))

    def reference_totals(
        self,
        referrer_class: str,
        attribute: str,
        referenced_class: str,
    ) -> tuple[int, int] | Any:
        """The raw ``(live_with_ref, dangling)`` running totals of one
        reference pair, or :data:`INDEX_MISS`.

        These are the *mergeable partials* behind cross-shard referential
        checking (:mod:`repro.engine.sharding`): referrer classes are pinned
        to one shard, so summing each shard's totals and comparing against
        the merged referenced-extent size reproduces
        :meth:`referential_verdict` exactly — any dangling entry anywhere
        still forces the scan path, same as the single-store probe.
        """
        reference = self._references.get((referrer_class, attribute))
        if reference is None or reference.referenced_class != referenced_class:
            return INDEX_MISS
        if not reference.valid:
            return INDEX_MISS
        return (reference._live_with_ref, reference._dangling)

    def deep_extent_oids(self, class_name: str) -> OrderedOidSet | None:
        """The maintained deep extent of ``class_name`` in insertion order,
        or ``None`` when the class has no index (unknown to the schema the
        indexes were built for)."""
        return self._extents.get(class_name)
