"""Deterministic fault injection for the durability stack.

The WAL's crash-safety story (:mod:`repro.engine.wal`) is only as good as
its behaviour at the exact byte where an IO operation dies.  This module
makes those deaths schedulable: a :class:`FaultInjector` carries a static
schedule of :class:`FaultSpec` entries — *the Nth time fault point P is
crossed, fail like K* — and the WAL threads every file operation through
it.  With no schedule (or no injector at all) every call degrades to the
plain OS operation behind a single dict check, so the success path pays
nothing measurable (``benchmarks/bench_e19_faults.py`` holds the gate).

Fault kinds
-----------

``torn``
    Write only the first ``arg`` bytes of the record, flush them to the OS,
    then crash — the classic torn write.  Recovery must treat everything
    from the tear on as garbage.
``bit_flip``
    Complete the write, flush, then flip one byte of what just landed
    (offset ``arg`` into the written span) — silent media corruption.  Only
    checksums can catch this one.
``enospc`` / ``io_error``
    Raise ``OSError`` with ``ENOSPC`` / ``EIO`` — the disk is full, or the
    device failed.  Both are **fatal** classes: no retry is sound.
``transient`` / ``unsupported``
    Raise ``OSError`` with ``EINTR`` / ``EINVAL`` — the two classes
    :func:`classify_os_error` distinguishes from fatal ones: transient
    errors admit a bounded retry, unsupported ones mean the operation is
    advisory on this filesystem (directory fsync on some network mounts).
``crash`` / ``crash_after``
    Raise :class:`SimulatedCrash` before / after performing the operation.
    ``SimulatedCrash`` derives from ``BaseException`` so no ``except
    Exception`` handler in the stack can accidentally swallow a simulated
    power cut; the crash-matrix suite catches it at the top, abandons the
    store object, and recovers the directory like a fresh process would.

Error classification
--------------------

:func:`classify_os_error` is the single policy point for what the storage
layer may do with an ``OSError``: retry (``transient``), ignore-and-count
(``unsupported``, caller opts in per call site), or fail stop (``fatal`` —
everything else, notably ``EIO`` and ``ENOSPC``).  The fsyncgate lesson is
encoded here: a *failed fsync is never retried* — the kernel may have
dropped the dirty pages while marking them clean, so a retry that succeeds
proves nothing about the lost writes.  The WAL poisons itself instead
(see :meth:`repro.engine.wal.WriteAheadLog.poison`).
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable

#: Errno classes where retrying the *same* call is sound: the kernel
#: reported the call never ran to completion, not that it failed.
TRANSIENT_ERRNOS = frozenset({errno.EINTR, errno.EAGAIN})

_ENOTSUP = getattr(errno, "ENOTSUP", getattr(errno, "EOPNOTSUPP", errno.EINVAL))

#: Errno classes a directory fsync may raise on filesystems where the
#: operation is advisory or unsupported (some network and FUSE mounts
#: reject directory fds outright).  Callers opt into this set explicitly;
#: it is never applied to data-file fsyncs.
UNSUPPORTED_DIR_FSYNC_ERRNOS = frozenset(
    {errno.EINVAL, _ENOTSUP, errno.EACCES, errno.EPERM, errno.EROFS}
)

#: Valid ``FaultSpec.kind`` values.
FAULT_KINDS = frozenset(
    {
        "torn",
        "bit_flip",
        "enospc",
        "io_error",
        "transient",
        "unsupported",
        "crash",
        "crash_after",
    }
)

_ERRNO_BY_KIND = {
    "enospc": errno.ENOSPC,
    "io_error": errno.EIO,
    "transient": errno.EINTR,
    "unsupported": errno.EINVAL,
}


class SimulatedCrash(BaseException):
    """A scheduled process death at a fault point.

    Derives from ``BaseException`` on purpose: a simulated power cut must
    not be catchable by the ``except Exception`` / ``except EngineError``
    recovery handlers it is supposed to test.  Only the test harness (or
    the injector's owner) catches it, discards the live store object, and
    re-opens the directory the way a restarted process would.
    """

    def __init__(self, spec: "FaultSpec"):
        super().__init__(f"simulated crash at fault point {spec.point!r}")
        self.spec = spec


def classify_os_error(
    exc: OSError, unsupported: frozenset[int] | Iterable[int] = ()
) -> str:
    """``"transient"`` / ``"unsupported"`` / ``"fatal"`` for an ``OSError``.

    ``transient`` (EINTR/EAGAIN) means the call never completed and may be
    retried with backoff.  ``unsupported`` is caller-supplied: errno values
    that mean *this operation is advisory here* (used for directory
    fsyncs), counted in telemetry and skipped.  Everything else — EIO,
    ENOSPC, and the unknown — is ``fatal``: the state of the file is
    undefined and the caller must fail stop.
    """
    code = exc.errno
    if code in TRANSIENT_ERRNOS:
        return "transient"
    if code is not None and code in unsupported:
        return "unsupported"
    return "fatal"


def flip_byte(path: str | Path, offset: int) -> None:
    """Flip every bit of one byte of ``path`` in place (media-rot helper;
    also used by the CI fsck smoke to corrupt a fixture deterministically).
    Negative offsets index from the end, like ``bytes`` indexing."""
    with open(path, "r+b") as handle:
        if offset < 0:
            handle.seek(offset, os.SEEK_END)
            offset = handle.tell()
        handle.seek(offset)
        byte = handle.read(1)
        if not byte:
            raise ValueError(f"offset {offset} is past the end of {str(path)!r}")
        handle.seek(offset)
        handle.write(bytes((byte[0] ^ 0xFF,)))


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: the ``at``-th crossing of ``point`` fails
    like ``kind``.  ``arg`` parameterizes the kind (byte count kept by a
    ``torn`` write, offset flipped by a ``bit_flip``)."""

    point: str
    kind: str
    at: int = 0
    arg: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of {sorted(FAULT_KINDS)})"
            )


@dataclass
class FaultInjector:
    """Schedule-driven IO shim the durability stack routes file operations
    through.

    Deterministic by construction: the schedule names fault points and hit
    indexes, and the injector counts crossings — the same operation history
    always dies at the same byte.  ``fired`` records the specs that
    actually triggered (a schedule naming points the history never crosses
    fires nothing), ``crashed`` is sticky once a crash kind fired.

    The no-fault fast path is one truthiness check on an empty dict; an
    injector constructed with an empty schedule is a true no-op shim.
    """

    schedule: Iterable[FaultSpec] = ()
    fired: list[FaultSpec] = field(default_factory=list)
    crashed: bool = False

    def __post_init__(self):
        self._by_point: dict[str, list[FaultSpec]] = {}
        for spec in self.schedule:
            self._by_point.setdefault(spec.point, []).append(spec)
        self._hits: dict[str, int] = {}

    # -- schedule bookkeeping ---------------------------------------------------

    def _take(self, point: str) -> FaultSpec | None:
        """The spec scheduled for this crossing of ``point``, if any."""
        by_point = self._by_point
        if not by_point:
            return None
        hit = self._hits.get(point, 0)
        self._hits[point] = hit + 1
        specs = by_point.get(point)
        if not specs:
            return None
        for spec in specs:
            if spec.at == hit:
                self.fired.append(spec)
                return spec
        return None

    def hits(self, point: str) -> int:
        """How many times ``point`` has been crossed so far."""
        return self._hits.get(point, 0)

    def _crash(self, spec: FaultSpec) -> None:
        self.crashed = True
        raise SimulatedCrash(spec)

    def _raise_errno(self, spec: FaultSpec) -> None:
        code = _ERRNO_BY_KIND.get(spec.kind)
        if code is None:
            raise ValueError(
                f"fault kind {spec.kind!r} applies only to write points "
                f"(scheduled at {spec.point!r})"
            )
        raise OSError(code, f"{os.strerror(code)} [injected at {spec.point!r}]")

    # -- shimmed operations -----------------------------------------------------

    def write(self, handle, data: bytes, point: str) -> None:
        """``handle.write(data)`` with tear/flip/crash semantics.

        ``torn`` keeps the first ``arg`` bytes *and flushes them to the
        OS* before crashing — a tear that stayed in the userspace buffer
        would vanish with the process and test nothing.  ``bit_flip``
        completes the write, then flips the byte at ``arg`` within the
        just-written span (via the handle's backing path).
        """
        spec = self._take(point)
        if spec is None:
            handle.write(data)
            return
        kind = spec.kind
        if kind == "torn":
            keep = max(0, min(len(data), spec.arg))
            if keep:
                handle.write(data[:keep])
            handle.flush()
            self._crash(spec)
        if kind == "bit_flip":
            handle.write(data)
            handle.flush()
            span = max(1, len(data))
            offset = os.path.getsize(handle.name) - span
            offset += max(0, min(spec.arg, span - 1))
            flip_byte(handle.name, offset)
            return
        if kind == "crash":
            self._crash(spec)
        if kind == "crash_after":
            handle.write(data)
            handle.flush()
            self._crash(spec)
        self._raise_errno(spec)

    def flush(self, handle, point: str) -> None:
        spec = self._take(point)
        if spec is None:
            handle.flush()
            return
        if spec.kind == "crash":
            self._crash(spec)
        if spec.kind == "crash_after":
            handle.flush()
            self._crash(spec)
        self._raise_errno(spec)

    def fsync(self, fd: int, point: str) -> None:
        spec = self._take(point)
        if spec is None:
            os.fsync(fd)
            return
        if spec.kind == "crash":
            self._crash(spec)
        if spec.kind == "crash_after":
            os.fsync(fd)
            self._crash(spec)
        self._raise_errno(spec)

    def replace(self, src, dst, point: str) -> None:
        """``os.replace`` with crash-before / crash-after windows — the two
        sides of the atomic-rename crash model."""
        spec = self._take(point)
        if spec is None:
            os.replace(src, dst)
            return
        if spec.kind == "crash":
            self._crash(spec)
        if spec.kind == "crash_after":
            os.replace(src, dst)
            self._crash(spec)
        self._raise_errno(spec)

    def truncate(self, handle, size: int, point: str) -> None:
        spec = self._take(point)
        if spec is None:
            handle.truncate(size)
            return
        if spec.kind == "crash":
            self._crash(spec)
        if spec.kind == "crash_after":
            handle.truncate(size)
            handle.flush()
            self._crash(spec)
        self._raise_errno(spec)
