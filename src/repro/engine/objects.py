"""Object identities and states."""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any


class DBObject:
    """A stored object: an identity, a most-specific class, and a state.

    The state maps attribute names to values; reference attributes hold the
    *object identifier* of the target (dereferencing is the store's job).
    ``DBObject`` behaves as a read-only mapping over its state so that the
    constraint evaluator can treat stored objects and plain dict states
    uniformly.
    """

    __slots__ = ("oid", "class_name", "state")

    def __init__(self, oid: str, class_name: str, state: dict[str, Any]):
        self.oid = oid
        self.class_name = class_name
        self.state = state

    # -- mapping protocol ---------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        return self.state[name]

    def __contains__(self, name: str) -> bool:
        return name in self.state

    def __iter__(self) -> Iterator[str]:
        return iter(self.state)

    def keys(self):
        return self.state.keys()

    def get(self, name: str, default: Any = None) -> Any:
        return self.state.get(name, default)

    # -- identity ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DBObject):
            return self.oid == other.oid
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.oid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.class_name} {self.oid} {self.state!r}>"


def state_of(obj: "DBObject | Mapping[str, Any]") -> Mapping[str, Any]:
    """The raw state mapping behind an object or plain dict."""
    if isinstance(obj, DBObject):
        return obj.state
    return obj
