"""``StoreAPI`` — the unified store protocol every store flavor satisfies.

The engine grew three ways to hold a database — the plain
:class:`~repro.engine.store.ObjectStore`, the shard-partitioned
:class:`~repro.engine.sharding.ShardedStore`, and (since the serving PR)
the network-attached :class:`~repro.client.RemoteStore` — and every
consumer above the engine (the integration workbench, the CLI, the server,
tests, benchmarks) should be able to take any of them interchangeably.
This module pins that contract down as typed :class:`typing.Protocol`
classes instead of folklore:

* :class:`StoreAPI` — the store surface: mutation
  (``insert``/``update``/``delete``), deferred-validation ``transaction``
  brackets, point-in-time ``snapshot`` reads, whole-store ``audit`` /
  ``check_all`` / ``explain_violations``, durable ``set_constant`` /
  ``checkpoint`` / ``close``, and the read accessors (``get``, ``extent``,
  ``objects``, ``len``, ``in``).
* :class:`TransactionAPI` — what ``store.transaction()`` returns: a
  reentrant-safe context manager that validates at exit and rolls back on
  failure.
* :class:`SnapshotAPI` — what ``store.snapshot()`` returns: an immutable
  point-in-time view with ``get``/``extent``/``objects`` mirroring the
  live accessors, released by ``close()`` or context-manager exit.
* :class:`StoredObject` — the object shape all three return: an ``oid``,
  a most-specific ``class_name`` and a ``state`` mapping.

The protocols are ``runtime_checkable`` so tests can assert conformance
with ``isinstance`` (structure only — signatures are checked statically).
The real enforcement is the :data:`_conformance` block at the bottom:
mypy (strict on this module, see ``pyproject.toml``) verifies that
``ObjectStore``, ``ShardedStore`` and ``RemoteStore`` each structurally
satisfy :class:`StoreAPI`, so signature drift between the flavors is a
type error, not a runtime surprise.

This protocol — not the concrete classes — is the supported public
surface: code written against :class:`StoreAPI` runs unchanged embedded
or over the wire.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from types import TracebackType
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class StoredObject(Protocol):
    """A stored object: identity, most-specific class, attribute state."""

    @property
    def oid(self) -> str: ...

    @property
    def class_name(self) -> str: ...

    @property
    def state(self) -> Mapping[str, Any]: ...


@runtime_checkable
class ViolationLike(Protocol):
    """One audit finding: a constraint name plus a human-readable detail."""

    @property
    def constraint_name(self) -> str: ...

    @property
    def detail(self) -> str: ...

    def describe(self) -> str: ...


@runtime_checkable
class TransactionAPI(Protocol):
    """A deferred-validation transaction bracket.

    Entering defers constraint checking; a clean exit validates everything
    the bracket touched and commits, raising
    :class:`~repro.errors.ConstraintViolation` (after rolling back) when a
    constraint is broken; an exceptional exit rolls back.
    """

    def __enter__(self) -> object: ...

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool: ...


@runtime_checkable
class SnapshotAPI(Protocol):
    """An immutable point-in-time view of the committed store.

    Mirrors the live read accessors.  Snapshots are context managers;
    ``close()`` (or exit) releases the pinned version so the store's
    version history can be garbage-collected.
    """

    def get(self, oid: str) -> Any: ...

    def extent(self, class_name: str, deep: bool = True) -> list[Any]: ...

    def objects(self) -> Iterable[Any]: ...

    def __len__(self) -> int: ...

    def __contains__(self, oid: object) -> bool: ...

    def close(self) -> None: ...

    def __enter__(self) -> SnapshotAPI: ...

    def __exit__(self, *exc_info: object) -> None: ...


@runtime_checkable
class StoreAPI(Protocol):
    """The unified store surface (see the module docstring).

    Contract notes shared by every implementation:

    * ``insert`` mints the oid; ``update``/``delete`` accept an object or
      its oid.  All three raise :class:`~repro.errors.ConstraintViolation`
      (store left unchanged) when the mutation would break a constraint,
      and :class:`~repro.errors.StorePoisonedError` once a durable store
      has fail-stopped.
    * ``transaction(validate=False)`` hands commit-time consistency to the
      caller; everything else should leave validation on.
    * ``snapshot`` never blocks on writers (remote stores pin the snapshot
      server-side).
    * ``audit`` returns structured violations; a clean pass re-baselines
      incremental enforcement.  ``check_all`` is its description-only
      convenience form.
    * ``checkpoint`` raises :class:`~repro.errors.EngineError` on
      non-durable stores — probe ``durable`` first.
    * ``close`` flushes and releases durable resources (and, for remote
      stores, the connection); it is idempotent.
    """

    @property
    def durable(self) -> bool: ...

    def insert(
        self,
        class_name: str,
        state: Mapping[str, Any] | None = None,
        **kwargs: Any,
    ) -> Any: ...

    def update(self, target: Any, **changes: Any) -> Any: ...

    def delete(self, target: Any) -> None: ...

    def get(self, oid: str) -> Any: ...

    def extent(self, class_name: str, deep: bool = True) -> list[Any]: ...

    def objects(self) -> Iterable[Any]: ...

    def __len__(self) -> int: ...

    def __contains__(self, oid: str) -> bool: ...

    def transaction(self, validate: bool = True) -> TransactionAPI: ...

    def snapshot(self) -> SnapshotAPI: ...

    def audit(self) -> list[Any]: ...

    def check_all(self) -> list[str]: ...

    def explain_violations(self, violations: Any = None) -> list[Any]: ...

    def set_constant(self, name: str, value: Any) -> None: ...

    def checkpoint(self) -> None: ...

    def close(self) -> None: ...


def _conformance() -> None:  # pragma: no cover - exists for mypy only
    """Static conformance proof: assigning each store flavor to a
    ``StoreAPI``-typed name makes signature drift a mypy error.  Never
    called; the imports are local so the module has no runtime cost."""
    from repro.client import RemoteStore
    from repro.engine.sharding import ShardedStore
    from repro.engine.store import ObjectStore

    stores: list[StoreAPI] = []

    def _accept(store: StoreAPI) -> None:
        stores.append(store)

    def _check(
        plain: ObjectStore, sharded: ShardedStore, remote: RemoteStore
    ) -> None:
        _accept(plain)
        _accept(sharded)
        _accept(remote)

    del _check
