"""Concurrent serving: immutable snapshot reads beside a single writer.

The paper's interoperation workbench assumes *many* agents consulting and
updating shared component stores.  This module makes an
:class:`~repro.engine.store.ObjectStore` safe and fast under that load with
two cooperating pieces:

* a **coarse writer lock** (owned by the store): every mutating operation —
  and every transaction, for its whole extent — runs under one reentrant
  lock, so there is exactly one writer at a time and the existing
  enforcement/index/undo machinery needs no internal locking;

* **multi-version snapshot reads** (this module): readers call
  ``store.snapshot()`` and get an immutable, point-in-time view of the
  *committed* store.  Snapshot acquisition is O(1) and never takes the
  writer lock, so readers are not serialized behind writers — the read path
  is lock-free (a microscopic registry lock orders snapshot bookkeeping
  between readers; it is never held across I/O or store work).

Versioned history
-----------------

:class:`ConcurrencyControl` keeps, per oid, a chain of
:class:`_ObjectVersion` records stamped with half-open validity intervals
``[born, died)`` over a monotonically increasing *committed version*
counter.  The store publishes each committed change set (auto-committed
single mutations, or a transaction's touched set at its outermost commit)
under the writer lock:

1. the previous head version (if any) gets ``died = v+1``,
2. a new head with ``born = v+1`` is appended (tombstones append nothing),
3. the committed version counter is bumped to ``v+1`` **last**.

A reader that pinned version ``v`` only accepts records with
``born <= v < died``, so partially published change sets are invisible by
construction — no reader lock, no retry loop.  State dicts are shared, not
copied: the store never mutates a state dict in place (updates and
rollbacks swap whole dicts), so a published reference is immutable.

Because publication happens at *commit points only*, a snapshot can never
observe uncommitted inserts, in-flight transaction states, or the
re-registration shuffle of a rollback resurrection: none of those are ever
published.  Extents materialized from a snapshot are sorted by the same
``(counter, oid)`` key the live extent indexes use, so snapshot and live
reads agree on one deterministic order.

Costs: publication is O(touched) per commit; snapshot acquisition is O(1);
``Snapshot.get`` is O(chain length) (chains stay short — see GC);
``Snapshot.extent`` is O(class members) plus the sort.  Version chains and
class-member lists grow with write traffic and are pruned by a small
garbage collector once no live snapshot can see the dead versions
(amortized over commits, proportional to what was touched since the last
sweep).

Activation is lazy: until the first ``snapshot()`` call the layer records
nothing and publishing is a no-op, so purely single-threaded stores pay
almost nothing.  The first call freezes the committed store under the
writer lock (O(store), once); from then on maintenance is O(touched).

What is and isn't linearizable is documented in
``docs/architecture.md`` — in short: single mutations and transaction
commits are linearizable (they serialize on the writer lock), snapshots
are consistent prefixes of that order, but *schema* mutations are shared
state outside snapshot isolation.

Fail-stop interaction: when a durable store's write-ahead log poisons
itself (a commit-point IO failure — see :mod:`repro.engine.faults` and
:meth:`repro.engine.wal.WriteAheadLog.poison`), mutations start raising
:class:`~repro.errors.StorePoisonedError` *before* touching the store, so
nothing new is ever published — but this layer keeps serving: snapshots
taken before or after the poisoning remain valid, lock-free reads of the
last committed (and durably replayable) state.  Read-only degradation is
a property of the write path; the read path never notices.
"""

from __future__ import annotations

import threading
import weakref
from collections.abc import Iterable, Iterator, Mapping
from typing import Any, TYPE_CHECKING

from repro.engine.indexes import oid_sort_key
from repro.errors import (
    EngineError,
    SchemaError,
    UnknownClassError,
    UnknownObjectError,
)
from repro.types.primitives import ClassRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.store import ObjectStore

#: Publish calls between garbage-collection sweeps.
_GC_EVERY = 64
#: Compact a class-member list only once this fraction of it is dead.
_MEMBER_DEAD_FRACTION = 4


class _ObjectVersion:
    """One committed version of one object: valid for ``born <= v < died``."""

    __slots__ = ("born", "died", "class_name", "state")

    def __init__(self, born: int, class_name: str, state: Mapping[str, Any]):
        self.born = born
        #: ``None`` while this is the live head.
        self.died: int | None = None
        self.class_name = class_name
        self.state = state

    def visible_at(self, version: int) -> bool:
        return self.born <= version and (self.died is None or self.died > version)


class SnapshotObject:
    """An immutable object as seen by one :class:`Snapshot`.

    Carries the oid, the most specific class, and the state mapping *as of
    the snapshot version*.  The state dict is shared with the store's
    history (never mutated in place) — treat it as read-only.
    """

    __slots__ = ("oid", "class_name", "state")

    def __init__(self, oid: str, class_name: str, state: Mapping[str, Any]):
        self.oid = oid
        self.class_name = class_name
        self.state = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SnapshotObject({self.oid!r}, {self.class_name!r})"


def _release_version(control: "ConcurrencyControl", version: int) -> None:
    """Finalizer: un-pin ``version`` when a snapshot is dropped."""
    with control._registry_lock:
        count = control._pinned.get(version, 0) - 1
        if count <= 0:
            control._pinned.pop(version, None)
        else:
            control._pinned[version] = count


class Snapshot:
    """An immutable point-in-time view of the committed store.

    Obtained from :meth:`ObjectStore.snapshot`; cheap to take (O(1)) and
    safe to read from any thread while writers keep committing.  Holding a
    snapshot pins its version against garbage collection — drop the
    reference (or call :meth:`close`) when done; snapshots also work as
    context managers.
    """

    def __init__(self, control: "ConcurrencyControl", version: int):
        self._control = control
        self.version = version
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _release_version, control, version
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the version pin eagerly (idempotent)."""
        if not self._closed:
            self._closed = True
            self._finalizer()

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reads -------------------------------------------------------------

    def _lookup(self, oid: str) -> _ObjectVersion | None:
        chain = self._control._history.get(oid)
        if chain is None:
            return None
        # Newest last; scan backwards — the hit is almost always the head.
        for index in range(len(chain) - 1, -1, -1):
            record = chain[index]
            if record.visible_at(self.version):
                return record
        return None

    def __contains__(self, oid: object) -> bool:
        return isinstance(oid, str) and self._lookup(oid) is not None

    def get(self, oid: str) -> SnapshotObject:
        record = self._lookup(oid)
        if record is None:
            raise UnknownObjectError(
                f"no object with identifier {oid!r} at snapshot version "
                f"{self.version}"
            )
        return SnapshotObject(oid, record.class_name, record.state)

    def get_attr(self, obj: SnapshotObject, name: str) -> Any:
        """Attribute read with reference dereferencing *inside the
        snapshot*: a reference-typed attribute resolves to the referenced
        object as of this snapshot's version.

        Mirrors ``ObjectStore.get_attr``: only attributes *declared* as
        references dereference — a string attribute that happens to hold
        oid-shaped text stays a string."""
        if name not in obj.state:
            raise EngineError(
                f"{obj.class_name} object {obj.oid} has no attribute {name!r}"
            )
        value = obj.state[name]
        if isinstance(value, str):
            try:
                tm_type = self._control._schema.attribute_type(
                    obj.class_name, name
                )
            except SchemaError:
                tm_type = None
            if isinstance(tm_type, ClassRef):
                record = self._lookup(value)
                if record is not None:
                    return SnapshotObject(value, record.class_name, record.state)
        return value

    def extent(self, class_name: str, deep: bool = True) -> list[SnapshotObject]:
        """The class extent at this version, in ``(counter, oid)`` order.

        ``deep`` resolves the subclass closure through the store's schema —
        see the module docstring for the (non-)isolation caveat on
        concurrent *schema* mutation.
        """
        schema = self._control._schema
        if not schema.has_class(class_name):
            raise UnknownClassError(
                f"no class {class_name!r} in database {schema.name}"
            )
        names: Iterable[str] = (
            schema.subclass_closure(class_name) if deep else (class_name,)
        )
        members = self._control._class_members
        results: list[tuple[tuple[int, str], SnapshotObject]] = []
        for name in names:
            oids = members.get(name)
            if not oids:
                continue
            # list() of a list is a single C-level copy: atomic under the
            # GIL even while the writer appends to the original.
            for oid in list(oids):
                record = self._lookup(oid)
                if record is not None and record.class_name == name:
                    results.append(
                        (
                            oid_sort_key(oid),
                            SnapshotObject(oid, record.class_name, record.state),
                        )
                    )
        results.sort(key=lambda pair: pair[0])
        return [obj for _, obj in results]

    def objects(self) -> Iterator[SnapshotObject]:
        """Every object visible at this version (arbitrary order)."""
        for oid in list(self._control._history):
            record = self._lookup(oid)
            if record is not None:
                yield SnapshotObject(oid, record.class_name, record.state)

    def __len__(self) -> int:
        count = 0
        for oid in list(self._control._history):
            if self._lookup(oid) is not None:
                count += 1
        return count


class ConcurrencyControl:
    """The store-side half: committed-version history and snapshot factory.

    Owned by an :class:`~repro.engine.store.ObjectStore`; the store calls
    :meth:`publish` at every commit point *under the writer lock* and
    :meth:`snapshot` from any thread.  All writer-side structures are only
    mutated under the store's writer lock; readers rely on the publication
    ordering documented in the module docstring instead of locks.
    """

    def __init__(self, store: "ObjectStore"):
        self._store_ref = weakref.ref(store)
        self.active = False
        #: Committed version counter; bumped *after* a change set is fully
        #: threaded into the history.
        self._version = 0
        #: oid → version chain, oldest first.
        self._history: dict[str, list[_ObjectVersion]] = {}
        #: most-specific class → oids that ever joined it (append-only
        #: between compactions, so readers can copy it atomically).
        self._class_members: dict[str, list[str]] = {}
        self._member_index: dict[str, set[str]] = {}
        #: Dead oids per class since the last member compaction.
        self._member_dead: dict[str, int] = {}
        #: Version → live snapshot count (guarded by ``_registry_lock``).
        self._pinned: dict[int, int] = {}
        self._registry_lock = threading.Lock()
        self._publishes_since_gc = 0
        #: Oids touched since the last GC sweep — bounds the sweep to
        #: O(recently touched), not O(store).
        self._dirty_since_gc: set[str] = set()

    @property
    def _schema(self):
        store = self._store_ref()
        if store is None:  # pragma: no cover - snapshots outliving the store
            raise EngineError("the snapshot's store no longer exists")
        return store.schema

    # -- activation --------------------------------------------------------

    def activate(self, committed: Iterable[tuple[str, str, Mapping[str, Any]]]) -> None:
        """Freeze the committed store as version 0 (idempotent).

        Called under the writer lock with the committed view — the live
        contents patched back to their pre-images when a transaction is in
        flight on the calling thread.
        """
        if self.active:
            return
        for oid, class_name, state in committed:
            self._history[oid] = [_ObjectVersion(0, class_name, state)]
            self._join(class_name, oid)
        self.active = True

    def _join(self, class_name: str, oid: str) -> None:
        index = self._member_index.setdefault(class_name, set())
        if oid not in index:
            index.add(oid)
            self._class_members.setdefault(class_name, []).append(oid)

    # -- the writer side ---------------------------------------------------

    def publish(
        self, changes: Iterable[tuple[str, str, Mapping[str, Any] | None]]
    ) -> None:
        """Thread one committed change set into the history.

        ``changes`` is ``(oid, most specific class, post-state)`` per
        touched object, post-state ``None`` for a delete.  Called under the
        writer lock, at commit points only — never for uncommitted state.
        No-op until :meth:`activate`.
        """
        if not self.active:
            return
        version = self._version + 1
        published = False
        for oid, class_name, state in changes:
            chain = self._history.get(oid)
            head = chain[-1] if chain else None
            if head is not None and head.died is None:
                if state is not None and head.state is state:
                    continue  # no-op touch (e.g. rollback-restored object)
                head.died = version
                if state is None:
                    self._member_dead[head.class_name] = (
                        self._member_dead.get(head.class_name, 0) + 1
                    )
            elif state is None:
                continue  # deleting an object no snapshot ever saw
            published = True
            self._dirty_since_gc.add(oid)
            if state is not None:
                record = _ObjectVersion(version, class_name, state)
                if chain is None:
                    self._history[oid] = [record]
                else:
                    chain.append(record)
                self._join(class_name, oid)
        if published:
            # The bump is last: readers pin versions <= self._version, so
            # the half-threaded change set above was invisible throughout.
            self._version = version
        self._publishes_since_gc += 1
        if self._publishes_since_gc >= _GC_EVERY:
            self.collect()

    # -- the reader side ---------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin and return the current committed version — O(1), no writer
        lock (see :func:`_release_version` for the un-pin)."""
        with self._registry_lock:
            version = self._version
            self._pinned[version] = self._pinned.get(version, 0) + 1
        return Snapshot(self, version)

    # -- garbage collection ------------------------------------------------

    def _min_live_version(self) -> int:
        with self._registry_lock:
            if self._pinned:
                return min(min(self._pinned), self._version)
            return self._version

    def collect(self) -> None:
        """Prune versions no live snapshot can see.  Writer-side (called
        under the writer lock); readers tolerate it because pruned lists
        are *replaced*, never mutated: a reader that already grabbed the
        old list keeps reading intact (if stale-for-others) records.
        """
        self._publishes_since_gc = 0
        if not self._dirty_since_gc:
            return
        horizon = self._min_live_version()
        dirty, self._dirty_since_gc = self._dirty_since_gc, set()
        for oid in dirty:
            chain = self._history.get(oid)
            if chain is None:
                continue
            live = [
                record
                for record in chain
                if record.died is None or record.died > horizon
            ]
            if not live:
                del self._history[oid]
                continue
            if len(live) != len(chain):
                self._history[oid] = live
            if any(record.died is not None for record in live):
                # Dead versions survive only because a pinned snapshot can
                # still see them: re-queue the oid so a later sweep (once
                # the horizon has advanced) reclaims them even if it is
                # never touched again.
                self._dirty_since_gc.add(oid)
        self._compact_members()

    def _compact_members(self) -> None:
        for class_name, dead in list(self._member_dead.items()):
            members = self._class_members.get(class_name)
            if not members or dead * _MEMBER_DEAD_FRACTION < len(members):
                continue
            alive = [oid for oid in members if oid in self._history]
            self._class_members[class_name] = alive
            self._member_index[class_name] = set(alive)
            self._member_dead[class_name] = 0
