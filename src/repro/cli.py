"""Command-line interface: run the Figure 3 workbench on specification files.

Usage::

    python -m repro report --local library.tm --remote bookseller.tm \\
        --spec integration.spec
    python -m repro validate --local library.tm --remote bookseller.tm \\
        --spec integration.spec
    python -m repro demo            # the built-in Figure 1 scenario

``validate`` exits non-zero when the specification is inconsistent with the
component constraints, so the workbench slots into CI pipelines.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.fixtures import (
    bookseller_store,
    cslibrary_store,
    library_integration_spec,
)
from repro.integration.report import render_report
from repro.integration.spec_parser import parse_specification
from repro.integration.workbench import IntegrationWorkbench
from repro.tm.parser import parse_database


def _load_result(args: argparse.Namespace):
    local_schema = parse_database(Path(args.local).read_text())
    remote_schema = parse_database(Path(args.remote).read_text())
    spec = parse_specification(
        Path(args.spec).read_text(), local_schema, remote_schema
    )
    return IntegrationWorkbench(
        spec, descriptivity_view=args.descriptivity_view
    ).run()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--local", required=True, help="local TM schema file")
    parser.add_argument("--remote", required=True, help="remote TM schema file")
    parser.add_argument("--spec", required=True, help="integration spec file")
    parser.add_argument(
        "--descriptivity-view",
        choices=("object", "value"),
        default="object",
        help="how to settle object-value conflicts (default: object)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Integrity-constraint-aware database interoperation "
        "(Vermeer & Apers, VLDB 1996)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser("report", help="print the full workbench report")
    _add_common(report)

    validate = commands.add_parser(
        "validate", help="exit 1 if the specification causes conflicts"
    )
    _add_common(validate)

    commands.add_parser("demo", help="run the built-in Figure 1 scenario")

    args = parser.parse_args(argv)

    if args.command == "demo":
        local_store, _ = cslibrary_store()
        remote_store, _ = bookseller_store()
        result = IntegrationWorkbench(
            library_integration_spec(), local_store, remote_store
        ).run()
        print(render_report(result))
        return 0

    result = _load_result(args)
    if args.command == "report":
        print(render_report(result))
        return 0
    # validate
    if result.is_consistent():
        print("specification is consistent with the component constraints")
        return 0
    print(render_report(result))
    print(
        f"INCONSISTENT: {result.conflict_count()} conflict(s); "
        f"{len(result.suggestions)} suggestion(s) available",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
