"""Command-line interface: run the Figure 3 workbench on specification files.

Usage::

    python -m repro scaffold DIR    # write the Figure 1 sources to DIR
    python -m repro report --local DIR/cslibrary.tm \\
        --remote DIR/bookseller.tm --spec DIR/library.spec
    python -m repro validate --local DIR/cslibrary.tm \\
        --remote DIR/bookseller.tm --spec DIR/library.spec
    python -m repro demo            # the built-in Figure 1 scenario
    python -m repro recover STOREDIR   # recover a durable store, audit it
    python -m repro snapshot STOREDIR  # checkpoint: snapshot + compact log

``validate`` exits non-zero when the specification is inconsistent with the
component constraints, so the workbench slots into CI pipelines.
``scaffold`` emits the paper's built-in schemas and integration
specification as editable files, giving ``report``/``validate`` something to
run on out of the box.  ``recover`` and ``snapshot`` operate on the durable
store directories of :meth:`repro.ObjectStore.open` (``snapshot.json`` +
``wal.jsonl``); ``recover`` exits non-zero when the recovered state violates
its constraints.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine.store import ObjectStore
from repro.errors import ReproError
from repro.fixtures import (
    bookseller_store,
    cslibrary_store,
    library_integration_spec,
)
from repro.integration.report import render_report
from repro.integration.spec_parser import parse_specification
from repro.integration.workbench import IntegrationWorkbench
from repro.tm.parser import parse_database


def _read(path: str, role: str) -> str:
    try:
        return Path(path).read_text()
    except OSError as exc:
        raise SystemExit(f"repro: cannot read {role} file {path!r}: {exc}")


def _load_result(args: argparse.Namespace):
    local_schema = parse_database(_read(args.local, "local schema"))
    remote_schema = parse_database(_read(args.remote, "remote schema"))
    spec = parse_specification(
        _read(args.spec, "spec"), local_schema, remote_schema
    )
    return IntegrationWorkbench(
        spec, descriptivity_view=args.descriptivity_view
    ).run()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--local", required=True, help="local TM schema file")
    parser.add_argument("--remote", required=True, help="remote TM schema file")
    parser.add_argument("--spec", required=True, help="integration spec file")
    parser.add_argument(
        "--descriptivity-view",
        choices=("object", "value"),
        default="object",
        help="how to settle object-value conflicts (default: object)",
    )


def _run_durable_command(args: argparse.Namespace) -> int:
    """``recover`` / ``snapshot`` over a durable store directory."""
    try:
        # verify=False: the point of `recover` is to *report* violations,
        # not to refuse stores whose history ran unenforced.
        store = ObjectStore.open(args.directory, verify=False)
    except ReproError as exc:
        raise SystemExit(f"repro: cannot open {args.directory!r}: {exc}")
    try:
        violations = store.check_all()
        by_class: dict[str, int] = {}
        for obj in store.objects():
            by_class[obj.class_name] = by_class.get(obj.class_name, 0) + 1
        extents = ", ".join(
            f"{name}: {count}" for name, count in sorted(by_class.items())
        )
        print(
            f"recovered {len(store)} object(s) from {args.directory} "
            f"({extents})" if extents else
            f"recovered 0 objects from {args.directory}"
        )
        if args.command == "snapshot":
            pending = store.wal.pending_records
            store.checkpoint()
            print(
                f"checkpointed: snapshot rewritten, {pending} log record(s) "
                "compacted away"
            )
        if violations:
            print(f"{len(violations)} constraint violation(s):", file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return 0 if args.command == "snapshot" else 1
        print("all constraints hold")
        return 0
    finally:
        store.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Integrity-constraint-aware database interoperation "
        "(Vermeer & Apers, VLDB 1996)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser("report", help="print the full workbench report")
    _add_common(report)

    validate = commands.add_parser(
        "validate", help="exit 1 if the specification causes conflicts"
    )
    _add_common(validate)

    commands.add_parser("demo", help="run the built-in Figure 1 scenario")

    scaffold = commands.add_parser(
        "scaffold",
        help="write the built-in Figure 1 schemas and spec to a directory",
    )
    scaffold.add_argument(
        "directory", help="target directory (created if missing)"
    )
    scaffold.add_argument(
        "--force",
        action="store_true",
        help="overwrite files that already exist in the target directory",
    )

    recover = commands.add_parser(
        "recover",
        help="recover a durable store (snapshot + write-ahead log) and "
        "audit its constraints",
    )
    recover.add_argument(
        "directory", help="durable store directory (snapshot.json + wal.jsonl)"
    )

    snapshot = commands.add_parser(
        "snapshot",
        help="checkpoint a durable store: write a fresh snapshot and "
        "compact its write-ahead log",
    )
    snapshot.add_argument(
        "directory", help="durable store directory (snapshot.json + wal.jsonl)"
    )

    args = parser.parse_args(argv)

    if args.command in ("recover", "snapshot"):
        return _run_durable_command(args)

    if args.command == "scaffold":
        from repro.fixtures.schemas import bookseller_source, cslibrary_source
        from repro.fixtures.spec_source import LIBRARY_SPEC_SOURCE

        target = Path(args.directory)
        written, skipped = [], []
        try:
            target.mkdir(parents=True, exist_ok=True)
            for name, text in (
                ("cslibrary.tm", cslibrary_source()),
                ("bookseller.tm", bookseller_source()),
                ("library.spec", LIBRARY_SPEC_SOURCE),
            ):
                path = target / name
                if path.exists() and not args.force:
                    skipped.append(str(path))
                    continue
                path.write_text(text.strip() + "\n")
                written.append(str(path))
        except OSError as exc:
            raise SystemExit(f"repro: cannot scaffold into {args.directory!r}: {exc}")
        if written:
            print("wrote " + ", ".join(written))
        if skipped:
            print(
                "kept existing " + ", ".join(skipped) + " (use --force to overwrite)"
            )
        paths = [str(target / n) for n in ("cslibrary.tm", "bookseller.tm", "library.spec")]
        print(
            f"try: python -m repro report --local {paths[0]} "
            f"--remote {paths[1]} --spec {paths[2]}"
        )
        return 0

    if args.command == "demo":
        local_store, _ = cslibrary_store()
        remote_store, _ = bookseller_store()
        result = IntegrationWorkbench(
            library_integration_spec(), local_store, remote_store
        ).run()
        print(render_report(result))
        return 0

    result = _load_result(args)
    if args.command == "report":
        print(render_report(result))
        return 0
    # validate
    if result.is_consistent():
        print("specification is consistent with the component constraints")
        return 0
    print(render_report(result))
    print(
        f"INCONSISTENT: {result.conflict_count()} conflict(s); "
        f"{len(result.suggestions)} suggestion(s) available",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
