"""Command-line interface: run the Figure 3 workbench on specification files.

Usage::

    python -m repro scaffold DIR    # write the Figure 1 sources to DIR
    python -m repro report --local DIR/cslibrary.tm \\
        --remote DIR/bookseller.tm --spec DIR/library.spec
    python -m repro validate --local DIR/cslibrary.tm \\
        --remote DIR/bookseller.tm --spec DIR/library.spec
    python -m repro demo            # the built-in Figure 1 scenario
    python -m repro recover STOREDIR   # recover a durable store, audit it
    python -m repro snapshot STOREDIR  # checkpoint: snapshot + compact log
    python -m repro fsck STOREDIR      # read-only scrub: frames, digests, replay
    python -m repro stress --writers 2 --readers 4 --seconds 2
    python -m repro explain STOREDIR   # minimal conflict cores for violations
    python -m repro explain --demo     # cores for every violation class
    python -m repro lint DIR/cslibrary.tm DIR/bookseller.tm

``validate`` exits non-zero when the specification is inconsistent with the
component constraints, so the workbench slots into CI pipelines.
``scaffold`` emits the paper's built-in schemas and integration
specification as editable files, giving ``report``/``validate`` something to
run on out of the box.  ``recover`` and ``snapshot`` operate on the durable
store directories of :meth:`repro.ObjectStore.open` (``snapshot.json`` +
``wal.jsonl``); ``recover`` exits non-zero when the recovered state violates
its constraints, and warns (non-zero under ``--strict``) when the log tail
carries schema-change records newer than the snapshot's schema digest.
``fsck`` scrubs a durable directory *without* opening it for writing —
CRC-checking every log frame, verifying the snapshot digests (newest and
retained fallback), and replay-certifying the recoverable committed
prefix — and exits 0 (clean), 1 (damaged but a committed prefix is
recoverable by reopening) or 2 (no committed prefix survives).
``stress`` exercises the store under concurrent load: writer threads
committing transactions against one shared store while reader threads
consume lock-free snapshots — with ``--dir``/``--sync`` the committers
additionally demonstrate group commit (one fsync covering a batch of
concurrent durable commits).
``explain`` audits a durable store and prints a subset-minimal conflict
core for every violation found — which objects, exactly, conflict with
which constraint, with the binding chain that convicts each member
(``--demo`` runs the same machinery on an in-memory store violating one
constraint of every class: object, key, aggregate, referential).
``lint`` statically analyses TM schema files *before any data exists*:
type/well-formedness lint with file positions, per-constraint
satisfiability (always-violated and tautological constraints), and
cross-constraint contradiction/redundancy detection.  It exits 0 when
clean, 1 on warnings only, 2 on errors — info-level diagnostics (honest
"unknown" reports) never affect the exit code.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine.store import ObjectStore
from repro.errors import ReproError
from repro.fixtures import (
    bookseller_store,
    cslibrary_store,
    library_integration_spec,
)
from repro.integration.report import render_report
from repro.integration.spec_parser import parse_specification
from repro.integration.workbench import IntegrationWorkbench
from repro.tm.parser import parse_database


def _read(path: str, role: str) -> str:
    try:
        return Path(path).read_text()
    except OSError as exc:
        raise SystemExit(
            f"repro: cannot read {role} file {path!r}: {exc}"
        ) from exc


def _load_result(args: argparse.Namespace):
    local_schema = parse_database(_read(args.local, "local schema"))
    remote_schema = parse_database(_read(args.remote, "remote schema"))
    spec = parse_specification(
        _read(args.spec, "spec"), local_schema, remote_schema
    )
    return IntegrationWorkbench(
        spec, descriptivity_view=args.descriptivity_view
    ).run()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--local", required=True, help="local TM schema file")
    parser.add_argument("--remote", required=True, help="remote TM schema file")
    parser.add_argument("--spec", required=True, help="integration spec file")
    parser.add_argument(
        "--descriptivity-view",
        choices=("object", "value"),
        default="object",
        help="how to settle object-value conflicts (default: object)",
    )


def _run_durable_command(args: argparse.Namespace) -> int:
    """``recover`` / ``snapshot`` over a durable store directory."""
    try:
        # verify=False: the point of `recover` is to *report* violations,
        # not to refuse stores whose history ran unenforced.
        store = ObjectStore.open(args.directory, verify=False)
    except ReproError as exc:
        raise SystemExit(
            f"repro: cannot open {args.directory!r}: {exc}"
        ) from exc
    try:
        drifted = False
        info = store.recovery_info
        if info is not None and info.used_fallback_snapshot:
            reason = info.snapshot_error or "newest snapshot missing"
            print(
                f"warning: recovered from the retained previous snapshot "
                f"({reason}); run `repro snapshot` to write a fresh one",
                file=sys.stderr,
            )
            if info.lsn_gap:
                print(
                    "warning: the log was reset for a checkpoint newer than "
                    "the fallback snapshot — its records were dropped, and "
                    "the store holds the fallback checkpoint's committed "
                    "state",
                    file=sys.stderr,
                )
        if info is not None and info.schema_drift:
            drifted = args.command == "recover"
            print(
                f"warning: the log tail carries {info.schema_changes} "
                "schema-change record(s) newer than the snapshot's schema "
                "digest — the snapshot no longer describes the running "
                "schema; run `repro snapshot` to fold the changes in",
                file=sys.stderr,
            )
        violations = store.check_all()
        by_class: dict[str, int] = {}
        for obj in store.objects():
            by_class[obj.class_name] = by_class.get(obj.class_name, 0) + 1
        extents = ", ".join(
            f"{name}: {count}" for name, count in sorted(by_class.items())
        )
        print(
            f"recovered {len(store)} object(s) from {args.directory} "
            f"({extents})" if extents else
            f"recovered 0 objects from {args.directory}"
        )
        if args.command == "snapshot":
            pending = store.wal.pending_records
            store.checkpoint()
            print(
                f"checkpointed: snapshot rewritten, {pending} log record(s) "
                "compacted away"
            )
        if violations:
            print(f"{len(violations)} constraint violation(s):", file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return 0 if args.command == "snapshot" else 1
        print("all constraints hold")
        return 1 if (drifted and getattr(args, "strict", False)) else 0
    finally:
        store.close()


def _scrub_directory(directory: str, deep: bool) -> int:
    """Scrub one durable store directory; print the report, return the
    severity (0 clean, 1 truncatable, 2 unrecoverable)."""
    from repro.engine.wal import fsck

    report = fsck(directory)
    print(
        f"{report.path}: {report.status} — {report.frames_valid} intact log "
        f"frame(s); certified prefix holds {report.objects} object(s) "
        f"({report.replayed} op(s) replayed, {report.discarded} discarded, "
        f"{report.tail_bytes} log byte(s) beyond it)"
    )
    for finding in report.findings:
        print(f"  {finding}", file=sys.stderr)
    if deep and report.status != "fatal":
        # --deep actually *opens* the store and audits its constraints.
        # Unlike the scrub passes this repairs on the way in (tail
        # truncation, snapshot-rotation repair), exactly like any reopen.
        try:
            store = ObjectStore.open(directory, verify=False)
        except ReproError as exc:
            print(f"deep audit: cannot open: {exc}", file=sys.stderr)
            return 2
        try:
            violations = store.check_all()
        finally:
            store.close()
        if violations:
            print(
                f"deep audit: {len(violations)} constraint violation(s):",
                file=sys.stderr,
            )
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return max(report.exit_code, 1)
        print("deep audit: all constraints hold")
    return report.exit_code


def _run_fsck(args: argparse.Namespace) -> int:
    """``fsck``: read-only scrub of a durable store directory — or, with
    ``--all``, of every shard directory under a sharded store root."""
    from pathlib import Path

    if not args.all:
        return _scrub_directory(args.directory, args.deep)

    from repro.engine.sharding import MANIFEST_NAME, ShardedStore, shard_directory

    root = Path(args.directory)
    manifest_path = root / MANIFEST_NAME
    if manifest_path.exists():
        try:
            import json

            shard_count = int(
                json.loads(manifest_path.read_text("utf-8"))["shards"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            print(
                f"{manifest_path}: unreadable shard manifest: {exc}",
                file=sys.stderr,
            )
            return 2
        directories = [shard_directory(root, shard) for shard in range(shard_count)]
    else:
        # No manifest: scrub whatever shard directories are on disk.
        directories = sorted(
            entry for entry in root.glob("shard-*") if entry.is_dir()
        )
    if not directories:
        print(f"{root}: no shard directories to scrub", file=sys.stderr)
        return 2
    # Per-shard deep audits would resolve in-doubt two-phase brackets
    # without the other shards' decide records, so the scrub stays
    # per-directory and the deep audit (if asked) opens the store whole.
    worst = max(
        _scrub_directory(str(directory), deep=False)
        for directory in directories
    )
    if args.deep and worst < 2:
        try:
            store = ShardedStore.open(root, verify=False)
        except ReproError as exc:
            print(f"deep audit: cannot open: {exc}", file=sys.stderr)
            return 2
        try:
            violations = store.check_all()
        finally:
            store.close()
        if violations:
            print(
                f"deep audit: {len(violations)} constraint violation(s):",
                file=sys.stderr,
            )
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return max(worst, 1)
        print("deep audit: all constraints hold")
    return worst


def _explain_demo_stores() -> "list[ObjectStore]":
    """In-memory stores violating one constraint of every class the
    evaluator distinguishes: object (``oc1``), membership (``oc2``), key
    (``cc1``), aggregate (``cc2``) and the quantified referential database
    constraint (``db1``)."""
    from repro.fixtures import bookseller_schema, cslibrary_schema

    library = ObjectStore(cslibrary_schema(), enforce=False)
    common = dict(publisher="ACM", shopprice=50.0, ourprice=40.0)
    library.insert("Publication", title="Duplicate A", isbn="X", **common)
    library.insert("Publication", title="Duplicate B", isbn="X", **common)
    library.insert(  # oc1: ourprice <= shopprice
        "Publication", title="Overpriced", isbn="Y",
        publisher="ACM", shopprice=50.0, ourprice=60.0,
    )
    library.insert(  # oc2: publisher in KNOWNPUBLISHERS
        "Publication", title="Obscure", isbn="Z",
        publisher="Nobody Press", shopprice=50.0, ourprice=40.0,
    )
    library.insert(  # cc2: sum over ourprice < MAX (MAX = 100000)
        "Publication", title="Priceless", isbn="W",
        publisher="ACM", shopprice=99999.0, ourprice=99999.0,
    )

    seller = ObjectStore(bookseller_schema(), enforce=False)
    referenced = seller.insert("Publisher", name="Referenced", location="NY")
    seller.insert("Publisher", name="Ghost", location="Nowhere")  # db1
    seller.insert(
        "Item", title="Book", isbn="1", publisher=referenced,
        authors=frozenset({"a"}), shopprice=50.0, libprice=45.0,
    )
    return [library, seller]


def _run_explain(args: argparse.Namespace) -> int:
    """``explain``: subset-minimal conflict cores for a store's violations."""
    if args.demo:
        stores = _explain_demo_stores()
    else:
        if not args.directory:
            raise SystemExit("repro: explain needs a store directory (or --demo)")
        try:
            store = ObjectStore.open(args.directory, verify=False)
        except ReproError as exc:
            raise SystemExit(
                f"repro: cannot open {args.directory!r}: {exc}"
            ) from exc
        stores = [store]
    try:
        total_violations = 0
        total_cores = 0
        for store in stores:
            violations = store.audit()
            if not violations:
                continue
            total_violations += len(violations)
            cores = store.explain_violations(violations)
            total_cores += len(cores)
            print(
                f"{store.schema.name}: {len(violations)} violation(s), "
                f"{len(cores)} conflict core(s)"
            )
            for index, core in enumerate(cores, start=1):
                print(f"\ncore {index} — ", end="")
                print(core.describe())
                if args.trace and core.trace is not None:
                    print("  isolated-check trace:")
                    for line in core.trace.describe().splitlines():
                        print(f"    {line}")
        if total_violations == 0:
            print("all constraints hold — nothing to explain")
            return 0
        print(
            f"\n{total_violations} violation(s) explained by "
            f"{total_cores} subset-minimal conflict core(s); removing any "
            "one member of a core resolves that core's conflict"
        )
        return 1
    finally:
        for store in stores:
            store.close()


def _run_lint(args: argparse.Namespace) -> int:
    """``lint``: static analysis of TM schema files (exit 0/1/2)."""
    import json

    from repro.constraints.analysis import AnalysisReport, analyze_schema, summarize

    reports: dict[str, AnalysisReport] = {}
    for path in args.files:
        source = _read(path, "schema")
        try:
            schema = parse_database(source)
        except ReproError as exc:
            raise SystemExit(f"repro: cannot parse {path!r}: {exc}") from exc
        reports[path] = analyze_schema(schema, include_info=not args.no_info)
    if args.format == "json":
        print(json.dumps(summarize(reports), indent=2, sort_keys=True))
    else:
        for index, (path, report) in enumerate(reports.items()):
            if index:
                print()
            print(f"== {path} ==")
            print(report.render_text())
    return max((report.exit_code() for report in reports.values()), default=0)


def _stress_shard_source(classes: int) -> str:
    """A TM schema of ``classes`` reference-free classes, one per shard:
    the placement planner pins ``S<i>`` to shard ``i``, so single-object
    commits are shard-local and multi-class transactions exercise the
    two-phase bracket."""
    parts = ["Database StressShards\n"]
    for index in range(classes):
        parts.append(
            f"\nClass S{index}\n"
            "attributes\n"
            "  name      : string\n"
            "  shopprice : real\n"
            "  ourprice  : real\n"
            "object constraints\n"
            f"  oc{index}: ourprice <= shopprice\n"
            "class constraints\n"
            f"  cc{index}: key name\n"
            f"end S{index}\n"
        )
    return "".join(parts)


def _run_sharded_stress(args: argparse.Namespace) -> int:
    """``stress --shards N``: the sharded variant — writers hammer a
    :class:`~repro.engine.sharding.ShardedStore` with shard-local commits
    plus periodic cross-shard (two-phase) transactions, readers scan
    per-core snapshots, and the run reports the router's op counters and
    each shard's group-commit telemetry."""
    import threading
    import time

    from repro.engine import ShardedStore
    from repro.tm import parse_database

    shards = args.shards
    schema = parse_database(_stress_shard_source(shards))
    if args.dir:
        try:
            store = ShardedStore.open(args.dir, sync=args.sync)
        except ReproError:
            try:
                store = ShardedStore.open(
                    args.dir, schema, shards, sync=args.sync
                )
            except ReproError as exc:
                raise SystemExit(
                    f"repro: cannot open stress store at {args.dir!r}: {exc}"
                ) from exc
    else:
        if args.sync:
            raise SystemExit("repro: --sync requires --dir (a durable store)")
        store = ShardedStore(schema, shards)
    try:
        existing = len(store)
        for index in range(existing, args.objects):
            store.insert(
                f"S{index % shards}",
                name=f"Obj {index}",
                shopprice=50.0,
                ourprice=45.0,
            )
    except ReproError as exc:
        store.close()
        raise SystemExit(
            f"repro: cannot populate the stress store: {exc}"
        ) from exc
    # The merged object table orders by insertion counter then shard, so
    # adjacent targets live on different shards — the cross-shard step
    # below pairs neighbours to guarantee a two-phase bracket.
    targets = [obj.oid for obj in store.objects()]
    if not targets:
        store.close()
        raise SystemExit("repro: --objects must be at least 1")

    stop = threading.Event()
    commits = [0] * args.writers
    reads = [0] * args.readers
    failures: list[BaseException] = []

    def writer(slot: int) -> None:
        step = 0
        try:
            while not stop.is_set():
                index = (slot + step * args.writers) % len(targets)
                price = 40.0 + (step % 10)  # stays under shopprice (50.0)
                if shards > 1 and step % 16 == 15 and len(targets) > 1:
                    neighbour = targets[(index + 1) % len(targets)]
                    with store.transaction():
                        store.update(targets[index], ourprice=price)
                        store.update(neighbour, ourprice=price)
                else:
                    store.update(targets[index], ourprice=price)
                commits[slot] += 1
                step += 1
        except BaseException as exc:  # surface, don't swallow
            failures.append(exc)

    def reader(slot: int) -> None:
        try:
            while not stop.is_set():
                total = 0.0
                for snapshot in store.snapshots():
                    with snapshot as snap:
                        for index in range(shards):
                            for obj in snap.extent(f"S{index}"):
                                total += obj.state["ourprice"]
                assert total >= 0.0
                reads[slot] += 1
        except BaseException as exc:
            failures.append(exc)

    threads = [
        threading.Thread(target=writer, args=(slot,), daemon=True)
        for slot in range(args.writers)
    ] + [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(args.readers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(args.seconds)
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    elapsed = time.perf_counter() - started

    total_commits = sum(commits)
    total_reads = sum(reads)
    print(
        f"{args.writers} writer(s) committed {total_commits} operation(s) "
        f"({total_commits / elapsed:.0f}/s), {args.readers} reader(s) took "
        f"{total_reads} snapshot scan(s) ({total_reads / elapsed:.0f}/s) "
        f"over {len(store)} object(s) across {shards} shard(s) "
        f"in {elapsed:.2f}s"
    )
    print(
        f"router: {store.fast_path_ops} fast-path op(s), "
        f"{store.routed_global_ops} routed op(s), "
        f"{store.two_phase_commits} two-phase commit(s)"
    )
    for row in store.shard_stats():
        line = f"shard {row['shard']}: {row['objects']} object(s)"
        if "fsyncs" in row:
            line += (
                f", {row['fsyncs']} fsync(s) for {row['sync_commits']} "
                f"durable commit(s) — {row['fsyncs_per_commit']:.3f} "
                f"fsyncs/commit, mean batch {row['mean_batch']:.2f}"
            )
        print(line)
    for exc in failures:
        print(f"thread failed: {exc!r}", file=sys.stderr)
    violations = store.check_all()
    for violation in violations:
        print(f"  {violation}", file=sys.stderr)
    store.close()
    if failures or violations:
        return 1
    print("all constraints hold")
    return 0


def _run_stress(args: argparse.Namespace) -> int:
    """``stress``: hammer one shared store with writer threads (serialized
    by the coarse writer lock) and reader threads (lock-free snapshots),
    then audit the result."""
    import threading
    import time

    from repro.fixtures import cslibrary_schema

    if args.shards is not None:
        if args.shards < 1:
            raise SystemExit("repro: --shards must be at least 1")
        return _run_sharded_stress(args)

    schema = cslibrary_schema()
    schema.set_constant("MAX", 10**15)  # keep the sum constraint satisfiable
    if args.dir:
        # Re-running against the same directory recovers the previous
        # population (the snapshot carries the schema) instead of
        # colliding with it on the isbn key constraint.
        try:
            store = ObjectStore.open(args.dir, sync=args.sync)
        except ReproError:
            try:
                store = ObjectStore.open(args.dir, schema, sync=args.sync)
            except ReproError as exc:
                raise SystemExit(
                    f"repro: cannot open stress store at {args.dir!r}: {exc}"
                ) from exc
    else:
        if args.sync:
            raise SystemExit("repro: --sync requires --dir (a durable store)")
        store = ObjectStore(schema, wal=False)
    try:
        existing = len(store.extent("Publication"))
        for index in range(existing, args.objects):
            store.insert(
                "Publication",
                title=f"Book {index}",
                isbn=f"ISBN-{index}",
                publisher="ACM",
                shopprice=50.0,
                ourprice=45.0,
            )
    except ReproError as exc:
        store.close()
        raise SystemExit(
            f"repro: cannot populate the stress store: {exc}"
        ) from exc
    targets = [obj.oid for obj in store.extent("Publication")]
    if not targets:
        store.close()
        raise SystemExit("repro: --objects must be at least 1")

    stop = threading.Event()
    commits = [0] * args.writers
    reads = [0] * args.readers
    failures: list[BaseException] = []

    def writer(slot: int) -> None:
        step = 0
        try:
            while not stop.is_set():
                oid = targets[(slot + step * args.writers) % len(targets)]
                # Stays under oc1 (ourprice <= shopprice, 50.0).
                with store.transaction():
                    store.update(oid, ourprice=40.0 + (step % 10))
                commits[slot] += 1
                step += 1
        except BaseException as exc:  # surface, don't swallow
            failures.append(exc)

    def reader(slot: int) -> None:
        try:
            while not stop.is_set():
                with store.snapshot() as snap:
                    total = 0.0
                    for obj in snap.extent("Publication"):
                        total += obj.state["ourprice"]
                    assert total >= 0.0
                reads[slot] += 1
        except BaseException as exc:
            failures.append(exc)

    threads = [
        threading.Thread(target=writer, args=(slot,), daemon=True)
        for slot in range(args.writers)
    ] + [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(args.readers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(args.seconds)
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    elapsed = time.perf_counter() - started

    total_commits = sum(commits)
    total_reads = sum(reads)
    print(
        f"{args.writers} writer(s) committed {total_commits} transaction(s) "
        f"({total_commits / elapsed:.0f}/s), {args.readers} reader(s) took "
        f"{total_reads} snapshot scan(s) ({total_reads / elapsed:.0f}/s) "
        f"over {len(store)} object(s) in {elapsed:.2f}s"
    )
    if store.wal is not None and store.wal.sync_commits:
        wal = store.wal
        print(
            f"group commit: {wal.fsyncs} fsync(s) for {wal.sync_commits} "
            f"durable commit(s) — {wal.fsyncs / wal.sync_commits:.3f} "
            "fsyncs/commit"
        )
    for exc in failures:
        print(f"thread failed: {exc!r}", file=sys.stderr)
    violations = store.check_all()
    for violation in violations:
        print(f"  {violation}", file=sys.stderr)
    store.close()
    if failures or violations:
        return 1
    print("all constraints hold")
    return 0


def _run_serve(args) -> int:
    """``repro serve``: the asyncio multi-tenant server, in the foreground.

    SIGINT/SIGTERM (or ``--seconds``) trigger the clean shutdown path:
    connections drained, open transactions rolled back, every tenant store
    checkpointed and closed.
    """
    import asyncio
    import contextlib
    import signal

    from repro.server import ReproServer, ServerConfig

    if args.sync and not args.root:
        print("repro serve: --sync requires --root", file=sys.stderr)
        return 2

    config = ServerConfig(
        host=args.host,
        port=args.port,
        root=args.root,
        sync=args.sync,
        max_connections=args.max_connections,
        max_inflight=args.max_inflight,
        idle_timeout=args.idle_timeout,
    )

    async def run() -> int:
        server = ReproServer(config)
        host, port = await server.start()
        where = (
            f"durable tenants under {args.root}"
            if args.root
            else "in-memory tenants"
        )
        print(f"repro server listening on {host}:{port} ({where})")
        if args.port_file:
            Path(args.port_file).write_text(f"{port}\n")
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, server.request_stop)
        if args.seconds is not None:
            loop.call_later(args.seconds, server.request_stop)
        await server.serve_forever()
        print("repro server: clean shutdown (tenant stores checkpointed)")
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # fallback when signal handlers can't install
        return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Integrity-constraint-aware database interoperation "
        "(Vermeer & Apers, VLDB 1996)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser("report", help="print the full workbench report")
    _add_common(report)

    validate = commands.add_parser(
        "validate", help="exit 1 if the specification causes conflicts"
    )
    _add_common(validate)

    commands.add_parser("demo", help="run the built-in Figure 1 scenario")

    scaffold = commands.add_parser(
        "scaffold",
        help="write the built-in Figure 1 schemas and spec to a directory",
    )
    scaffold.add_argument(
        "directory", help="target directory (created if missing)"
    )
    scaffold.add_argument(
        "--force",
        action="store_true",
        help="overwrite files that already exist in the target directory",
    )

    recover = commands.add_parser(
        "recover",
        help="recover a durable store (snapshot + write-ahead log) and "
        "audit its constraints",
    )
    recover.add_argument(
        "directory", help="durable store directory (snapshot.json + wal.jsonl)"
    )
    recover.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when the log tail carries schema-change "
        "records newer than the snapshot (schema drift)",
    )

    snapshot = commands.add_parser(
        "snapshot",
        help="checkpoint a durable store: write a fresh snapshot and "
        "compact its write-ahead log",
    )
    snapshot.add_argument(
        "directory", help="durable store directory (snapshot.json + wal.jsonl)"
    )

    fsck = commands.add_parser(
        "fsck",
        help="scrub a durable store without opening it for writing: CRC "
        "frames, snapshot digests, replay certification (exit 0 clean, "
        "1 truncatable damage, 2 unrecoverable)",
    )
    fsck.add_argument(
        "directory", help="durable store directory (snapshot.json + wal.jsonl)"
    )
    fsck.add_argument(
        "--deep",
        action="store_true",
        help="additionally open the recoverable prefix and audit its "
        "constraints (repairs the directory on the way in, like any reopen)",
    )
    fsck.add_argument(
        "--all",
        action="store_true",
        help="treat DIRECTORY as a sharded store root: scrub every shard "
        "directory and exit with the worst severity (with --deep, the "
        "audit opens the store whole so in-doubt two-phase brackets "
        "resolve against every shard's log)",
    )

    explain = commands.add_parser(
        "explain",
        help="audit a durable store and print a subset-minimal conflict "
        "core for every violation (which objects force it, and why)",
    )
    explain.add_argument(
        "directory", nargs="?", default=None,
        help="durable store directory (snapshot.json + wal.jsonl)",
    )
    explain.add_argument(
        "--demo", action="store_true",
        help="explain an in-memory store violating one constraint of "
        "every class (object, key, aggregate, referential)",
    )
    explain.add_argument(
        "--trace", action="store_true",
        help="also print the reason trace of each isolated core check",
    )

    lint = commands.add_parser(
        "lint",
        help="statically analyse TM schema files: type lint with file "
        "positions, per-constraint satisfiability, cross-constraint "
        "contradiction and redundancy detection (exit 0 clean, 1 "
        "warnings, 2 errors)",
    )
    lint.add_argument(
        "files", nargs="+", metavar="FILE", help="TM schema file(s) to analyse"
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--no-info", action="store_true",
        help="suppress info-level diagnostics (tautologies, honest unknowns)",
    )

    stress = commands.add_parser(
        "stress",
        help="hammer one store with concurrent writer and snapshot-reader "
        "threads, then audit it",
    )
    stress.add_argument(
        "--writers", type=int, default=2, help="writer threads (default 2)"
    )
    stress.add_argument(
        "--readers", type=int, default=4,
        help="snapshot-reader threads (default 4)",
    )
    stress.add_argument(
        "--seconds", type=float, default=2.0,
        help="how long to run (default 2)",
    )
    stress.add_argument(
        "--objects", type=int, default=1_000,
        help="store population (default 1000)",
    )
    stress.add_argument(
        "--dir", default=None,
        help="durable store directory (default: in-memory)",
    )
    stress.add_argument(
        "--sync", action="store_true",
        help="fsync at commit points (group commit; requires --dir)",
    )
    stress.add_argument(
        "--shards", type=int, default=None,
        help="run against a ShardedStore with this many shard cores: "
        "shard-local commits plus periodic cross-shard (two-phase) "
        "transactions, with per-shard group-commit stats",
    )

    serve = commands.add_parser(
        "serve",
        help="serve stores over TCP: a multi-tenant asyncio server "
        "speaking the repro wire protocol (connect with repro.client)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=7707,
        help="bind port; 0 picks an ephemeral one (default 7707)",
    )
    serve.add_argument(
        "--root", default=None,
        help="directory for durable tenant stores under ROOT/<tenant>/ "
        "(default: tenants are in-memory)",
    )
    serve.add_argument(
        "--sync", action="store_true",
        help="fsync every commit instead of group commit (requires --root)",
    )
    serve.add_argument(
        "--max-connections", type=int, default=64,
        help="admission limit; surplus connections get a retryable "
        "rejection frame (default 64)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=32,
        help="concurrently executing store operations across all "
        "connections; 0 disables the cap (default 32)",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=300.0,
        help="checkpoint and close tenant stores unleased for this many "
        "seconds; 0 disables eviction (default 300)",
    )
    serve.add_argument(
        "--port-file", default=None,
        help="write the bound port to this file once listening (for "
        "scripts wrapping --port 0)",
    )
    serve.add_argument(
        "--seconds", type=float, default=None,
        help="serve for this long, then shut down cleanly (default: "
        "until SIGINT/SIGTERM)",
    )

    args = parser.parse_args(argv)

    if args.command == "serve":
        return _run_serve(args)

    if args.command in ("recover", "snapshot"):
        return _run_durable_command(args)

    if args.command == "fsck":
        return _run_fsck(args)

    if args.command == "explain":
        return _run_explain(args)

    if args.command == "lint":
        return _run_lint(args)

    if args.command == "stress":
        return _run_stress(args)

    if args.command == "scaffold":
        from repro.fixtures.schemas import bookseller_source, cslibrary_source
        from repro.fixtures.spec_source import LIBRARY_SPEC_SOURCE

        target = Path(args.directory)
        written, skipped = [], []
        try:
            target.mkdir(parents=True, exist_ok=True)
            for name, text in (
                ("cslibrary.tm", cslibrary_source()),
                ("bookseller.tm", bookseller_source()),
                ("library.spec", LIBRARY_SPEC_SOURCE),
            ):
                path = target / name
                if path.exists() and not args.force:
                    skipped.append(str(path))
                    continue
                path.write_text(text.strip() + "\n")
                written.append(str(path))
        except OSError as exc:
            raise SystemExit(
                f"repro: cannot scaffold into {args.directory!r}: {exc}"
            ) from exc
        if written:
            print("wrote " + ", ".join(written))
        if skipped:
            print(
                "kept existing " + ", ".join(skipped) + " (use --force to overwrite)"
            )
        paths = [str(target / n) for n in ("cslibrary.tm", "bookseller.tm", "library.spec")]
        print(
            f"try: python -m repro report --local {paths[0]} "
            f"--remote {paths[1]} --spec {paths[2]}"
        )
        return 0

    if args.command == "demo":
        local_store, _ = cslibrary_store()
        remote_store, _ = bookseller_store()
        result = IntegrationWorkbench(
            library_integration_spec(), local_store, remote_store
        ).run()
        print(render_report(result))
        return 0

    result = _load_result(args)
    if args.command == "report":
        print(render_report(result))
        return 0
    # validate
    if result.is_consistent():
        print("specification is consistent with the component constraints")
        return 0
    print(render_report(result))
    print(
        f"INCONSISTENT: {result.conflict_count()} conflict(s); "
        f"{len(result.suggestions)} suggestion(s) available",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
