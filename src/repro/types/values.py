"""Value validation and coercion against TM types."""

from __future__ import annotations

from typing import Any

from repro.errors import TypeSystemError
from repro.types.primitives import (
    BoolType,
    ClassRef,
    EnumType,
    IntType,
    RangeType,
    RealType,
    SetType,
    StringType,
    Type,
)


def check_value(value: Any, tm_type: Type, context: str = "") -> None:
    """Raise :class:`TypeSystemError` unless ``value`` belongs to ``tm_type``.

    ``context`` is prepended to the error message so that engine-level checks
    can report which attribute of which class was at fault.
    """
    if not tm_type.contains(value):
        prefix = f"{context}: " if context else ""
        raise TypeSystemError(
            f"{prefix}value {value!r} is not a member of type {tm_type.describe()}"
        )


def coerce_value(value: Any, tm_type: Type) -> Any:
    """Coerce ``value`` into ``tm_type`` where a safe coercion exists.

    Safe coercions: ``int`` → real type, ``list``/``tuple`` → set for set
    types, numeric strings are *not* coerced (the paper's conversion functions
    handle representation differences explicitly).  Raises
    :class:`TypeSystemError` if the value cannot be made to fit.
    """
    if tm_type.contains(value):
        return value
    if isinstance(tm_type, RealType) and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if isinstance(tm_type, SetType) and isinstance(value, (list, tuple)):
        coerced = frozenset(coerce_value(member, tm_type.element) for member in value)
        return coerced
    raise TypeSystemError(f"cannot coerce {value!r} to type {tm_type.describe()}")


def default_value(tm_type: Type) -> Any:
    """A representative member of ``tm_type``, used by test data generators."""
    if isinstance(tm_type, (IntType,)):
        return 0
    if isinstance(tm_type, RealType):
        return 0.0
    if isinstance(tm_type, StringType):
        return ""
    if isinstance(tm_type, BoolType):
        return False
    if isinstance(tm_type, RangeType):
        return tm_type.low
    if isinstance(tm_type, SetType):
        return frozenset()
    if isinstance(tm_type, EnumType):
        return next(iter(sorted(tm_type.values, key=repr)))
    if isinstance(tm_type, ClassRef):
        return f"{tm_type.class_name}#0"
    raise TypeSystemError(f"no default value for {tm_type.describe()}")
