"""TM-style type system.

The paper's example databases (Figure 1) use the type language of the TM
specification language [BBZ93]: primitive types (``string``, ``int``, ``real``,
``bool``), integer range types (``1..5``), power-set types (``P string``) and
references to other classes (``publisher : Publisher``).  Named constants such
as ``KNOWNPUBLISHERS`` and ``MAX`` are declared alongside the schema.

This package models that fragment.  Types know how to validate values
(:meth:`Type.contains`) and how to describe themselves as an abstract value
set for the symbolic solver (see :mod:`repro.domains.typed`).
"""

from repro.types.primitives import (
    BoolType,
    ClassRef,
    EnumType,
    IntType,
    RangeType,
    RealType,
    SetType,
    StringType,
    Type,
    BOOL,
    INT,
    REAL,
    STRING,
    parse_type,
)
from repro.types.values import check_value, coerce_value, default_value

__all__ = [
    "Type",
    "IntType",
    "RealType",
    "StringType",
    "BoolType",
    "RangeType",
    "SetType",
    "EnumType",
    "ClassRef",
    "INT",
    "REAL",
    "STRING",
    "BOOL",
    "parse_type",
    "check_value",
    "coerce_value",
    "default_value",
]
