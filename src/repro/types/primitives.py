"""Type objects for the TM fragment used in the paper.

Each type is an immutable value object.  Equality is structural, so two
independently constructed ``RangeType(1, 5)`` instances compare equal; this is
relied on throughout conformation, where attribute types from different
databases are compared and converted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import TypeSystemError


class Type:
    """Base class for all TM types.

    Subclasses are frozen dataclasses; instances are hashable and can be used
    as dictionary keys (the conformation phase indexes conversion functions by
    source/target type).
    """

    def contains(self, value: Any) -> bool:
        """Return ``True`` iff ``value`` is a member of this type's domain."""
        raise NotImplementedError

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type support ordered arithmetic."""
        return False

    @property
    def is_integral(self) -> bool:
        """Whether the type's values are integers (enables bound tightening)."""
        return False

    def describe(self) -> str:
        """Human-readable TM-syntax rendering of the type (``'1..5'`` etc.)."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - trivial delegation
        return self.describe()


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class IntType(Type):
    """The unbounded integer type (``int``)."""

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    @property
    def is_numeric(self) -> bool:
        return True

    @property
    def is_integral(self) -> bool:
        return True

    def describe(self) -> str:
        return "int"


@dataclass(frozen=True)
class RealType(Type):
    """The real-number type (``real``).  Integers are accepted as reals."""

    def contains(self, value: Any) -> bool:
        return _is_number(value)

    @property
    def is_numeric(self) -> bool:
        return True

    def describe(self) -> str:
        return "real"


@dataclass(frozen=True)
class StringType(Type):
    """The string type (``string``)."""

    def contains(self, value: Any) -> bool:
        return isinstance(value, str)

    def describe(self) -> str:
        return "string"


@dataclass(frozen=True)
class BoolType(Type):
    """The boolean type (``boolean`` — used for ``ref?`` in Figure 1)."""

    def contains(self, value: Any) -> bool:
        return isinstance(value, bool)

    def describe(self) -> str:
        return "boolean"


@dataclass(frozen=True)
class RangeType(Type):
    """A bounded integer range such as ``1..5`` (ratings in Figure 1).

    Both bounds are inclusive, matching TM's ``lo..hi`` notation.
    """

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise TypeSystemError(f"empty range type {self.low}..{self.high}")

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and self.low <= value <= self.high
        )

    @property
    def is_numeric(self) -> bool:
        return True

    @property
    def is_integral(self) -> bool:
        return True

    def describe(self) -> str:
        return f"{self.low}..{self.high}"


@dataclass(frozen=True)
class SetType(Type):
    """A power-set type ``P T`` (e.g. ``P string`` for ``editors``).

    Values are Python ``frozenset``/``set`` instances whose members all belong
    to the element type.
    """

    element: Type

    def contains(self, value: Any) -> bool:
        if not isinstance(value, (set, frozenset)):
            return False
        return all(self.element.contains(member) for member in value)

    def describe(self) -> str:
        return f"P {self.element.describe()}"


@dataclass(frozen=True)
class EnumType(Type):
    """A finite enumeration of atomic values.

    Not part of the Figure 1 surface syntax, but produced by the
    reverse-engineering substrate for SQL ``CHECK (x IN (...))`` columns and
    useful for seeding solver domains with named constant sets.
    """

    values: frozenset

    def contains(self, value: Any) -> bool:
        return value in self.values

    @property
    def is_numeric(self) -> bool:
        return all(_is_number(value) for value in self.values)

    @property
    def is_integral(self) -> bool:
        return all(isinstance(value, int) and not isinstance(value, bool) for value in self.values)

    def describe(self) -> str:
        rendered = ", ".join(repr(value) for value in sorted(self.values, key=repr))
        return "{" + rendered + "}"


@dataclass(frozen=True)
class ClassRef(Type):
    """A reference to another class (``publisher : Publisher`` in Figure 1).

    Values are object identifiers; membership checking against the referenced
    extent is the engine's job (the type alone cannot see the store), so
    :meth:`contains` only checks that the value is a plausible identifier.
    """

    class_name: str

    def contains(self, value: Any) -> bool:
        return isinstance(value, (str, int)) and not isinstance(value, bool)

    def describe(self) -> str:
        return self.class_name


INT = IntType()
REAL = RealType()
STRING = StringType()
BOOL = BoolType()

_RANGE_RE = re.compile(r"^(-?\d+)\s*\.\.\s*(-?\d+)$")

_PRIMITIVES = {
    "int": INT,
    "integer": INT,
    "real": REAL,
    "float": REAL,
    "string": STRING,
    "bool": BOOL,
    "boolean": BOOL,
}


def parse_type(text: str) -> Type:
    """Parse a TM type expression.

    Accepts primitive names, ranges (``1..5``), power-set types (``P string``,
    also accepting the OCR variants ``Pstring``/``P&string`` that appear in the
    scanned paper), and treats any other capitalised identifier as a class
    reference.

    >>> parse_type("1..5")
    RangeType(low=1, high=5)
    >>> parse_type("P string").describe()
    'P string'
    """
    text = text.strip()
    if not text:
        raise TypeSystemError("empty type expression")
    match = _RANGE_RE.match(text)
    if match:
        return RangeType(int(match.group(1)), int(match.group(2)))
    lowered = text.lower()
    if lowered in _PRIMITIVES:
        return _PRIMITIVES[lowered]
    if text.startswith("P ") or text.startswith("P\t"):
        return SetType(parse_type(text[1:].strip()))
    # OCR-damaged power-set forms from the scanned Figure 1 ("Pstring").
    if text.startswith("P") and text[1:].lower() in _PRIMITIVES:
        return SetType(_PRIMITIVES[text[1:].lower()])
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_?]*", text):
        return ClassRef(text)
    raise TypeSystemError(f"cannot parse type expression {text!r}")
