"""``repro.client`` — the blocking network client.

:func:`connect` dials a :class:`repro.server.ReproServer` and returns a
:class:`RemoteStore` satisfying the same
:class:`~repro.engine.api.StoreAPI` protocol as the embedded
:class:`~repro.engine.store.ObjectStore` — same methods, same returned
object shapes (:class:`~repro.engine.objects.DBObject` value copies), and
the *same exception classes*: a constraint broken on the server re-raises
here as :class:`~repro.errors.ConstraintViolation` with its structured
``violations`` (so ``constraint_names`` works), its subset-minimal
conflict cores and its message; a poisoned store raises
:class:`~repro.errors.StorePoisonedError`; and so on through the typed
error mapping in :mod:`repro.server.protocol`.  Code written against
``StoreAPI`` runs unchanged embedded or remote::

    import repro.client

    store = repro.client.connect(("127.0.0.1", 7707),
                                 tenant="acme", schema=SCHEMA_SOURCE)
    with store.transaction():
        store.insert("Publication", isbn=1, ourprice=10, shopprice=12, ...)
    store.close()

One connection serves one request at a time (a lock serializes the
request/response exchange, so a ``RemoteStore`` may be shared across
threads); open several connections for parallelism — the server funnels
their commits into its group-commit window.
"""

from __future__ import annotations

import itertools
import socket
import threading
from collections.abc import Iterable, Iterator, Mapping
from types import TracebackType
from typing import Any

from repro.engine.enforcement import Violation
from repro.engine.explain import ConflictCore
from repro.engine.objects import DBObject
from repro.engine.wal import encode_state
from repro.errors import ConnectionLostError, ProtocolError
from repro.server import protocol

__all__ = ["connect", "RemoteStore", "RemoteSnapshot", "RemoteTransaction"]


def connect(
    address: tuple[str, int] | str,
    *,
    tenant: str | None = None,
    schema: str | None = None,
    shards: int | None = None,
    spread: Iterable[str] = (),
    codec: str | None = None,
    timeout: float | None = None,
) -> RemoteStore:
    """Dial a server; optionally open a tenant in the same breath.

    ``address`` is ``(host, port)`` or ``"host:port"``.  ``codec`` asks
    the server for a specific frame codec (it falls back to ``json`` when
    either end cannot speak the request).  ``timeout`` bounds the TCP
    connect only — established connections block until the server answers.
    """
    if isinstance(address, str):
        host, _, port_text = address.rpartition(":")
        if not host:
            raise ProtocolError(f"address {address!r} is not 'host:port'")
        address = (host, int(port_text))
    sock = socket.create_connection(address, timeout=timeout)
    sock.settimeout(None)
    store = RemoteStore(sock, codec=codec)
    if tenant is not None:
        store.open(
            tenant, schema=schema, shards=shards, spread=spread
        )
    return store


class RemoteStore:
    """A :class:`~repro.engine.api.StoreAPI` view of a server-side store."""

    def __init__(self, sock: socket.socket, *, codec: str | None = None):
        self._sock: socket.socket | None = sock
        self._codec = "json"
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.tenant: str | None = None
        self._durable = False
        hello = self._call(
            protocol.OP_HELLO, **({"codec": codec} if codec else {})
        )
        #: Server-confirmed protocol metadata from the hello exchange.
        self.server_info: dict[str, Any] = {
            "server": hello.get("server"),
            "version": hello.get("version"),
            "codec": hello.get("codec", "json"),
        }
        self._codec = str(hello.get("codec", "json"))

    # -- plumbing ----------------------------------------------------------

    def _call(self, op: str, **fields: Any) -> dict[str, Any]:
        """One request/response exchange; raises the decoded server error."""
        with self._lock:
            sock = self._sock
            if sock is None:
                raise ConnectionLostError("this client is closed")
            request: dict[str, Any] = {"id": next(self._ids), "op": op}
            request.update(fields)
            protocol.send_frame(sock, request, self._codec)
            response = protocol.recv_frame(sock, self._codec)
        if response.get("ok"):
            if response.get("id") not in (request["id"], None):
                raise ProtocolError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {request['id']!r}"
                )
            return response
        raise protocol.decode_error(dict(response.get("error") or {}))

    def open(
        self,
        tenant: str,
        *,
        schema: str | None = None,
        shards: int | None = None,
        spread: Iterable[str] = (),
    ) -> dict[str, Any]:
        """Lease a tenant store on this connection (see
        :meth:`repro.server.tenants.TenantRegistry.lease`)."""
        fields: dict[str, Any] = {"tenant": tenant}
        if schema is not None:
            fields["schema"] = schema
        if shards is not None:
            fields["shards"] = shards
        if spread:
            fields["spread"] = list(spread)
        response = self._call(protocol.OP_OPEN, **fields)
        self.tenant = tenant
        self._durable = bool(response.get("durable"))
        return {
            "tenant": response.get("tenant"),
            "database": response.get("database"),
            "durable": self._durable,
            "objects": response.get("objects"),
        }

    # -- StoreAPI: mutation ------------------------------------------------

    @property
    def durable(self) -> bool:
        return self._durable

    def insert(
        self,
        class_name: str,
        state: Mapping[str, Any] | None = None,
        **kwargs: Any,
    ) -> DBObject:
        merged = dict(state) if state is not None else {}
        merged.update(kwargs)
        response = self._call(
            protocol.OP_INSERT,
            **{"class": class_name, "state": encode_state(merged)},
        )
        return protocol.decode_object(response["object"])

    def update(self, target: Any, **changes: Any) -> DBObject:
        response = self._call(
            protocol.OP_UPDATE,
            oid=_oid(target),
            changes=encode_state(changes),
        )
        return protocol.decode_object(response["object"])

    def delete(self, target: Any) -> None:
        self._call(protocol.OP_DELETE, oid=_oid(target))

    # -- StoreAPI: reading -------------------------------------------------

    def get(self, oid: str) -> DBObject:
        response = self._call(protocol.OP_GET, oid=oid)
        return protocol.decode_object(response["object"])

    def extent(self, class_name: str, deep: bool = True) -> list[DBObject]:
        response = self._call(
            protocol.OP_EXTENT, **{"class": class_name, "deep": deep}
        )
        return [protocol.decode_object(obj) for obj in response["objects"]]

    def objects(self) -> Iterable[DBObject]:
        response = self._call(protocol.OP_EXTENT, **{"class": None})
        return [protocol.decode_object(obj) for obj in response["objects"]]

    def query(
        self,
        class_name: str,
        where: Mapping[str, Any] | None = None,
        deep: bool = True,
        limit: int | None = None,
    ) -> list[DBObject]:
        """Server-side filtered extent: attribute-equality ``where`` with
        an optional ``limit``, evaluated without shipping the extent."""
        response = self._call(
            protocol.OP_QUERY,
            **{
                "class": class_name,
                "deep": deep,
                "where": encode_state(dict(where or {})),
                "limit": limit,
            },
        )
        return [protocol.decode_object(obj) for obj in response["objects"]]

    def __len__(self) -> int:
        entry = self.stats().get("tenant") or {}
        return int(entry.get("objects", 0))

    def __contains__(self, oid: str) -> bool:
        from repro.errors import UnknownObjectError

        try:
            self.get(oid)
        except UnknownObjectError:
            return False
        return True

    # -- StoreAPI: transactions and snapshots ------------------------------

    def transaction(self, validate: bool = True) -> RemoteTransaction:
        """A deferred-validation bracket mirroring the embedded one: the
        whole bracket runs against the server-side transaction opened on
        this connection's pinned worker thread."""
        return RemoteTransaction(self, validate)

    def snapshot(self) -> RemoteSnapshot:
        response = self._call(protocol.OP_SNAPSHOT_OPEN)
        return RemoteSnapshot(
            self, str(response["snapshot"]), int(response.get("objects", 0))
        )

    # -- StoreAPI: auditing and administration -----------------------------

    def audit(self) -> list[Violation]:
        response = self._call(protocol.OP_AUDIT)
        return [
            protocol.decode_violation(violation)
            for violation in response["violations"]
        ]

    def check_all(self) -> list[str]:
        return [violation.describe() for violation in self.audit()]

    def explain_violations(self, violations: Any = None) -> list[ConflictCore]:
        """Conflict cores for the store's standing violations.  The server
        recomputes from a fresh audit; the ``violations`` argument exists
        for StoreAPI parity and must be ``None`` remotely."""
        if violations is not None:
            raise ProtocolError(
                "a remote explain_violations cannot take pre-computed "
                "violations; pass None and let the server audit"
            )
        response = self._call(protocol.OP_EXPLAIN)
        return [protocol.decode_core(core) for core in response["cores"]]

    def set_constant(self, name: str, value: Any) -> None:
        self._call(
            protocol.OP_SET_CONSTANT,
            name=name,
            value=protocol.encode_constant(value),
        )

    def checkpoint(self) -> None:
        self._call(protocol.OP_CHECKPOINT)

    def stats(self) -> dict[str, Any]:
        """Server/tenant telemetry: connection counts and per-tenant
        object/fsync/commit counters (the benchmark's measurement tap)."""
        return self._call(protocol.OP_STATS)

    def close(self) -> None:
        """Say goodbye and drop the socket (idempotent)."""
        with self._lock:
            sock = self._sock
            if sock is None:
                return
            self._sock = None
        try:
            protocol.send_frame(
                sock, {"id": next(self._ids), "op": protocol.OP_CLOSE},
                self._codec,
            )
            protocol.recv_frame(sock, self._codec)
        except Exception:
            pass  # closing a torn connection is still a close
        finally:
            sock.close()

    def __enter__(self) -> RemoteStore:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RemoteTransaction:
    """Client half of a wire transaction bracket (:class:`TransactionAPI`)."""

    def __init__(self, store: RemoteStore, validate: bool):
        self._store = store
        self._validate = validate
        self._open = False

    def __enter__(self) -> RemoteTransaction:
        self._store._call(protocol.OP_TXN_BEGIN, validate=self._validate)
        self._open = True
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        if not self._open:
            return False
        self._open = False
        if exc_type is None:
            # Commit validation failures raise ConstraintViolation here —
            # the same class, violations and cores the embedded bracket
            # raises — after the server has rolled the transaction back.
            self._store._call(protocol.OP_TXN_COMMIT)
            return False
        try:
            self._store._call(protocol.OP_TXN_ABORT)
        except ConnectionLostError:
            pass  # the server rolls back on disconnect anyway
        return False  # propagate the caller's exception


class RemoteSnapshot:
    """Client handle for a server-side pinned snapshot
    (:class:`SnapshotAPI`).  Reads go to the pinned version; the live
    store keeps moving underneath."""

    def __init__(self, store: RemoteStore, handle: str, size: int):
        self._store = store
        self._handle = handle
        self._size = size
        self._closed = False

    def get(self, oid: str) -> DBObject:
        response = self._store._call(
            protocol.OP_SNAPSHOT_GET, snapshot=self._handle, oid=oid
        )
        return protocol.decode_object(response["object"])

    def extent(self, class_name: str, deep: bool = True) -> list[DBObject]:
        response = self._store._call(
            protocol.OP_SNAPSHOT_EXTENT,
            **{"snapshot": self._handle, "class": class_name, "deep": deep},
        )
        return [protocol.decode_object(obj) for obj in response["objects"]]

    def objects(self) -> Iterator[DBObject]:
        response = self._store._call(
            protocol.OP_SNAPSHOT_EXTENT,
            **{"snapshot": self._handle, "class": None},
        )
        yield from (
            protocol.decode_object(obj) for obj in response["objects"]
        )

    def __len__(self) -> int:
        return self._size

    def __contains__(self, oid: object) -> bool:
        from repro.errors import UnknownObjectError

        try:
            self.get(str(oid))
        except UnknownObjectError:
            return False
        return True

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._store._call(
                protocol.OP_SNAPSHOT_CLOSE, snapshot=self._handle
            )
        except ConnectionLostError:
            pass  # the server releases snapshots on disconnect

    def __enter__(self) -> RemoteSnapshot:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _oid(target: Any) -> str:
    """Accept an object (anything with an ``oid``) or a bare oid string."""
    return str(getattr(target, "oid", target))
