"""The paper's example integration specifications.

:func:`library_integration_spec` transcribes the Section 2.2 example — the
object comparison rules and property equivalence assertions integrating
``CSLibrary`` (local) with ``Bookseller`` (remote) — including the paper's
design decisions: ``cc2`` of Publication is a subjective business rule, and
the virtual overlap class of Proceedings and RefereedPubl is named
``RefereedProceedings`` (Section 2.3).

:func:`personnel_integration_spec` does the same for the intro's personnel
databases: employees match on ``ssn``; multi-department travel reimbursements
are averaged (the company's business-trip policy); the department's salary
cap is a subjective business rule.
"""

from __future__ import annotations

from repro.integration.conversion import IdentityConversion, LinearConversion
from repro.integration.decision import AnyChoice, Average, Trust, Union
from repro.integration.propeq import PropertyEquivalence
from repro.integration.relationships import Side
from repro.integration.rules import ComparisonRule
from repro.integration.spec import IntegrationSpecification
from repro.fixtures.schemas import (
    bookseller_schema,
    cslibrary_schema,
    personnel_db1_schema,
    personnel_db2_schema,
)
from repro.tm.schema import DatabaseSchema


def library_integration_spec(
    local: DatabaseSchema | None = None,
    remote: DatabaseSchema | None = None,
) -> IntegrationSpecification:
    """The Section 2.2 example specification (CSLibrary ⋈ Bookseller)."""
    spec = IntegrationSpecification(
        local or cslibrary_schema(), remote or bookseller_schema()
    )

    # -- object comparison rules (Section 2.2) --------------------------------
    spec.add_rule(
        ComparisonRule.equality("Publication", "Item", "O.isbn = O'.isbn")
    )
    spec.add_rule(
        ComparisonRule.descriptivity(
            source_class="Publisher",
            target_class="Publication",
            value_attribute="publisher",
            object_attribute="name",
            condition="O.publisher = O'.name",
            source_side=Side.REMOTE,
        )
    )
    spec.add_rule(
        ComparisonRule.similarity(
            "Proceedings", "RefereedPubl", "O'.ref? = true", Side.REMOTE
        )
    )
    spec.add_rule(
        ComparisonRule.similarity(
            "Proceedings", "NonRefereedPubl", "O'.ref? = false", Side.REMOTE
        )
    )
    spec.add_rule(
        ComparisonRule.similarity(
            "ScientificPubl",
            "Proceedings",
            "contains(O.title, 'Proceed')",
            Side.LOCAL,
        )
    )

    # -- property equivalences (Section 2.2; obvious ones included) ------------
    spec.add_propeq(
        PropertyEquivalence(
            "Publication", "ourprice", "Item", "libprice",
            df=Trust(Side.LOCAL, "CSLibrary"),
            conformed_name="libprice",
        )
    )
    spec.add_propeq(
        PropertyEquivalence(
            "Publication", "shopprice", "Item", "shopprice",
            df=Trust(Side.REMOTE, "Bookseller"),
        )
    )
    spec.add_propeq(
        PropertyEquivalence(
            "Publication", "publisher", "Publisher", "name",
            df=AnyChoice(),
            conformed_name="name",
        )
    )
    spec.add_propeq(
        PropertyEquivalence(
            "ScientificPubl", "rating", "Proceedings", "rating",
            local_cf=LinearConversion(2),
            remote_cf=IdentityConversion(),
            df=Average(),
        )
    )
    spec.add_propeq(
        PropertyEquivalence(
            "ScientificPubl", "editors", "Item", "authors",
            df=Union(),
        )
    )
    spec.add_propeq(
        PropertyEquivalence("Publication", "title", "Item", "title", df=AnyChoice())
    )
    spec.add_propeq(
        PropertyEquivalence("Publication", "isbn", "Item", "isbn", df=AnyChoice())
    )

    # -- design decisions --------------------------------------------------------
    # cc2 is "a business rule adhered to by a specific department" — the
    # paper's canonical subjective constraint (Section 5.1.1).
    spec.declare_subjective("CSLibrary.Publication.cc2")
    # Section 2.3: the overlap of Proceedings and RefereedPubl is the virtual
    # class RefereedProceedings.
    spec.name_virtual_class("Proceedings", "RefereedPubl", "RefereedProceedings")
    return spec


def personnel_integration_spec(
    local: DatabaseSchema | None = None,
    remote: DatabaseSchema | None = None,
) -> IntegrationSpecification:
    """The intro example's specification (PersonnelDB1 ⋈ PersonnelDB2)."""
    spec = IntegrationSpecification(
        local or personnel_db1_schema(), remote or personnel_db2_schema()
    )
    spec.add_rule(ComparisonRule.equality("Employee", "Employee", "O.ssn = O'.ssn"))
    spec.add_propeq(
        PropertyEquivalence("Employee", "ssn", "Employee", "ssn", df=AnyChoice())
    )
    # "Trips made on behalf of multiple departments are reimbursed based on
    # the average of the tariffs of the departments involved."
    spec.add_propeq(
        PropertyEquivalence(
            "Employee", "trav_reimb", "Employee", "trav_reimb", df=Average()
        )
    )
    spec.add_propeq(
        PropertyEquivalence(
            "Employee", "salary", "Employee", "salary",
            df=Trust(Side.LOCAL, "PersonnelDB1"),
        )
    )
    # "constraint (2) of DB1 ... may represent a business rule adhered to by
    # a specific department" — subjective.
    spec.declare_subjective("PersonnelDB1.Employee.oc2")
    return spec
