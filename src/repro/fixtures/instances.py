"""Populated object stores for the paper's running examples.

Every state below satisfies the Figure 1 constraints of its database (the
stores enforce them on insert — a violating fixture would fail to build), and
the extents embed the overlaps the paper's narrative uses:

* ``ISBN-001`` — a VLDB proceedings volume held by the library as a
  RefereedPubl *and* by the bookseller as a Proceedings with ``ref? = true``
  (the object-equality case; note the rating consistency 4 ↔ 8 across the
  1..5 / 1..10 scales related by ``multiply(2)``);
* ``ISBN-002`` — a monograph known to both databases;
* ``ISBN-006`` / ``ISBN-007`` — bookseller-only proceedings, one refereed
  (→ strictly similar to RefereedPubl) and one not;
* library-only publications, giving RefereedProceedings-style partial
  overlaps (Figure 2).
"""

from __future__ import annotations

from repro.engine.objects import DBObject
from repro.engine.store import ObjectStore
from repro.fixtures.schemas import (
    bookseller_schema,
    cslibrary_schema,
    personnel_db1_schema,
    personnel_db2_schema,
)


def cslibrary_store() -> tuple[ObjectStore, dict[str, DBObject]]:
    """The populated CSLibrary database."""
    store = ObjectStore(cslibrary_schema())
    named: dict[str, DBObject] = {}
    with store.transaction():
        _populate_cslibrary(store, named)
    return store, named


def _populate_cslibrary(store: ObjectStore, named: dict[str, DBObject]) -> None:
    named["vldb95"] = store.insert(
        "RefereedPubl",
        title="Proceedings of VLDB 1995",
        isbn="ISBN-001",
        publisher="ACM",
        shopprice=95.0,
        ourprice=90.0,
        editors=frozenset({"Dayal", "Gray"}),
        rating=4,
        avgAccRate=0.18,
    )
    named["tp_book"] = store.insert(
        "RefereedPubl",
        title="Transaction Processing",
        isbn="ISBN-002",
        publisher="Springer",
        shopprice=70.0,
        ourprice=65.0,
        editors=frozenset({"Gray", "Reuter"}),
        rating=3,
        avgAccRate=0.35,
    )
    named["dutch_day"] = store.insert(
        "NonRefereedPubl",
        title="Proceedings of the Dutch Database Day",
        isbn="ISBN-003",
        publisher="Kluwer",
        shopprice=25.0,
        ourprice=20.0,
        editors=frozenset({"Apers"}),
        rating=2,
        authAffil="UTwente",
    )
    named["db2_handbook"] = store.insert(
        "ProfessionalPubl",
        title="DB2 Handbook",
        isbn="ISBN-004",
        publisher="IEEE",
        shopprice=40.0,
        ourprice=35.0,
        authors=frozenset({"Smith"}),
    )
    named["newsletter"] = store.insert(
        "Publication",
        title="Library Newsletter",
        isbn="ISBN-005",
        publisher="Elsevier",
        shopprice=10.0,
        ourprice=5.0,
    )


def bookseller_store() -> tuple[ObjectStore, dict[str, DBObject]]:
    """The populated Bookseller database."""
    store = ObjectStore(bookseller_schema())
    named: dict[str, DBObject] = {}
    with store.transaction():
        named["acm"] = store.insert("Publisher", name="ACM", location="New York")
        named["ieee"] = store.insert("Publisher", name="IEEE", location="Piscataway")
        named["springer"] = store.insert("Publisher", name="Springer", location="Berlin")
        named["vldb95"] = store.insert(
            "Proceedings",
            title="Proceedings of VLDB 1995",
            isbn="ISBN-001",
            publisher=named["acm"],
            authors=frozenset({"Dayal", "Gray"}),
            shopprice=99.0,
            libprice=92.0,
            **{"ref?": True},
            rating=8,
        )
        named["icde"] = store.insert(
            "Proceedings",
            title="Proceedings of IEEE ICDE",
            isbn="ISBN-006",
            publisher=named["ieee"],
            authors=frozenset({"Lim", "Srivastava"}),
            shopprice=80.0,
            libprice=75.0,
            **{"ref?": True},
            rating=9,
        )
        named["workshop"] = store.insert(
            "Proceedings",
            title="Advanced Databases Workshop Notes",
            isbn="ISBN-007",
            publisher=named["springer"],
            authors=frozenset({"Vermeer"}),
            shopprice=30.0,
            libprice=28.0,
            **{"ref?": False},
            rating=5,
        )
        named["tp_book"] = store.insert(
            "Monograph",
            title="Transaction Processing",
            isbn="ISBN-002",
            publisher=named["springer"],
            authors=frozenset({"Gray", "Reuter"}),
            shopprice=72.0,
            libprice=66.0,
            subjects=frozenset({"transactions", "recovery"}),
        )
        named["readings"] = store.insert(
            "Monograph",
            title="Readings in Database Systems",
            isbn="ISBN-008",
            publisher=named["acm"],
            authors=frozenset({"Stonebraker"}),
            shopprice=55.0,
            libprice=50.0,
            subjects=frozenset({"databases"}),
        )
    return store, named


def personnel_stores() -> tuple[ObjectStore, ObjectStore, dict[str, DBObject]]:
    """The intro example's two departmental personnel databases.

    Employee ``100-20`` is registered by both departments (a
    multi-department project member); the others are local to one.
    """
    db1 = ObjectStore(personnel_db1_schema())
    db2 = ObjectStore(personnel_db2_schema())
    named: dict[str, DBObject] = {}
    named["alice_db1"] = db1.insert(
        "Employee", ssn="100-10", salary=1200.0, trav_reimb=10
    )
    named["bob_db1"] = db1.insert(
        "Employee", ssn="100-20", salary=1400.0, trav_reimb=20
    )
    named["bob_db2"] = db2.insert(
        "Employee", ssn="100-20", salary=1450.0, trav_reimb=14
    )
    named["carol_db2"] = db2.insert(
        "Employee", ssn="100-30", salary=1800.0, trav_reimb=24
    )
    return db1, db2, named
