"""The paper's example database specifications, in TM syntax.

The text follows Figure 1 of the paper with three mechanical adjustments,
each documented in DESIGN.md:

* OCR damage is repaired (``ScientificPub``/``Scientif icPub1`` and similar
  variants are normalised to one spelling per class; the scrambled
  ``Publisher`` attribute block is restored);
* the hyphenated attribute ``trav-reimb`` of the intro example becomes
  ``trav_reimb`` (hyphens read as subtraction in the constraint language);
* the implicit named constants ``KNOWNPUBLISHERS`` and ``MAX`` are given
  concrete bindings in a ``constants`` section so the specifications are
  self-contained.
"""

from __future__ import annotations

from repro.tm.parser import parse_database
from repro.tm.schema import DatabaseSchema

CSLIBRARY_SOURCE = """
Database CSLibrary

constants
  KNOWNPUBLISHERS = {'ACM', 'IEEE', 'Springer', 'Elsevier', 'Kluwer'}
  MAX = 100000

Class Publication
attributes
  title     : string
  isbn      : string
  publisher : string
  shopprice : real
  ourprice  : real
object constraints
  oc1: ourprice <= shopprice
  oc2: publisher in KNOWNPUBLISHERS
class constraints
  cc1: key isbn
  cc2: (sum (collect x for x in self) over ourprice) < MAX
end Publication

Class ScientificPubl isa Publication
attributes
  editors : P string
  rating  : 1..5
class constraints
  cc1: (avg (collect x for x in self) over rating) < 4
end ScientificPubl

Class RefereedPubl isa ScientificPubl
attributes
  avgAccRate : real
object constraints
  oc1: rating >= 2
end RefereedPubl

Class NonRefereedPubl isa ScientificPubl
attributes
  authAffil : string
object constraints
  oc1: rating <= 3
end NonRefereedPubl

Class ProfessionalPubl isa Publication
attributes
  authors : P string
end ProfessionalPubl
"""

BOOKSELLER_SOURCE = """
Database Bookseller

Class Item
attributes
  title     : string
  isbn      : string
  publisher : Publisher
  authors   : P string
  shopprice : real
  libprice  : real
object constraints
  oc1: libprice <= shopprice
class constraints
  cc1: key isbn
end Item

Class Proceedings isa Item
attributes
  ref?   : boolean
  rating : 1..10
object constraints
  oc1: publisher.name = 'IEEE' implies ref? = true
  oc2: ref? = true implies rating >= 7
  oc3: publisher.name = 'ACM' implies rating >= 6
end Proceedings

Class Monograph isa Item
attributes
  subjects : P string
end Monograph

Class Publisher
attributes
  name     : string
  location : string
end Publisher

Database constraints
  db1: forall p in Publisher exists i in Item | i.publisher = p
"""

PERSONNEL_DB1_SOURCE = """
Database PersonnelDB1

Class Employee
attributes
  ssn         : string
  salary      : real
  trav_reimb  : int
object constraints
  oc1: trav_reimb in {10, 20}
  oc2: salary < 1500
class constraints
  cc1: key ssn
end Employee
"""

PERSONNEL_DB2_SOURCE = """
Database PersonnelDB2

Class Employee
attributes
  ssn         : string
  salary      : real
  trav_reimb  : int
object constraints
  oc1: trav_reimb in {14, 24}
class constraints
  cc1: key ssn
end Employee
"""


def cslibrary_source() -> str:
    """The TM source of the CSLibrary database (Figure 1, left column)."""
    return CSLIBRARY_SOURCE


def bookseller_source() -> str:
    """The TM source of the Bookseller database (Figure 1, right column)."""
    return BOOKSELLER_SOURCE


def personnel_db1_source() -> str:
    """The intro example's first personnel database."""
    return PERSONNEL_DB1_SOURCE


def personnel_db2_source() -> str:
    """The intro example's second personnel database."""
    return PERSONNEL_DB2_SOURCE


def cslibrary_schema() -> DatabaseSchema:
    """The parsed CSLibrary schema."""
    return parse_database(CSLIBRARY_SOURCE)


def bookseller_schema() -> DatabaseSchema:
    """The parsed Bookseller schema."""
    return parse_database(BOOKSELLER_SOURCE)


def personnel_db1_schema() -> DatabaseSchema:
    return parse_database(PERSONNEL_DB1_SOURCE)


def personnel_db2_schema() -> DatabaseSchema:
    return parse_database(PERSONNEL_DB2_SOURCE)
