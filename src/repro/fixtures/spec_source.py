"""The Section 2.2 example specification in the paper's own textual syntax.

Parsing this text (see :mod:`repro.integration.spec_parser`) yields an
:class:`~repro.integration.spec.IntegrationSpecification` equivalent to the
programmatic :func:`repro.fixtures.integration.library_integration_spec` —
asserted by the test suite.
"""

LIBRARY_SPEC_SOURCE = """
# Object comparison rules (Section 2.2)
Eq(O:Publication, O':Item) <- O.isbn = O'.isbn
Eq(O:Publication.{publisher}, O':Publisher) <- O.publisher = O'.name
Sim(O':Proceedings, RefereedPubl) <- O'.ref? = true
Sim(O':Proceedings, NonRefereedPubl) <- O'.ref? = false
Sim(O:ScientificPubl, Proceedings) <- contains(O.title, 'Proceed')

# Property equivalence assertions
propeq(Publication.ourprice, Item.libprice, id, id, trust(CSLibrary)) as libprice
propeq(Publication.shopprice, Item.shopprice, id, id, trust(Bookseller))
propeq(Publication.publisher, Publisher.name, id, id, any) as name
propeq(ScientificPubl.rating, Proceedings.rating, multiply(2), id, avg)
propeq(ScientificPubl.editors, Item.authors, id, id, union)
propeq(Publication.title, Item.title, id, id, any)
propeq(Publication.isbn, Item.isbn, id, id, any)

# Design decisions (Sections 2.3 and 5.1)
subjective CSLibrary.Publication.cc2
virtual(Proceedings, RefereedPubl) = RefereedProceedings
"""

PERSONNEL_SPEC_SOURCE = """
Eq(O:Employee, O':Employee) <- O.ssn = O'.ssn
propeq(Employee.ssn, Employee.ssn, id, id, any)
propeq(Employee.trav_reimb, Employee.trav_reimb, id, id, avg)
propeq(Employee.salary, Employee.salary, id, id, trust(PersonnelDB1))
subjective PersonnelDB1.Employee.oc2
"""
