"""Programmatic builders for the paper's running examples.

* :mod:`~repro.fixtures.schemas` — the Figure 1 databases (``CSLibrary`` and
  ``Bookseller``) as TM source and parsed schemas, plus the intro's two
  personnel databases.
* :mod:`~repro.fixtures.instances` — populated object stores whose states
  satisfy every Figure 1 constraint, with the overlaps the paper's narrative
  needs (shared ISBNs, refereed and non-refereed proceedings, ...).
* :mod:`~repro.fixtures.integration` — the example integration specification
  of Section 2.2 (object comparison rules and property equivalences).
"""

from repro.fixtures.schemas import (
    bookseller_schema,
    bookseller_source,
    cslibrary_schema,
    cslibrary_source,
    personnel_db1_schema,
    personnel_db2_schema,
    personnel_db1_source,
    personnel_db2_source,
)
from repro.fixtures.instances import (
    bookseller_store,
    cslibrary_store,
    personnel_stores,
)
from repro.fixtures.integration import (
    library_integration_spec,
    personnel_integration_spec,
)

__all__ = [
    "cslibrary_source",
    "bookseller_source",
    "cslibrary_schema",
    "bookseller_schema",
    "personnel_db1_source",
    "personnel_db2_source",
    "personnel_db1_schema",
    "personnel_db2_schema",
    "cslibrary_store",
    "bookseller_store",
    "personnel_stores",
    "library_integration_spec",
    "personnel_integration_spec",
]
