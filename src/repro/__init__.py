"""repro — a reproduction of Vermeer & Apers (VLDB 1996):
*The Role of Integrity Constraints in Database Interoperation*.

The library implements the paper's instance-based database-interoperation
methodology end to end, with integrity constraints as first-class citizens:

>>> from repro import (
...     IntegrationWorkbench,
...     library_integration_spec,
...     cslibrary_store,
...     bookseller_store,
... )
>>> spec = library_integration_spec()
>>> local, _ = cslibrary_store()
>>> remote, _ = bookseller_store()
>>> result = IntegrationWorkbench(spec, local, remote).run()
>>> len(result.global_constraints) > 0
True

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.types` / :mod:`repro.domains` — TM types and the abstract
  value-set algebra underlying all symbolic reasoning;
* :mod:`repro.constraints` — the first-order constraint language: parser,
  printer, evaluator and the satisfiability/entailment solver;
* :mod:`repro.tm` — the TM schema language of Figure 1;
* :mod:`repro.engine` — an in-memory object database that *enforces* its TM
  schema's constraints (the autonomous component databases);
* :mod:`repro.integration` — the paper's contribution: comparison rules,
  property equivalences, decision functions, subjectivity analysis,
  conformation, merging, constraint derivation, conflict detection and the
  Figure 3 workbench; plus the two motivating applications (query
  optimisation, update validation);
* :mod:`repro.reverse` — relational→TM reverse engineering ([VeA95]);
* :mod:`repro.server` / :mod:`repro.client` — the network front-end: an
  asyncio multi-tenant server and the blocking client whose
  :class:`~repro.client.RemoteStore` satisfies the same
  :class:`~repro.engine.api.StoreAPI` protocol as the embedded stores;
* :mod:`repro.fixtures` — the paper's running examples, ready to use.
"""

from repro.constraints import (
    Constraint,
    ConstraintKind,
    Solver,
    TypeEnvironment,
    entails,
    is_satisfiable,
    parse_expression,
    to_source,
)
from repro.engine import (
    DBObject,
    FaultInjector,
    FaultSpec,
    ObjectStore,
    ShardedStore,
    SimulatedCrash,
    SnapshotAPI,
    StoreAPI,
    TransactionAPI,
    fsck,
    select,
)
from repro.client import connect
from repro.errors import (
    ConstraintViolation,
    ReproError,
    SchemaError,
    SpecificationError,
    StorePoisonedError,
)
from repro.fixtures import (
    bookseller_schema,
    bookseller_store,
    cslibrary_schema,
    cslibrary_store,
    library_integration_spec,
    personnel_integration_spec,
    personnel_stores,
)
from repro.integration import (
    AnyChoice,
    Average,
    ComparisonRule,
    DecisionCategory,
    IdentityConversion,
    IntegrationSpecification,
    IntegrationWorkbench,
    LinearConversion,
    MappingConversion,
    Maximum,
    Minimum,
    PropertyEquivalence,
    PropertyStatus,
    RelationshipKind,
    Trust,
    Union,
    analyse_subjectivity,
)
from repro.integration.optimizer import GlobalQueryOptimizer
from repro.integration.relationships import Side
from repro.integration.report import render_report
from repro.integration.updates import GlobalUpdateValidator
from repro.reverse import RelationalSchema, translate_schema
from repro.tm import DatabaseSchema, parse_database, schema_to_source, validate_schema

__version__ = "1.0.0"

__all__ = [
    "Constraint",
    "ConstraintKind",
    "parse_expression",
    "to_source",
    "Solver",
    "TypeEnvironment",
    "entails",
    "is_satisfiable",
    "ObjectStore",
    "ShardedStore",
    "StoreAPI",
    "TransactionAPI",
    "SnapshotAPI",
    "connect",
    "DBObject",
    "select",
    "DatabaseSchema",
    "parse_database",
    "schema_to_source",
    "validate_schema",
    "IntegrationSpecification",
    "IntegrationWorkbench",
    "ComparisonRule",
    "PropertyEquivalence",
    "RelationshipKind",
    "Side",
    "DecisionCategory",
    "PropertyStatus",
    "AnyChoice",
    "Trust",
    "Maximum",
    "Minimum",
    "Average",
    "Union",
    "IdentityConversion",
    "LinearConversion",
    "MappingConversion",
    "analyse_subjectivity",
    "render_report",
    "GlobalQueryOptimizer",
    "GlobalUpdateValidator",
    "RelationalSchema",
    "translate_schema",
    "cslibrary_schema",
    "bookseller_schema",
    "cslibrary_store",
    "bookseller_store",
    "personnel_stores",
    "library_integration_spec",
    "personnel_integration_spec",
    "ReproError",
    "SchemaError",
    "SpecificationError",
    "ConstraintViolation",
    "StorePoisonedError",
    "FaultInjector",
    "FaultSpec",
    "SimulatedCrash",
    "fsck",
]
