"""Property equivalence assertions ``propeq(C.p, C'.p', cf, cf', df)``.

A property equivalence states that local property ``C.p`` and remote property
``C'.p'`` describe the same real-world aspect.  The conversion functions map
both into a common domain; the conformed property gets one shared name
(``conformed_name``, defaulting to the local property's name — the paper
renames ``ourprice`` to ``libprice`` by choosing the remote name) and the
decision function determines global values for *equal* objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecificationError
from repro.integration.conversion import ConversionFunction, IdentityConversion
from repro.integration.decision import DecisionFunction
from repro.integration.relationships import Side


@dataclass
class PropertyEquivalence:
    """One ``propeq`` assertion.

    Attributes
    ----------
    local_class, local_property:
        The local side, e.g. ``("Publication", "ourprice")``.
    remote_class, remote_property:
        The remote side, e.g. ``("Item", "libprice")``.
    local_cf, remote_cf:
        Conversion functions into the common domain.
    df:
        The decision function for global values of equal objects.
    conformed_name:
        The shared name of the conformed property (default: local name).
    """

    local_class: str
    local_property: str
    remote_class: str
    remote_property: str
    local_cf: ConversionFunction = field(default_factory=IdentityConversion)
    remote_cf: ConversionFunction = field(default_factory=IdentityConversion)
    df: DecisionFunction = None  # type: ignore[assignment]
    conformed_name: str | None = None

    def __post_init__(self) -> None:
        if self.df is None:
            raise SpecificationError(
                f"propeq {self.describe_short()} needs a decision function"
            )
        if self.conformed_name is None:
            self.conformed_name = self.local_property

    # -- side-based access ---------------------------------------------------

    def class_on(self, side: Side) -> str:
        return self.local_class if side is Side.LOCAL else self.remote_class

    def property_on(self, side: Side) -> str:
        return self.local_property if side is Side.LOCAL else self.remote_property

    def cf_on(self, side: Side) -> ConversionFunction:
        return self.local_cf if side is Side.LOCAL else self.remote_cf

    def describe_short(self) -> str:
        return (
            f"{self.local_class}.{self.local_property} ≡ "
            f"{self.remote_class}.{self.remote_property}"
        )

    def describe(self) -> str:
        return (
            f"propeq({self.local_class}.{self.local_property}, "
            f"{self.remote_class}.{self.remote_property}, "
            f"{self.local_cf.describe()}, {self.remote_cf.describe()}, "
            f"{self.df.describe()})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.describe()}>"
