"""Section 3: object comparison rules vs. object constraints.

Intraobject conditions "are conditions that a local (or remote) object must
satisfy to be a candidate for having this relationship in the first place" —
structurally object constraints.  Two consequences (both implemented here):

1. the intraobject conditions of a rule must not conflict with the object
   constraints of the class they apply to;
2. from the object constraints and the intraobject conditions, *derived
   object constraints* follow, "subsequently treated like regular object
   constraints in the integration process" — the paper derives
   ``rating >= 7`` for Proceedings matched by the RefereedPubl similarity
   rule from the condition ``ref? = true`` and constraint ``oc2``.

Derived constraints are computed mechanically as per-property domain
tightenings of the conjunction (constraints ∧ conditions), emitted whenever
the resulting domain is strictly tighter than the property's declared type.
Everything runs in *conformed* terms so results feed straight into the
merging-phase analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.ast import (
    Comparison,
    Literal,
    Membership,
    Node,
    Path,
    SetLiteral,
    conjoin,
)
from repro.constraints.model import Constraint, ConstraintKind
from repro.constraints.solver import Solver, TypeEnvironment
from repro.domains.valueset import NumericSet, ValueSet
from repro.errors import ConformationError
from repro.integration.conflicts import RuleConflict
from repro.integration.conformation import ConformationResult
from repro.integration.constraint_conformation import conform_formula
from repro.integration.relationships import RelationshipKind, Side
from repro.integration.rules import ComparisonRule, rebase_condition
from repro.integration.spec import IntegrationSpecification


@dataclass
class RuleAnalysis:
    """Derived constraints and conflicts for one rule side."""

    rule: ComparisonRule
    side: Side
    class_name: str
    #: The conformed intraobject conditions (object-constraint form).
    conditions: list[Node] = field(default_factory=list)
    derived: list[Constraint] = field(default_factory=list)
    conflict: RuleConflict | None = None


@dataclass
class RuleCheckResult:
    analyses: list[RuleAnalysis] = field(default_factory=list)
    conflicts: list[RuleConflict] = field(default_factory=list)

    def derived_for(self, side: Side, class_name: str) -> list[Constraint]:
        """All rule-derived constraints applying to ``class_name`` objects
        matched on ``side``."""
        return [
            constraint
            for analysis in self.analyses
            if analysis.side is side and analysis.class_name == class_name
            for constraint in analysis.derived
        ]

    def analysis_for(self, rule: ComparisonRule) -> "RuleAnalysis | None":
        for analysis in self.analyses:
            if analysis.rule is rule:
                return analysis
        return None


def check_rules(
    spec: IntegrationSpecification, conformation: ConformationResult
) -> RuleCheckResult:
    """Run the Section 3 analysis for every comparison rule."""
    result = RuleCheckResult()
    for rule in spec.rules:
        for side in (Side.LOCAL, Side.REMOTE):
            class_name = _constrained_class(rule, side)
            if class_name is None:
                continue
            conditions = rule.intraobject_conditions(side)
            if not conditions:
                continue
            analysis = _analyse(rule, side, class_name, conditions, conformation)
            result.analyses.append(analysis)
            if analysis.conflict is not None:
                result.conflicts.append(analysis.conflict)
    return result


def _constrained_class(rule: ComparisonRule, side: Side) -> str | None:
    if rule.kind is RelationshipKind.EQUALITY:
        return rule.local_class if side is Side.LOCAL else rule.remote_class
    if side is rule.source_side:
        return rule.source_class
    return None  # intraobject conditions only constrain the source object


def _analyse(
    rule: ComparisonRule,
    side: Side,
    class_name: str,
    conditions: list[Node],
    conformation: ConformationResult,
) -> RuleAnalysis:
    conformed = conformation.on(side)
    analysis = RuleAnalysis(rule, side, class_name)
    if not conformed.schema.has_class(class_name):
        analysis.conflict = RuleConflict(
            rule, f"class {class_name} does not survive conformation"
        )
        return analysis

    conformed_conditions: list[Node] = []
    for condition in conditions:
        rebased = rebase_condition(condition, side)
        try:
            conformed_conditions.append(
                conform_formula(conformed, class_name, rebased)
            )
        except ConformationError as exc:
            analysis.conflict = RuleConflict(
                rule, f"condition cannot be conformed: {exc}"
            )
            return analysis
    analysis.conditions = conformed_conditions

    constraints = conformed.schema.effective_object_constraints(class_name)
    premise = conjoin(
        [c.formula for c in constraints] + list(conformed_conditions)
    )
    env = conformed.schema.type_environment(class_name)
    solver = Solver(env)
    if solver.is_unsatisfiable(premise):
        analysis.conflict = RuleConflict(
            rule,
            f"intraobject conditions conflict with the object constraints "
            f"of {conformed.schema.name}.{class_name}",
        )
        return analysis

    analysis.derived = derive_domain_constraints(
        premise,
        conformed.schema,
        class_name,
        env,
        label_prefix=f"derived({rule.name})",
        database=conformed.schema.name,
    )
    return analysis


def derive_domain_constraints(
    premise: Node,
    schema,
    class_name: str,
    env: TypeEnvironment,
    label_prefix: str,
    database: str | None = None,
) -> list[Constraint]:
    """Per-property domain tightenings implied by ``premise``.

    For each scalar attribute of ``class_name`` whose propagated domain under
    ``premise`` is strictly tighter than its declared type, emit an object
    constraint expressing the tightened domain.
    """
    from repro.domains.typed import type_to_valueset

    solver = Solver(env)
    derived: list[Constraint] = []
    counter = 1
    for name, attribute in schema.effective_attributes(class_name).items():
        type_domain = type_to_valueset(attribute.tm_type)
        path = Path((name,))
        domain = solver.domain_of(premise, path)
        formula = domain_to_formula(path, domain, type_domain)
        if formula is None:
            continue
        derived.append(
            Constraint(
                f"{label_prefix}#{counter}",
                ConstraintKind.OBJECT,
                formula,
                owner=class_name,
                database=database,
            )
        )
        counter += 1
    return derived


def domain_to_formula(
    path: Path, domain: ValueSet, type_domain: ValueSet
) -> Node | None:
    """Express a propagated domain as a constraint formula, or ``None`` when
    it is no tighter than the declared type.

    Prefers the readable forms the paper uses: half-line bounds
    (``rating >= 7``) and finite memberships (``trav_reimb in {12, 17, 22}``).
    """
    if not domain.is_subset_of(type_domain) or type_domain.is_subset_of(domain):
        return None
    if domain.is_empty():
        from repro.constraints.ast import FALSE

        return FALSE
    if isinstance(domain, NumericSet):
        type_values = type_domain.enumerate()
        values = domain.enumerate()
        low, low_strict = domain.lower_bound()
        high, high_strict = domain.upper_bound()
        type_low, _ = (
            type_domain.lower_bound()
            if isinstance(type_domain, NumericSet)
            else (None, False)
        )
        type_high, _ = (
            type_domain.upper_bound()
            if isinstance(type_domain, NumericSet)
            else (None, False)
        )
        lower_tightened = low is not None and (type_low is None or low > type_low)
        upper_tightened = high is not None and (type_high is None or high < type_high)

        # Gap-free domains read as bounds (rating >= 7, rating >= 5 in the
        # paper); domains with holes read as memberships ({12, 17, 22}).
        contiguous = _contiguous_within(domain, type_domain)
        if values is not None and len(values) == 1:
            return Comparison("=", path, Literal(_num(values[0])))
        if values is not None and not contiguous:
            return Membership(path, SetLiteral(tuple(_num(v) for v in values)))
        if lower_tightened or upper_tightened:
            parts = []
            if lower_tightened:
                parts.append(
                    Comparison(">" if low_strict else ">=", path, Literal(_num(low)))
                )
            if upper_tightened:
                parts.append(
                    Comparison("<" if high_strict else "<=", path, Literal(_num(high)))
                )
            return conjoin(parts)
        if values is not None and (
            type_values is None or len(values) < len(type_values)
        ):
            return Membership(path, SetLiteral(tuple(_num(v) for v in values)))
        return None
    values = domain.enumerate()
    if values is not None:
        if len(values) == 1:
            return Comparison("=", path, Literal(values[0]))
        return Membership(path, SetLiteral(values))
    return None


def _contiguous_within(domain: NumericSet, type_domain: ValueSet) -> bool:
    """Whether ``domain`` equals the type domain restricted to its hull —
    i.e. expressing it as bounds loses nothing."""
    from repro.domains.interval import Interval, IntervalSet

    low, low_strict = domain.lower_bound()
    high, high_strict = domain.upper_bound()
    hull = NumericSet(IntervalSet((Interval(low, high, low_strict, high_strict),)))
    try:
        restricted = type_domain.intersect(hull)
    except Exception:
        return False
    ours = domain.enumerate()
    theirs = restricted.enumerate()
    if ours is not None and theirs is not None:
        return set(ours) == set(theirs)
    return domain.is_subset_of(restricted) and restricted.is_subset_of(domain)


def _num(value: float):
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value
