"""The integration workbench — the paper's Figure 3 methodology, end to end.

Pipeline stages (each stage's output is kept on the result for inspection,
which is what makes this the "design tool" the paper's conclusion calls for):

1. structural validation of the integration specification;
2. subjectivity analysis (Section 5.1) including the consistency check
   *subjective values ⇒ subjective constraints*;
3. conformation of schemas, constraints and (when stores are supplied)
   instances (Sections 2.3 and 4);
4. rule checks: intraobject conditions vs object constraints, derived
   object constraints (Section 3);
5. instance matching and merging into the integrated view, with the derived
   class hierarchy (Section 2.3);
6. constraint integration: objective union, derivation through decision
   functions, similarity entailment, approximate-similarity disjunctions
   (Section 5.2.1), class constraints (5.2.2), database constraints (5.2.3);
7. validation of the merged states against the integrated constraints
   (actual implicit conflicts);
8. resolution suggestions for every conflict found (the three options of
   Section 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.analysis import (
    Diagnostic,
    analyze_schema,
    pairwise_conflicts,
)
from repro.engine.store import ObjectStore
from repro.integration.class_constraints import (
    ClassConstraintReport,
    integrate_class_constraints,
)
from repro.integration.conflicts import StateViolation
from repro.integration.conformation import ConformationResult, conform
from repro.integration.database_constraints import (
    DatabaseConstraintReport,
    integrate_database_constraints,
)
from repro.integration.derivation import (
    ConstraintDeriver,
    DerivationResult,
    GlobalConstraint,
)
from repro.integration.hierarchy import DerivedHierarchy, derive_hierarchy
from repro.integration.matching import MatchResult, match_instances
from repro.integration.merging import merge_instances
from repro.integration.resolution import (
    Suggestion,
    repair_similarity_rule,
    suggest_for_explicit,
    suggest_for_implicit_risk,
)
from repro.integration.rule_checks import RuleCheckResult, check_rules
from repro.integration.spec import IntegrationSpecification, SpecificationIssue
from repro.integration.subjectivity import SubjectivityAnalysis, analyse_subjectivity
from repro.integration.view import IntegratedView


@dataclass
class IntegrationResult:
    """Everything the workbench produced, stage by stage."""

    spec: IntegrationSpecification
    spec_issues: list[SpecificationIssue] = field(default_factory=list)
    subjectivity: SubjectivityAnalysis | None = None
    conformation: ConformationResult | None = None
    rule_checks: RuleCheckResult | None = None
    match: MatchResult | None = None
    view: IntegratedView | None = None
    hierarchy: DerivedHierarchy | None = None
    derivation: DerivationResult | None = None
    class_constraints: ClassConstraintReport | None = None
    database_constraints: DatabaseConstraintReport | None = None
    state_violations: list[StateViolation] = field(default_factory=list)
    #: ``"local (Name)"`` / ``"remote (Name)"`` → violations found auditing
    #: the component stores (keyed by side so two components sharing a
    #: database name cannot shadow each other).  The paper's premise is that
    #: components enforce their own constraints; a non-empty entry means a
    #: supplied store breaks that premise and the derived global constraints
    #: cannot be trusted.
    component_violations: dict[str, list[str]] = field(default_factory=dict)
    #: Same keys as ``component_violations`` → subset-minimal conflict cores
    #: (:class:`repro.engine.explain.ConflictCore`) explaining them: which
    #: objects of the component store, exactly, break its own constraints.
    component_cores: dict[str, list] = field(default_factory=dict)
    #: Static-analysis findings made *before any data exists*: per-component
    #: schema diagnostics (errors and warnings only) plus cross-schema
    #: contradictions among the conformed constraints of matched classes.
    #: Advisory design-tool output — not counted by :meth:`conflict_count`,
    #: so it never flips :meth:`is_consistent` on its own.
    static_warnings: list[Diagnostic] = field(default_factory=list)
    suggestions: list[Suggestion] = field(default_factory=list)

    @property
    def global_constraints(self) -> list[GlobalConstraint]:
        """The full integrated constraint set (object + class level)."""
        constraints: list[GlobalConstraint] = []
        if self.derivation is not None:
            constraints.extend(self.derivation.constraints)
        if self.class_constraints is not None:
            constraints.extend(self.class_constraints.propagated)
        return constraints

    def conflict_count(self) -> int:
        total = len(self.state_violations)
        total += sum(len(v) for v in self.component_violations.values())
        if self.rule_checks is not None:
            total += len(self.rule_checks.conflicts)
        if self.derivation is not None:
            total += len(self.derivation.explicit_conflicts)
            total += len(self.derivation.similarity_conflicts)
        if self.subjectivity is not None:
            total += len(self.subjectivity.violations)
        return total

    def is_consistent(self) -> bool:
        """Whether the specification produced no conflicts at all."""
        return self.conflict_count() == 0 and not self.spec_issues


class IntegrationWorkbench:
    """Facade running the Figure 3 pipeline; see module docstring."""

    def __init__(
        self,
        spec: IntegrationSpecification,
        local_store: ObjectStore | None = None,
        remote_store: ObjectStore | None = None,
        descriptivity_view: str = "object",
    ):
        self.spec = spec
        self.local_store = local_store
        self.remote_store = remote_store
        self.descriptivity_view = descriptivity_view

    def run(self) -> IntegrationResult:
        result = IntegrationResult(self.spec)
        result.spec_issues = self.spec.validate()
        for side, store in (
            ("local", self.local_store),
            ("remote", self.remote_store),
        ):
            if store is not None:
                violations = store.audit()
                if violations:
                    key = f"{side} ({store.schema.name})"
                    result.component_violations[key] = [
                        violation.describe() for violation in violations
                    ]
                    result.component_cores[key] = store.explain_violations(
                        violations
                    )
        result.subjectivity = analyse_subjectivity(self.spec)
        result.conformation = conform(
            self.spec,
            self.local_store,
            self.remote_store,
            descriptivity_view=self.descriptivity_view,
        )
        result.rule_checks = check_rules(self.spec, result.conformation)
        result.static_warnings = _static_analysis(self.spec, result.conformation)

        if self.local_store is not None and self.remote_store is not None:
            result.match = match_instances(
                self.spec, self.local_store, self.remote_store
            )
            result.view = merge_instances(
                self.spec, result.conformation, result.match
            )
            result.hierarchy = derive_hierarchy(result.view, result.conformation)

        deriver = ConstraintDeriver(
            self.spec, result.conformation, result.subjectivity, result.rule_checks
        )
        result.derivation = deriver.run()
        result.class_constraints = integrate_class_constraints(
            self.spec, result.conformation
        )
        result.database_constraints = integrate_database_constraints(
            self.spec, result.conformation
        )

        if result.view is not None:
            result.state_violations = _validate_states(result)
        result.suggestions = _collect_suggestions(result)
        return result

    def run_with_repairs(self, max_rounds: int = 3) -> list[IntegrationResult]:
        """The design-tool fixpoint loop: run, apply every rule-repair
        suggestion (resolution option 2), and re-run until no repairable
        conflicts remain or ``max_rounds`` is reached.

        Returns the result of every round (the last one is the final state);
        the specification object is updated in place, mirroring a designer
        accepting the tool's suggestions.
        """
        history: list[IntegrationResult] = []
        for _ in range(max_rounds):
            result = self.run()
            history.append(result)
            replacements = {
                s.target: s.repaired_rule
                for s in result.suggestions
                if s.action == "repair-rule" and s.repaired_rule is not None
            }
            if not replacements:
                break
            self.spec.rules = [
                replacements.get(rule.name, rule) for rule in self.spec.rules
            ]
        return history


# ---------------------------------------------------------------------------
# static analysis (warnings before any data exists)
# ---------------------------------------------------------------------------


def _static_analysis(
    spec: IntegrationSpecification, conformation: ConformationResult
) -> list[Diagnostic]:
    """Constraint-level findings that need no instances at all.

    Two sources: each component schema's own analysis (unsatisfiable or
    contradictory constraints, type lint errors, redundancies), and
    cross-schema contradiction checks over the *conformed* constraints of
    classes the specification matches — an equality rule merges extents, a
    similarity rule classifies source objects under the target class, so in
    either case one object must satisfy both sides' constraints.  A conflict
    here means the merged schema is inconsistent before any data exists.
    """
    diagnostics: list[Diagnostic] = []
    for schema in (spec.local_schema, spec.remote_schema):
        diagnostics.extend(analyze_schema(schema, include_info=False).diagnostics)

    pairs = []
    for local_name, remote_name in _matched_classes(spec):
        local_schema = conformation.local.schema
        remote_schema = conformation.remote.schema
        if not local_schema.has_class(local_name) or not remote_schema.has_class(
            remote_name
        ):
            continue
        pairs.extend(
            (local_constraint, remote_constraint)
            for local_constraint in local_schema.effective_object_constraints(
                local_name
            )
            for remote_constraint in remote_schema.effective_object_constraints(
                remote_name
            )
        )
    diagnostics.extend(pairwise_conflicts(pairs))
    return diagnostics


def _matched_classes(spec: IntegrationSpecification) -> list[tuple[str, str]]:
    """(local class, remote class) pairs whose members must co-satisfy
    both sides' object constraints after integration."""
    from repro.integration.relationships import RelationshipKind, Side

    matched: list[tuple[str, str]] = []
    for rule in spec.rules:
        if rule.kind is RelationshipKind.EQUALITY:
            matched.extend(
                (local_name, remote_name)
                for local_name in rule.classes_on(Side.LOCAL)
                for remote_name in rule.classes_on(Side.REMOTE)
            )
        elif rule.kind in (
            RelationshipKind.SIMILARITY,
            RelationshipKind.APPROXIMATE_SIMILARITY,
        ):
            if not rule.source_class or not rule.target_class:
                continue
            if rule.source_side is Side.LOCAL:
                matched.append((rule.source_class, rule.target_class))
            else:
                matched.append((rule.target_class, rule.source_class))
    return matched


# ---------------------------------------------------------------------------
# state validation (actual implicit conflicts)
# ---------------------------------------------------------------------------


def _validate_states(result: IntegrationResult) -> list[StateViolation]:
    assert result.view is not None and result.derivation is not None
    view = result.view
    violations: list[StateViolation] = []
    for constraint in result.derivation.constraints:
        for class_name in _scope_classes(constraint.scope):
            if not view.has_class(class_name):
                break
        else:
            extents = [
                view.extent_oids(name) for name in _scope_classes(constraint.scope)
            ]
            members = set.intersection(*(set(e) for e in extents)) if extents else set()
            for oid in sorted(members):
                obj = view.get(oid)
                verdict = view.satisfies(obj, constraint.formula)
                if verdict is False:
                    violations.append(
                        StateViolation(
                            constraint.scope,
                            constraint.name,
                            oid,
                            f"state {obj.state!r} falsifies "
                            f"{constraint.describe()}",
                            core=_state_violation_core(view, constraint, oid),
                        )
                    )
    return violations


def _state_violation_core(view: IntegratedView, constraint, oid: str):
    """Subset-minimal conflict core of a state violation, over the
    integrated view: the smallest set of global objects (containing the
    violator) whose isolated sub-view still falsifies the constraint.

    Same deletion-based shrink as the engine's cores
    (:func:`repro.engine.explain.shrink`); the conflict predicate masks
    view extents and treats a reference to a masked global object as an
    evaluation failure — which, mirroring ``view.satisfies`` returning
    ``None``, counts as *resolved*.
    """
    from repro.constraints.evaluate import ReasonTrace, compiled
    from repro.engine.explain import ConflictCore, CoreMember, shrink
    from repro.errors import EvaluationError

    run = compiled(constraint.formula)
    all_oids = frozenset(view._objects)

    def masked_ctx(visible, current, trace=None):
        ctx = view.eval_context(current=current)
        base_get_attr = ctx.get_attr

        def get_attr(obj, name):
            value = base_get_attr(obj, name)
            target = getattr(value, "oid", None)
            if isinstance(target, str) and target in all_oids and target not in visible:
                raise EvaluationError(
                    f"reference {name!r} resolves to masked global "
                    f"object {target!r}"
                )
            return value

        ctx.get_attr = get_attr
        ctx.extents = {
            name: [obj for obj in extent if obj.oid in visible]
            for name, extent in ctx.extents.items()
        }
        ctx.trace = trace
        return ctx

    def conflicts(visible):
        if oid not in visible:
            return False
        try:
            return not run(masked_ctx(visible, view.get(oid)))
        except EvaluationError:
            return False

    seed_trace = ReasonTrace()
    try:
        if run(masked_ctx(all_oids, view.get(oid), trace=seed_trace)):
            return None
    except EvaluationError:
        return None
    support = [s for s in seed_trace.support() if s in all_oids]
    if oid not in support:
        support.insert(0, oid)
    if not conflicts(frozenset(support)):
        support = sorted(all_oids)
        if not conflicts(frozenset(support)):
            return None
    core_oids, checks, minimal = shrink(support, conflicts)
    iso_trace = ReasonTrace()
    conflicts_now = True
    try:
        conflicts_now = not run(
            masked_ctx(frozenset(core_oids), view.get(oid), trace=iso_trace)
        )
    except EvaluationError:  # pragma: no cover - conflicts() above filters
        pass
    members = tuple(
        CoreMember(
            oid=member,
            class_name=",".join(sorted(view.get(member).classes)) or "global",
            bindings=iso_trace.chain_of(member),
            reads=iso_trace.reads_of(member),
        )
        for member in sorted(core_oids)
    )
    return ConflictCore(
        constraint_name=constraint.name,
        kind="integrated",
        members=members,
        verdict="falsy" if conflicts_now else "stale",
        minimal=minimal,
        checks=checks,
        trace=iso_trace,
        constants=iso_trace.constants_read(),
    )


def _scope_classes(scope: str) -> list[str]:
    return [part.strip() for part in scope.split("⋈")]


# ---------------------------------------------------------------------------
# suggestions
# ---------------------------------------------------------------------------


def _collect_suggestions(result: IntegrationResult) -> list[Suggestion]:
    suggestions: list[Suggestion] = []
    assert result.derivation is not None and result.conformation is not None
    for conflict in result.derivation.explicit_conflicts:
        suggestions.extend(suggest_for_explicit(conflict, result.spec))
    for risk in result.derivation.implicit_risks:
        suggestions.extend(suggest_for_implicit_risk(risk, result.spec))
    for conflict in result.derivation.similarity_conflicts:
        suggestions.append(
            repair_similarity_rule(conflict, result.conformation)
        )
    return suggestions
