"""The merging phase: global objects, global values, global extents.

"In the merging step, objects from SLC and SRC between which an equivalence
relationship has been determined are merged into a single global object.
Equivalent properties are merged into an integrated property ... the value of
global properties is determined from the conformed local and remote ones,
using a decision function where applicable" (Section 2.3).

Descriptivity pairs (virtual objects created during conformation vs. the
remote objects they mirror — ``VirtPublisher('ACM')`` vs. the bookseller's
``Publisher('ACM')``) merge here too, matching on the described attribute.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.integration.conformation import (
    ConformationResult,
    ConformedObject,
    ConformedPropeq,
)
from repro.integration.matching import MatchResult
from repro.integration.relationships import Side
from repro.integration.spec import IntegrationSpecification


@dataclass
class GlobalObject:
    """A merged object of the integrated view."""

    oid: str
    components: dict[Side, ConformedObject]
    state: dict[str, Any]
    #: Qualified class names (``CSLibrary.RefereedPubl``) this object belongs
    #: to in the integrated view, including via similarity classification.
    classes: set[str] = field(default_factory=set)
    #: Properties whose local/remote values disagreed, with both values —
    #: the raw material of implicit conflicts.
    value_differences: dict[str, tuple[Any, Any]] = field(default_factory=dict)

    def component_on(self, side: Side) -> ConformedObject | None:
        return self.components.get(side)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<global {self.oid} {sorted(self.classes)} {self.state!r}>"


def merge_instances(
    spec: IntegrationSpecification,
    conformation: ConformationResult,
    match: MatchResult,
):
    """Build the integrated view's objects and extents.

    Returns an :class:`~repro.integration.view.IntegratedView` (imported
    lazily to avoid a cycle).
    """
    from repro.integration.view import IntegratedView

    by_conformed_oid: dict[str, ConformedObject] = {}
    for side in (Side.LOCAL, Side.REMOTE):
        for obj in conformation.on(side).instances:
            by_conformed_oid[obj.oid] = obj

    pairs = _collect_pairs(conformation, match, by_conformed_oid)
    groups = _group_pairs(pairs, by_conformed_oid)

    counter = itertools.count(1)
    view = IntegratedView(spec, conformation)
    conformed_to_global: dict[str, str] = {}
    merged_members: set[str] = set()

    # Merged (multi-component) objects first, then singletons.
    for group in groups:
        oid = f"g{next(counter)}"
        components = {obj.side: obj for obj in group}
        global_obj = GlobalObject(oid, components, {})
        view.add_object(global_obj)
        for obj in group:
            conformed_to_global[obj.oid] = oid
            merged_members.add(obj.oid)
    for conformed_oid, obj in by_conformed_oid.items():
        if conformed_oid in merged_members:
            continue
        oid = f"g{next(counter)}"
        view.add_object(GlobalObject(oid, {obj.side: obj}, {}))
        conformed_to_global[conformed_oid] = oid

    _compute_states(spec, conformation, view, conformed_to_global)
    _classify(spec, conformation, match, view, conformed_to_global)
    return view


# ---------------------------------------------------------------------------
# pair collection and grouping
# ---------------------------------------------------------------------------


def _collect_pairs(
    conformation: ConformationResult,
    match: MatchResult,
    by_conformed_oid: dict[str, ConformedObject],
) -> list[tuple[str, str]]:
    pairs: list[tuple[str, str]] = []
    for equality in match.equalities:
        local_oid = f"local:{equality.local.oid}"
        remote_oid = f"remote:{equality.remote.oid}"
        if local_oid in by_conformed_oid and remote_oid in by_conformed_oid:
            pairs.append((local_oid, remote_oid))
    pairs.extend(_descriptivity_pairs(conformation, by_conformed_oid))
    return pairs


def _descriptivity_pairs(
    conformation: ConformationResult,
    by_conformed_oid: dict[str, ConformedObject],
) -> list[tuple[str, str]]:
    """Match virtual objects with the objects they mirror, by described value."""
    pairs = []
    for side in (Side.LOCAL, Side.REMOTE):
        conformed = conformation.on(side)
        other = conformation.on(side.other)
        for relocation in conformed.relocations:
            # Virtual objects live on `side`; the real objects are the
            # descriptivity rule's source class on the other side.
            virtuals = [
                obj
                for obj in conformed.instances
                if obj.class_name == relocation.virtual_class
            ]
            source_class = relocation.virtual_class.removeprefix("Virt")
            if not other.schema.has_class(source_class):
                continue
            attr = relocation.object_attribute
            remote_renames = other.rename_map(source_class)
            conformed_attr = remote_renames.get(attr, attr)
            candidates: dict[Any, ConformedObject] = {}
            for obj in other.instances_of(source_class):
                candidates[obj.state.get(conformed_attr)] = obj
            for virtual in virtuals:
                value = virtual.state.get(attr)
                twin = candidates.get(value)
                if twin is not None:
                    pairs.append((virtual.oid, twin.oid))
    return pairs


def _group_pairs(
    pairs: list[tuple[str, str]],
    by_conformed_oid: dict[str, ConformedObject],
) -> list[list[ConformedObject]]:
    parent: dict[str, str] = {}

    def find(x: str) -> str:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in pairs:
        parent[find(a)] = find(b)
    groups: dict[str, list[ConformedObject]] = {}
    for oid in parent:
        groups.setdefault(find(oid), []).append(by_conformed_oid[oid])
    return [sorted(group, key=lambda o: o.oid) for group in groups.values()]


# ---------------------------------------------------------------------------
# global states
# ---------------------------------------------------------------------------


def _compute_states(
    spec: IntegrationSpecification,
    conformation: ConformationResult,
    view,
    conformed_to_global: dict[str, str],
) -> None:
    for global_obj in view.objects():
        local = global_obj.component_on(Side.LOCAL)
        remote = global_obj.component_on(Side.REMOTE)
        if local is not None and remote is not None:
            state = _merge_states(
                conformation, local, remote, global_obj, conformed_to_global
            )
        else:
            only = local if local is not None else remote
            assert only is not None
            state = {
                key: _remap(value, conformed_to_global)
                for key, value in only.state.items()
            }
        global_obj.state = state


def _remap(value: Any, conformed_to_global: dict[str, str]) -> Any:
    """Conformed reference oids become global oids."""
    if isinstance(value, str) and value in conformed_to_global:
        return conformed_to_global[value]
    return value


def _merge_states(
    conformation: ConformationResult,
    local: ConformedObject,
    remote: ConformedObject,
    global_obj: GlobalObject,
    conformed_to_global: dict[str, str],
) -> dict[str, Any]:
    state: dict[str, Any] = {}
    shared = set(local.state) & set(remote.state)
    for key in local.state.keys() | remote.state.keys():
        if key not in shared:
            value = local.state.get(key, remote.state.get(key))
            state[key] = _remap(value, conformed_to_global)
            continue
        # References are compared *after* remapping so that two references
        # to the same merged object do not read as a value conflict.
        local_value = _remap(local.state[key], conformed_to_global)
        remote_value = _remap(remote.state[key], conformed_to_global)
        propeq = _conformed_propeq_for(conformation, local, remote, key)
        if local_value != remote_value:
            global_obj.value_differences[key] = (local_value, remote_value)
        if propeq is not None:
            state[key] = propeq.df.apply(local_value, remote_value)
        else:
            state[key] = local_value  # default: keep the local view
    return state


def _conformed_propeq_for(
    conformation: ConformationResult,
    local: ConformedObject,
    remote: ConformedObject,
    name: str,
) -> ConformedPropeq | None:
    for propeq in conformation.propeqs:
        if propeq.name != name:
            continue
        local_schema = conformation.local.schema
        remote_schema = conformation.remote.schema
        if not (
            local_schema.has_class(local.class_name)
            and local_schema.has_class(propeq.local_class)
            and remote_schema.has_class(remote.class_name)
            and remote_schema.has_class(propeq.remote_class)
        ):
            continue
        if local_schema.is_subclass_of(
            local.class_name, propeq.local_class
        ) and remote_schema.is_subclass_of(remote.class_name, propeq.remote_class):
            return propeq
    return None


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------


def _classify(
    spec: IntegrationSpecification,
    conformation: ConformationResult,
    match: MatchResult,
    view,
    conformed_to_global: dict[str, str],
) -> None:
    # Component classes (with ancestors) on their own side.
    for global_obj in view.objects():
        for side, component in global_obj.components.items():
            schema = conformation.on(side).schema
            database = schema.name
            if schema.has_class(component.class_name):
                for ancestor in schema.ancestors(component.class_name):
                    global_obj.classes.add(f"{database}.{ancestor.name}")
            else:  # pragma: no cover - defensive
                global_obj.classes.add(f"{database}.{component.class_name}")
    # Similarity classifications place the source object into target classes.
    for similarity in match.similarities:
        source_conformed = f"{similarity.source_side.value}:{similarity.source.oid}"
        global_oid = conformed_to_global.get(source_conformed)
        if global_oid is None:
            continue
        global_obj = view.get(global_oid)
        target_side = similarity.source_side.other
        target_schema = conformation.on(target_side).schema
        if similarity.virtual_class is not None:
            view.add_virtual_extent_member(similarity.virtual_class, global_oid)
            view.register_virtual_superclass(
                similarity.virtual_class,
                f"{target_schema.name}.{similarity.target_class}",
            )
            continue
        if target_schema.has_class(similarity.target_class):
            for ancestor in target_schema.ancestors(similarity.target_class):
                global_obj.classes.add(f"{target_schema.name}.{ancestor.name}")
    view.rebuild_extents()
