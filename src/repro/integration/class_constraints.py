"""Integration of class constraints (Section 5.2.2).

"As classifications themselves are inherently subjective, so are class
constraints" — the default is that class constraints do **not** propagate to
the integrated view.  Two exceptions:

* **Objective extension** — a class touched by no equality or strict
  similarity rule keeps its local extension in the view, so all its class
  constraints remain valid.
* **Key constraints** — the one inheritable class constraint has an
  interoperation analogue: the key constraint on ``C`` stays valid iff every
  equality rule on ``C`` is a key-to-key condition (``Eq(O, O') <-
  O.k = O'.k'`` with ``k`` key of ``C``, ``k'`` key of ``C'``) and
  similarity rules only add objects from classes that have such equality
  rules as well.

A class constraint the designer insists is objective despite a non-objective
extension "must either be provable ... or any addition ... must be rejected
by a global integrity enforcing mechanism" — reported as requiring global
enforcement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.ast import Comparison, KeyConstraint, Node, Path
from repro.constraints.model import Constraint, ConstraintKind
from repro.constraints.normalize import split_conjunction
from repro.integration.conformation import ConformationResult
from repro.integration.derivation import GlobalConstraint
from repro.integration.relationships import Side
from repro.integration.rules import ComparisonRule
from repro.integration.spec import IntegrationSpecification


@dataclass
class ClassConstraintReport:
    """Outcome of the Section 5.2.2 analysis."""

    #: Class constraints valid on the integrated view.
    propagated: list[GlobalConstraint] = field(default_factory=list)
    #: (qualified name, reason) for constraints that stay local.
    retained_locally: list[tuple[str, str]] = field(default_factory=list)
    #: Constraints declared objective that need a global enforcement
    #: mechanism to stay valid.
    needs_global_enforcement: list[tuple[str, str]] = field(default_factory=list)
    #: Classes with objective extension, per side.
    objective_extension: dict[Side, set[str]] = field(
        default_factory=lambda: {Side.LOCAL: set(), Side.REMOTE: set()}
    )


def integrate_class_constraints(
    spec: IntegrationSpecification, conformation: ConformationResult
) -> ClassConstraintReport:
    """Run the Section 5.2.2 analysis for both sides."""
    report = ClassConstraintReport()
    counter = 1
    for side in (Side.LOCAL, Side.REMOTE):
        conformed = conformation.on(side)
        schema = conformed.schema
        affected = spec.affected_classes(side)
        report.objective_extension[side] = {
            name for name in schema.classes if name not in affected
        }
        for class_def in schema.classes.values():
            qualified_class = f"{schema.name}.{class_def.name}"
            for constraint in class_def.own_class_constraints():
                original = _original_name(conformed, constraint)
                if class_def.name not in affected:
                    report.propagated.append(
                        GlobalConstraint(
                            f"cc{counter}",
                            qualified_class,
                            constraint.formula,
                            "objective-extension",
                            (original,),
                        )
                    )
                    counter += 1
                    continue
                if _is_key(constraint.formula) and key_constraint_propagates(
                    spec, side, class_def.name, constraint.formula
                ):
                    report.propagated.append(
                        GlobalConstraint(
                            f"cc{counter}",
                            qualified_class,
                            constraint.formula,
                            "key-propagation",
                            (original,),
                        )
                    )
                    counter += 1
                    continue
                if original in spec.declared_objective:
                    report.needs_global_enforcement.append(
                        (
                            original,
                            "declared objective on a class without objective "
                            "extension: additions that violate it must be "
                            "rejected by a global integrity enforcing "
                            "mechanism",
                        )
                    )
                    continue
                report.retained_locally.append(
                    (
                        original,
                        "class constraints are subjective by default "
                        "(Section 5.2.2)",
                    )
                )
    return report


def key_constraint_propagates(
    spec: IntegrationSpecification,
    side: Side,
    class_name: str,
    key_formula: Node,
) -> bool:
    """The paper's key-propagation condition (see module docstring).

    ``key_formula`` is the conformed key constraint; rule conditions are
    written in original terms, so key attributes are checked against the
    original schema's key as well as the conformed name.
    """
    schema = spec.schema_on(side)
    other_schema = spec.schema_on(side.other)
    keys = _key_attributes(key_formula)
    subtree = {class_name}
    if schema.has_class(class_name):
        subtree.update(schema.subclasses_of(class_name))

    equality_classes_other: set[str] = set()
    for rule in spec.equality_rules():
        rule_class = rule.local_class if side is Side.LOCAL else rule.remote_class
        other_class = rule.remote_class if side is Side.LOCAL else rule.local_class
        if rule_class is None or rule_class not in subtree:
            continue
        if not _is_key_to_key(rule, side, keys, other_schema, other_class):
            return False
        if other_class is not None:
            equality_classes_other.add(other_class)
            if other_schema.has_class(other_class):
                equality_classes_other.update(
                    other_schema.subclasses_of(other_class)
                )

    for rule in spec.similarity_rules():
        if rule.source_side is side:
            continue  # adds this side's objects elsewhere; extent unchanged
        if rule.target_class not in subtree:
            continue
        # The similarity source (an other-side class) must be covered by a
        # key-to-key equality rule too, else unmatched duplicates can enter.
        if rule.source_class not in equality_classes_other:
            return False
    return True


def _is_key(formula: Node) -> bool:
    return any(isinstance(node, KeyConstraint) for node in formula.walk())


def _key_attributes(formula: Node) -> set[str]:
    attributes: set[str] = set()
    for node in formula.walk():
        if isinstance(node, KeyConstraint):
            attributes.update(node.attributes)
    return attributes


def _is_key_to_key(
    rule: ComparisonRule,
    side: Side,
    keys: set[str],
    other_schema,
    other_class: str | None,
) -> bool:
    """Whether the rule condition is exactly ``O.k = O'.k'`` over keys."""
    conjuncts = split_conjunction(rule.condition)
    if len(conjuncts) != 1 or not isinstance(conjuncts[0], Comparison):
        return False
    comparison = conjuncts[0]
    if comparison.op != "=":
        return False
    left, right = comparison.left, comparison.right
    if not isinstance(left, Path) or not isinstance(right, Path):
        return False
    this_var = side.variable
    other_var = side.other.variable
    this_path = left if left.parts[0] == this_var else right
    other_path = right if right.parts[0] == other_var else left
    if this_path.parts[0] != this_var or other_path.parts[0] != other_var:
        return False
    if len(this_path.parts) != 2 or len(other_path.parts) != 2:
        return False
    if this_path.parts[1] not in keys:
        return False
    # The other side's attribute must be a key of the other class.
    if other_class is None or not other_schema.has_class(other_class):
        return False
    other_keys: set[str] = set()
    for constraint in other_schema.class_named(other_class).constraints:
        if constraint.kind is ConstraintKind.CLASS:
            other_keys.update(_key_attributes(constraint.formula))
    return other_path.parts[1] in other_keys


def _original_name(conformed, constraint: Constraint) -> str:
    for original, candidate in conformed.conformed_constraints.items():
        if candidate is constraint:
            return original
    return constraint.qualified_name
