"""Conversion functions (``cf``) of property equivalence assertions.

A conversion function maps a property's values into the common domain chosen
for the conformed property (Section 2.2).  Besides converting *values*
(instance conformation), a conversion function must be able to rewrite the
*constants appearing in constraints* (Section 4, "domain conversion": the
``multiply(2)`` conversion turns ``rating >= 2`` into ``rating >= 4``) and to
transform declared *types* so the conformed schema and the solver's type
environment stay faithful.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.domains.interval import IntervalSet
from repro.errors import ConformationError
from repro.types.primitives import (
    EnumType,
    IntType,
    RangeType,
    RealType,
    Type,
)


class ConversionFunction:
    """Base class; implementations must be injective on the values in use
    (otherwise object matching through converted values is ambiguous)."""

    name: str = "cf"

    def apply(self, value: Any) -> Any:
        """Convert a property value into the common domain."""
        raise NotImplementedError

    @property
    def is_identity(self) -> bool:
        return False

    @property
    def order_preserving(self) -> bool | None:
        """True = monotone increasing, False = decreasing, None = unordered."""
        return None

    def convert_constant(self, value: Any, op: str) -> tuple[Any, str]:
        """Rewrite a comparison ``path op value`` into the common domain.

        Returns the converted constant and the (possibly flipped) operator.
        Raises :class:`ConformationError` when the comparison kind cannot be
        carried through this conversion (e.g. an order comparison through an
        unordered mapping).
        """
        if op in ("=", "!="):
            return self.apply(value), op
        if self.order_preserving is True:
            return self.apply(value), op
        if self.order_preserving is False:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            return self.apply(value), flipped
        raise ConformationError(
            f"conversion {self.name} cannot carry ordered comparison {op!r}"
        )

    def convert_type(self, tm_type: Type) -> Type:
        """The conformed type of a property of ``tm_type``."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<cf {self.describe()}>"


class IdentityConversion(ConversionFunction):
    """``id`` — the property already uses the common domain."""

    name = "id"

    def apply(self, value: Any) -> Any:
        return value

    @property
    def is_identity(self) -> bool:
        return True

    @property
    def order_preserving(self) -> bool | None:
        return True

    def convert_type(self, tm_type: Type) -> Type:
        return tm_type


class LinearConversion(ConversionFunction):
    """``multiply(k)`` / affine rescaling ``v ↦ k·v + c`` (``k ≠ 0``).

    The paper's ``multiply(2)`` relates the library's 1..5 rating scale to
    the bookseller's 1..10 scale.
    """

    def __init__(self, factor: float, offset: float = 0.0):
        if factor == 0:
            raise ConformationError("linear conversion requires a non-zero factor")
        self.factor = factor
        self.offset = offset
        if offset:
            self.name = f"linear({factor}, {offset})"
        else:
            self.name = f"multiply({factor})"

    def apply(self, value: Any) -> Any:
        result = value * self.factor + self.offset
        if isinstance(result, float) and result.is_integer():
            return int(result)
        return result

    @property
    def order_preserving(self) -> bool | None:
        return self.factor > 0

    def convert_type(self, tm_type: Type) -> Type:
        if isinstance(tm_type, RangeType):
            # The image of an integer range under a non-unit factor is a
            # sparse set of points; EnumType keeps the solver exact.
            image = IntervalSet.closed(tm_type.low, tm_type.high)
            points = image.enumerate_integers()
            assert points is not None
            converted = frozenset(self.apply(v) for v in points)
            if all(isinstance(v, int) for v in converted):
                return EnumType(converted)
            return RealType()
        if isinstance(tm_type, EnumType):
            return EnumType(frozenset(self.apply(v) for v in tm_type.values))
        if isinstance(tm_type, IntType):
            if float(self.factor).is_integer() and float(self.offset).is_integer():
                return tm_type
            return RealType()
        if isinstance(tm_type, RealType):
            return tm_type
        raise ConformationError(
            f"linear conversion does not apply to type {tm_type.describe()}"
        )


class MappingConversion(ConversionFunction):
    """An explicit (injective) value table, e.g. correspondence tables for
    coded enumerations."""

    def __init__(self, table: Mapping[Any, Any], name: str = "mapping"):
        values = list(table.values())
        if len(set(values)) != len(values):
            raise ConformationError("mapping conversion must be injective")
        self.table = dict(table)
        self.name = name

    def apply(self, value: Any) -> Any:
        if value not in self.table:
            raise ConformationError(
                f"mapping conversion {self.name} has no entry for {value!r}"
            )
        return self.table[value]

    @property
    def order_preserving(self) -> bool | None:
        return None

    def convert_type(self, tm_type: Type) -> Type:
        return EnumType(frozenset(self.table.values()))
