"""Rule matching: evaluating object comparison rules over extents.

Rules are written against the *original* schemas (``O.isbn = O'.isbn``), so
matching runs on the original stores; the merging phase then carries matches
over to the conformed instances.

Equality conditions of the common key-join shape ``O.a = O'.b [and ...]`` use
a hash join; everything else falls back to evaluating the condition over the
cross product of the two extents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.constraints.ast import And, Comparison, Node, Path
from repro.constraints.evaluate import EvalContext, evaluate
from repro.engine.objects import DBObject
from repro.engine.store import ObjectStore
from repro.errors import EvaluationError
from repro.integration.relationships import Side
from repro.integration.rules import ComparisonRule
from repro.integration.spec import IntegrationSpecification


@dataclass(frozen=True)
class EqualityMatch:
    local: DBObject
    remote: DBObject
    rule: ComparisonRule


@dataclass(frozen=True)
class SimilarityMatch:
    source: DBObject
    source_side: Side
    target_class: str  # class on the other side
    rule: ComparisonRule
    virtual_class: str | None = None  # set for approximate similarity


@dataclass
class MatchResult:
    equalities: list[EqualityMatch] = field(default_factory=list)
    similarities: list[SimilarityMatch] = field(default_factory=list)

    def similarity_targets(self, obj: DBObject) -> list[SimilarityMatch]:
        return [m for m in self.similarities if m.source == obj]


def match_instances(
    spec: IntegrationSpecification,
    local_store: ObjectStore,
    remote_store: ObjectStore,
) -> MatchResult:
    """Evaluate every comparison rule over the stores' extents."""
    result = MatchResult()
    accessor = _CompositeAccessor(local_store, remote_store)
    for rule in spec.equality_rules():
        result.equalities.extend(
            _match_equality(rule, local_store, remote_store, accessor)
        )
    for rule in spec.similarity_rules() + spec.approximate_rules():
        result.similarities.extend(
            _match_similarity(rule, spec, local_store, remote_store, accessor)
        )
    return result


class _CompositeAccessor:
    """Attribute accessor that dereferences through whichever store owns the
    object (rule conditions navigate both databases)."""

    def __init__(self, local_store: ObjectStore, remote_store: ObjectStore):
        self.local_store = local_store
        self.remote_store = remote_store
        self._by_oid: dict[str, ObjectStore] = {}
        for store in (local_store, remote_store):
            for obj in store.objects():
                self._by_oid[obj.oid] = store

    def __call__(self, obj: Any, name: str) -> Any:
        if isinstance(obj, DBObject):
            store = self._by_oid.get(obj.oid, self.local_store)
            return store.get_attr(obj, name)
        if isinstance(obj, dict):
            return obj[name]
        raise EvaluationError(f"cannot read {name!r} from {obj!r}")


def _match_equality(
    rule: ComparisonRule,
    local_store: ObjectStore,
    remote_store: ObjectStore,
    accessor: _CompositeAccessor,
) -> list[EqualityMatch]:
    assert rule.local_class and rule.remote_class
    locals_ = local_store.extent(rule.local_class, deep=True)
    remotes = remote_store.extent(rule.remote_class, deep=True)
    join_key = _hash_join_key(rule.condition)
    if join_key is not None:
        return _hash_join(rule, locals_, remotes, accessor, join_key)
    matches = []
    for local_obj in locals_:
        for remote_obj in remotes:
            if _holds(rule.condition, local_obj, remote_obj, accessor, local_store):
                matches.append(EqualityMatch(local_obj, remote_obj, rule))
    return matches


def _hash_join_key(condition: Node) -> tuple[Path, Path] | None:
    """Detect the leading ``O.a = O'.b`` equi-join conjunct, if any."""
    conjuncts = condition.parts if isinstance(condition, And) else (condition,)
    for part in conjuncts:
        if not isinstance(part, Comparison) or part.op != "=":
            continue
        left, right = part.left, part.right
        if not isinstance(left, Path) or not isinstance(right, Path):
            continue
        sides = {left.parts[0], right.parts[0]}
        if sides == {"O", "O'"}:
            local_path = left if left.parts[0] == "O" else right
            remote_path = right if right.parts[0] == "O'" else left
            return local_path, remote_path
    return None


def _hash_join(
    rule: ComparisonRule,
    locals_: list[DBObject],
    remotes: list[DBObject],
    accessor: _CompositeAccessor,
    join_key: tuple[Path, Path],
) -> list[EqualityMatch]:
    local_path, remote_path = join_key
    buckets: dict[Any, list[DBObject]] = {}
    for remote_obj in remotes:
        try:
            key = _read_path(remote_obj, remote_path, accessor)
        except EvaluationError:
            continue
        buckets.setdefault(key, []).append(remote_obj)
    matches = []
    for local_obj in locals_:
        try:
            key = _read_path(local_obj, local_path, accessor)
        except EvaluationError:
            continue
        for remote_obj in buckets.get(key, ()):
            # Re-check the full condition (other conjuncts may filter).
            if _holds(rule.condition, local_obj, remote_obj, accessor, None):
                matches.append(EqualityMatch(local_obj, remote_obj, rule))
    return matches


def _read_path(obj: DBObject, path: Path, accessor: _CompositeAccessor) -> Any:
    value: Any = obj
    for segment in path.parts[1:]:
        value = accessor(value, segment)
    return value


def _holds(
    condition: Node,
    local_obj: DBObject | None,
    remote_obj: DBObject | None,
    accessor: _CompositeAccessor,
    store: ObjectStore | None,
) -> bool:
    bindings: dict[str, Any] = {}
    if local_obj is not None:
        bindings["O"] = local_obj
    if remote_obj is not None:
        bindings["O'"] = remote_obj
    constants: dict[str, Any] = {}
    for owner in (accessor.local_store, accessor.remote_store):
        constants.update(owner.schema.constants)
    ctx = EvalContext(bindings=bindings, constants=constants, get_attr=accessor)
    try:
        return bool(evaluate(condition, ctx))
    except EvaluationError:
        return False


def _match_similarity(
    rule: ComparisonRule,
    spec: IntegrationSpecification,
    local_store: ObjectStore,
    remote_store: ObjectStore,
    accessor: _CompositeAccessor,
) -> list[SimilarityMatch]:
    assert rule.source_class and rule.target_class
    source_store = local_store if rule.source_side is Side.LOCAL else remote_store
    matches = []
    for obj in source_store.extent(rule.source_class, deep=True):
        local_obj = obj if rule.source_side is Side.LOCAL else None
        remote_obj = obj if rule.source_side is Side.REMOTE else None
        if _holds(rule.condition, local_obj, remote_obj, accessor, source_store):
            matches.append(
                SimilarityMatch(
                    obj,
                    rule.source_side,
                    rule.target_class,
                    rule,
                    rule.virtual_class,
                )
            )
    return matches
